//! Masked inter-grid transfer primitives for the geometric multigrid
//! preconditioner.
//!
//! The MG V-cycle (DESIGN.md §15) moves residuals down and corrections up a
//! hierarchy of block-local grids. Both transfers here are *masked*: land
//! cells never contribute to a coarse sum and never receive a prolonged
//! correction, so the degenerate topologies the mask fuzzer engineers
//! (all-land blocks, 1-wide channels, isolated cells) stay exactly zero on
//! land at every level.
//!
//! The transfers are *linear*: coarse point `k` sits on fine point `2k`
//! (vertex-style anchoring), prolongation interpolates linearly between
//! anchors (weight 1 on the anchor, ½ on each odd in-between point), and
//! restriction is the exact transpose (full weighting, up to the masked
//! scaling). Piecewise-constant agglomeration is *not* good enough here: a
//! blocky coarse space is nearly energy-orthogonal to smooth error, so an
//! agglomeration V-cycle stalls on exactly the low modes multigrid exists
//! to remove. Linear transfers restore the approximation property and a
//! level-independent cycle.
//!
//! The pair is an exact adjoint — `⟨R f, c⟩ = ⟨f, Rᵀ c⟩` over ocean cells —
//! which is what keeps the Galerkin-coarsened V-cycle a *symmetric*
//! preconditioner. Both loops are scalar and fixed-order (row-major over
//! the fine interior, parent contributions in a fixed y-then-x order), so
//! transfers are bitwise identical under every execution backend and SIMD
//! dispatch mode.
//!
//! Semicoarsening is expressed per direction: `cx`/`cy` select whether the
//! zonal/meridional extent is halved (linear weights) or passed through
//! (identity). A fine point past the last anchor of an even extent takes
//! its nearest anchor with weight 1 ([`parents`] explains why constants
//! must survive there).

use crate::blockvec::BlockVec;

/// Coarse extent of a fine extent `n` under coarsening flag `c`: `⌈n/2⌉`
/// (one coarse point per even fine index) when coarsening, `n` when passing
/// the direction through.
#[inline]
pub fn coarse_extent(n: usize, c: bool) -> usize {
    if c {
        n.div_ceil(2)
    } else {
        n
    }
}

/// The ≤ 2 coarse parents of fine index `f` with their linear weights:
/// identity when the direction is passed through, weight 1 on the co-located
/// anchor for even `f`, and ½ on each neighbouring anchor for odd `f`. An
/// odd point past the last anchor of an even extent (its upper neighbour
/// does not exist — `cn` is the coarse extent) takes its lower anchor with
/// weight 1: nearest-anchor extrapolation keeps constants in the coarse
/// space everywhere, which is what lets the V-cycle see the operator's
/// near-nullspace (the barotropic operator is Neumann at coasts — its
/// lowest mode is the constant, and a coarse space that cannot represent
/// constants along an edge strip leaves that mode to the smoother alone).
#[inline]
pub fn parents(f: usize, c: bool, cn: usize) -> ([(usize, f64); 2], usize) {
    if !c {
        return ([(f, 1.0), (0, 0.0)], 1);
    }
    if f % 2 == 0 {
        ([(f / 2, 1.0), (0, 0.0)], 1)
    } else {
        let lo = f / 2;
        if lo + 1 < cn {
            ([(lo, 0.5), (lo + 1, 0.5)], 2)
        } else {
            ([(lo, 1.0), (0, 0.0)], 1)
        }
    }
}

/// Masked full-weighting restriction `coarse = R fine`: every *ocean* fine
/// cell distributes its value to its ≤ 4 coarse parents with the linear
/// weights (`fmask` is the fine interior mask, row-major `nx × ny`). Land
/// fine cells contribute nothing; coarse cells receiving no contribution
/// end up exactly `0.0`. Only reads the fine interior (never the halo) and
/// writes every coarse interior point.
pub fn restrict_masked(fine: &BlockVec, fmask: &[u8], cx: bool, cy: bool, coarse: &mut BlockVec) {
    let (nx, ny) = (fine.nx, fine.ny);
    let (cnx, cny) = (coarse.nx, coarse.ny);
    debug_assert_eq!(fmask.len(), nx * ny, "fine mask size mismatch");
    debug_assert_eq!(cnx, coarse_extent(nx, cx), "coarse nx mismatch");
    debug_assert_eq!(cny, coarse_extent(ny, cy), "coarse ny mismatch");
    for cj in 0..cny {
        coarse.interior_row_mut(cj).fill(0.0);
    }
    for j in 0..ny {
        let (pj, npj) = parents(j, cy, cny);
        let row = fine.interior_row(j);
        let mrow = &fmask[j * nx..(j + 1) * nx];
        for i in 0..nx {
            if mrow[i] == 0 {
                continue;
            }
            let v = row[i];
            let (pi, npi) = parents(i, cx, cnx);
            for &(cj2, wj) in &pj[..npj] {
                for &(ci2, wi) in &pi[..npi] {
                    let acc = coarse.get(ci2, cj2) + wj * wi * v;
                    coarse.set(ci2, cj2, acc);
                }
            }
        }
    }
}

/// Masked linear prolongation-and-add `fine += Rᵀ coarse`: every *ocean*
/// fine cell receives the weighted sum of its ≤ 4 coarse parents added in;
/// land fine cells are left untouched (the V-cycle keeps them at exactly
/// `0.0`). The exact adjoint of [`restrict_masked`] in the masked inner
/// product.
pub fn prolong_add_masked(coarse: &BlockVec, fmask: &[u8], cx: bool, cy: bool, fine: &mut BlockVec) {
    let (nx, ny) = (fine.nx, fine.ny);
    let (cnx, cny) = (coarse.nx, coarse.ny);
    debug_assert_eq!(fmask.len(), nx * ny, "fine mask size mismatch");
    debug_assert_eq!(cnx, coarse_extent(nx, cx), "coarse nx mismatch");
    debug_assert_eq!(cny, coarse_extent(ny, cy), "coarse ny mismatch");
    for j in 0..ny {
        let (pj, npj) = parents(j, cy, cny);
        let mrow = &fmask[j * nx..(j + 1) * nx];
        let frow = fine.interior_row_mut(j);
        for i in 0..nx {
            if mrow[i] == 0 {
                continue;
            }
            let (pi, npi) = parents(i, cx, cnx);
            let mut acc = 0.0f64;
            for &(cj2, wj) in &pj[..npj] {
                for &(ci2, wi) in &pi[..npi] {
                    acc += wj * wi * coarse.get(ci2, cj2);
                }
            }
            frow[i] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkered_mask(nx: usize, ny: usize) -> Vec<u8> {
        // A mask with land sprinkled through, plus a fully-land row.
        (0..nx * ny)
            .map(|k| {
                let (i, j) = (k % nx, k / nx);
                u8::from(j != 2 && (i * 7 + j * 3) % 5 != 0)
            })
            .collect()
    }

    fn filled(nx: usize, ny: usize, f: impl Fn(usize, usize) -> f64) -> BlockVec {
        let mut b = BlockVec::zeros(nx, ny, 1);
        for j in 0..ny {
            for i in 0..nx {
                b.set(i, j, f(i, j));
            }
        }
        b
    }

    /// The linear weight of fine index `f` on coarse index `k` — the
    /// independent reference for both transfer directions.
    fn weight(f: usize, k: usize, c: bool, cn: usize) -> f64 {
        if !c {
            return if f == k { 1.0 } else { 0.0 };
        }
        if f % 2 == 0 {
            return if k == f / 2 { 1.0 } else { 0.0 };
        }
        if f / 2 + 1 >= cn {
            // Nearest-anchor extrapolation past the last anchor.
            return if k == f / 2 { 1.0 } else { 0.0 };
        }
        if k == f / 2 || k == f / 2 + 1 {
            0.5
        } else {
            0.0
        }
    }

    #[test]
    fn restriction_is_masked_full_weighting() {
        let (nx, ny) = (5, 4); // odd nx: last anchor sits on the edge
        let mask = checkered_mask(nx, ny);
        let fine = filled(nx, ny, |i, j| (10 * j + i) as f64 + 1.0);
        let (cnx, cny) = (coarse_extent(nx, true), coarse_extent(ny, true));
        let mut coarse = BlockVec::zeros(cnx, cny, 1);
        restrict_masked(&fine, &mask, true, true, &mut coarse);
        for cj in 0..cny {
            for ci in 0..cnx {
                let mut want = 0.0;
                for j in 0..ny {
                    for i in 0..nx {
                        if mask[j * nx + i] != 0 {
                            want += weight(i, ci, true, cnx)
                                * weight(j, cj, true, cny)
                                * fine.get(i, j);
                        }
                    }
                }
                let got = coarse.get(ci, cj);
                assert!(
                    (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                    "({ci},{cj}): got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn all_land_footprint_restricts_to_exact_zero() {
        let (nx, ny) = (4, 4);
        let mask = vec![0u8; nx * ny];
        let fine = filled(nx, ny, |_, _| f64::MAX); // values must be ignored
        let mut coarse = BlockVec::zeros(2, 2, 1);
        coarse.fill(7.0);
        restrict_masked(&fine, &mask, true, true, &mut coarse);
        for cj in 0..2 {
            for ci in 0..2 {
                assert_eq!(coarse.get(ci, cj).to_bits(), 0.0f64.to_bits());
            }
        }
    }

    #[test]
    fn prolongation_interpolates_and_skips_land() {
        let (nx, ny) = (5, 3); // semicoarsen x only
        let mask = checkered_mask(nx, ny);
        let cnx = coarse_extent(nx, true);
        let coarse = filled(cnx, ny, |i, j| (i + 10 * j) as f64);
        let mut fine = filled(nx, ny, |_, _| 0.5);
        let before = fine.clone();
        prolong_add_masked(&coarse, &mask, true, false, &mut fine);
        for j in 0..ny {
            for i in 0..nx {
                let want = if mask[j * nx + i] != 0 {
                    let mut acc = 0.0;
                    for k in 0..cnx {
                        acc += weight(i, k, true, cnx) * coarse.get(k, j);
                    }
                    before.get(i, j) + acc
                } else {
                    before.get(i, j)
                };
                let got = fine.get(i, j);
                assert!(
                    (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                    "({i},{j}): got {got}, want {want}"
                );
            }
        }
    }

    /// A coarse constant prolongs to a fine constant over every ocean cell —
    /// including the extrapolated strip past the last anchor of an even
    /// extent. This is the property that lets the coarse space represent
    /// smooth error (and the Neumann near-nullspace) at all.
    #[test]
    fn prolongation_reproduces_constants_in_the_interior() {
        let (nx, ny) = (10, 7); // even nx: the last column is extrapolated
        let mask = vec![1u8; nx * ny];
        let coarse = filled(
            coarse_extent(nx, true),
            coarse_extent(ny, true),
            |_, _| 3.25,
        );
        let mut fine = BlockVec::zeros(nx, ny, 1);
        prolong_add_masked(&coarse, &mask, true, true, &mut fine);
        for j in 0..ny {
            for i in 0..nx {
                assert_eq!(fine.get(i, j), 3.25, "({i},{j})");
            }
        }
    }

    /// `⟨R f, c⟩ = ⟨f, Rᵀ c⟩` over the masked cells, for every coarsening
    /// pattern — the adjoint identity that makes the Galerkin V-cycle
    /// symmetric.
    #[test]
    fn restriction_and_prolongation_are_adjoint() {
        let (nx, ny) = (7, 5);
        let mask = checkered_mask(nx, ny);
        let f = filled(nx, ny, |i, j| ((i * 13 + j * 29) % 17) as f64 * 0.25 - 2.0);
        for (cx, cy) in [(true, true), (true, false), (false, true)] {
            let (cnx, cny) = (coarse_extent(nx, cx), coarse_extent(ny, cy));
            let c = filled(cnx, cny, |i, j| ((i * 5 + j * 11) % 13) as f64 * 0.5 - 3.0);

            let mut rf = BlockVec::zeros(cnx, cny, 1);
            restrict_masked(&f, &mask, cx, cy, &mut rf);
            let mut lhs = 0.0;
            for j in 0..cny {
                for i in 0..cnx {
                    lhs += rf.get(i, j) * c.get(i, j);
                }
            }

            let mut ptc = BlockVec::zeros(nx, ny, 1);
            prolong_add_masked(&c, &mask, cx, cy, &mut ptc);
            let mut rhs = 0.0;
            for j in 0..ny {
                for i in 0..nx {
                    if mask[j * nx + i] != 0 {
                        rhs += f.get(i, j) * ptc.get(i, j);
                    }
                }
            }
            assert!(
                (lhs - rhs).abs() <= 1e-12 * lhs.abs().max(1.0),
                "cx={cx} cy={cy}: ⟨Rf,c⟩={lhs} vs ⟨f,Rᵀc⟩={rhs}"
            );
        }
    }

    #[test]
    fn pass_through_directions_are_identity() {
        let (nx, ny) = (4, 3);
        let mask = vec![1u8; nx * ny];
        let fine = filled(nx, ny, |i, j| (i * 10 + j) as f64);
        let mut coarse = BlockVec::zeros(nx, ny, 1);
        restrict_masked(&fine, &mask, false, false, &mut coarse);
        for j in 0..ny {
            for i in 0..nx {
                assert_eq!(coarse.get(i, j).to_bits(), fine.get(i, j).to_bits());
            }
        }
    }
}

//! Lane-major multi-RHS field tiles: `k` independent right-hand sides
//! carried through one fused sweep.
//!
//! A [`MultiBlockVec`] stores `groups` interleaved images of a
//! [`BlockVec`]: each *lane group* holds [`LANES`](pop_simd::LANES)
//! right-hand sides side by side, so the flat index of point `(i, j)` in
//! group `g` is
//!
//! ```text
//! ((g * rows + (j + halo)) * stride + (i + halo)) * LANES + lane
//! ```
//!
//! with the *same* row `stride` as the single-RHS tile. One SIMD load at a
//! point therefore fetches the values of four independent RHS vectors, and
//! a batched stencil or EVP kernel loads each operator coefficient **once**
//! (splatted across lanes) per point instead of once per RHS — the
//! amortization that makes batched solves cheaper than `k` single solves.
//!
//! Lane `l` of group `g` carries RHS index `g * LANES + l`. Lanes never
//! interact: every batched kernel performs, in each lane, exactly the
//! scalar operation sequence of the single-RHS path, which is what keeps a
//! batched trajectory bitwise identical to `k` independent solves
//! (`tests/batch_equivalence.rs`).

use crate::blockvec::BlockVec;
use crate::distvec::DistVec;
use crate::layout::DistLayout;
use pop_simd::{AlignedVec, LANES};
use std::sync::Arc;

/// One block's worth of `groups * LANES` right-hand sides, halo-padded,
/// lane-major (see the [module docs](self) for the layout).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiBlockVec {
    /// Interior zonal extent.
    pub nx: usize,
    /// Interior meridional extent.
    pub ny: usize,
    /// Halo width on each side.
    pub halo: usize,
    groups: usize,
    stride: usize,
    data: AlignedVec,
}

impl MultiBlockVec {
    /// A zero-filled multi-tile. `stride` matches [`BlockVec::zeros`] for
    /// the same shape, so single↔multi lane copies are stride-preserving
    /// row memcpys.
    pub fn zeros(nx: usize, ny: usize, halo: usize, groups: usize) -> Self {
        assert!(nx > 0 && ny > 0, "empty block");
        assert!(groups > 0, "batched tile needs at least one lane group");
        let stride = pop_simd::round_up_lanes(nx + 2 * halo);
        let rows = ny + 2 * halo;
        MultiBlockVec {
            nx,
            ny,
            halo,
            groups,
            stride,
            data: AlignedVec::zeros(groups * rows * stride * LANES),
        }
    }

    /// A zeroed multi-tile with the same shape as `model`.
    pub fn like(model: &BlockVec, groups: usize) -> Self {
        Self::zeros(model.nx, model.ny, model.halo, groups)
    }

    /// Number of lane groups (`k = groups * LANES` RHS slots).
    #[inline]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Row stride in *points* (same value as the matching
    /// [`BlockVec::stride`]); the flat storage advances `stride * LANES`
    /// floats per row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padded row count (`ny + 2*halo`).
    #[inline]
    pub fn rows(&self) -> usize {
        self.ny + 2 * self.halo
    }

    /// Flat index of the first lane of point `(i, j)` in group `g`
    /// (halo coordinates allowed). Lane `l`'s value sits at `+ l`.
    #[inline]
    pub fn offset(&self, g: usize, i: isize, j: isize) -> usize {
        let h = self.halo as isize;
        debug_assert!(g < self.groups, "group {g} out of range");
        debug_assert!(i >= -h && i < self.nx as isize + h, "i={i} out of range");
        debug_assert!(j >= -h && j < self.ny as isize + h, "j={j} out of range");
        ((g * self.rows() + (j + h) as usize) * self.stride + (i + h) as usize) * LANES
    }

    /// Read lane `lane` of point `(i, j)` in group `g`.
    #[inline]
    pub fn at(&self, g: usize, lane: usize, i: isize, j: isize) -> f64 {
        debug_assert!(lane < LANES);
        self.data[self.offset(g, i, j) + lane]
    }

    /// Write lane `lane` of point `(i, j)` in group `g`.
    #[inline]
    pub fn set(&mut self, g: usize, lane: usize, i: isize, j: isize, v: f64) {
        debug_assert!(lane < LANES);
        let k = self.offset(g, i, j) + lane;
        self.data[k] = v;
    }

    /// The raw lane-major storage (all groups, halo and stride padding
    /// included), 32-byte aligned.
    #[inline]
    pub fn raw(&self) -> &[f64] {
        self.data.as_slice()
    }

    /// Mutable raw lane-major storage.
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [f64] {
        self.data.as_mut_slice()
    }

    /// Set every cell of every group and lane to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.as_mut_slice().fill(v);
    }

    /// Zero the halo ring of every group (all lanes), leaving interiors
    /// untouched — the multi image of [`BlockVec::zero_halo`].
    pub fn zero_halo(&mut self) {
        let h = self.halo as isize;
        if h == 0 {
            return;
        }
        let (nx, ny) = (self.nx as isize, self.ny as isize);
        for g in 0..self.groups {
            for j in -h..ny + h {
                for i in -h..nx + h {
                    if i < 0 || i >= nx || j < 0 || j >= ny {
                        let k = self.offset(g, i, j);
                        self.data[k..k + LANES].fill(0.0);
                    }
                }
            }
        }
    }

    /// Extract a rectangular interior region of **all groups and lanes**
    /// into `out`: group-major, then row-major, `LANES` floats per point —
    /// the batched halo message format. `out` holds
    /// `groups * w * h * LANES` floats afterwards.
    pub fn extract_region(&self, si: usize, sj: usize, w: usize, h: usize, out: &mut Vec<f64>) {
        debug_assert!(
            si + w <= self.nx && sj + h <= self.ny,
            "region out of interior"
        );
        out.clear();
        out.reserve(self.groups * w * h * LANES);
        for g in 0..self.groups {
            for r in 0..h {
                let start = self.offset(g, si as isize, (sj + r) as isize);
                out.extend_from_slice(&self.data[start..start + w * LANES]);
            }
        }
    }

    /// Scatter a region buffer produced by [`MultiBlockVec::extract_region`]
    /// (possibly on a different block) into this tile at logical origin
    /// `(di, dj)` (halo coordinates allowed).
    pub fn copy_region(&mut self, di: isize, dj: isize, src: &[f64], w: usize, h: usize) {
        debug_assert_eq!(
            src.len(),
            self.groups * w * h * LANES,
            "region buffer size mismatch"
        );
        for g in 0..self.groups {
            for r in 0..h {
                let dst = self.offset(g, di, dj + r as isize);
                let s = (g * h + r) * w * LANES;
                self.data[dst..dst + w * LANES].copy_from_slice(&src[s..s + w * LANES]);
            }
        }
    }

    /// Load one lane (group `g`, lane `lane`) from a single-RHS tile of the
    /// same shape, copying the full padded storage (interior **and** halo)
    /// so the lane starts bit-identical to the source vector.
    pub fn load_lane(&mut self, g: usize, lane: usize, src: &BlockVec) {
        self.check_lane_shape(g, lane, src);
        let s = self.stride;
        let rows = self.rows();
        let sr = src.raw();
        let dr = self.data.as_mut_slice();
        for jj in 0..rows {
            let srow = &sr[jj * s..(jj + 1) * s];
            let base = ((g * rows + jj) * s) * LANES + lane;
            for (i, &v) in srow.iter().enumerate() {
                dr[base + i * LANES] = v;
            }
        }
    }

    /// Store one lane into a single-RHS tile of the same shape (full padded
    /// storage, the inverse of [`MultiBlockVec::load_lane`]).
    pub fn store_lane(&self, g: usize, lane: usize, dst: &mut BlockVec) {
        self.check_lane_shape(g, lane, dst);
        let s = self.stride;
        let rows = self.rows();
        let sr = self.data.as_slice();
        for jj in 0..rows {
            let base = ((g * rows + jj) * s) * LANES + lane;
            let drow = &mut dst.raw_mut()[jj * s..(jj + 1) * s];
            for (i, v) in drow.iter_mut().enumerate() {
                *v = sr[base + i * LANES];
            }
        }
    }

    fn check_lane_shape(&self, g: usize, lane: usize, other: &BlockVec) {
        assert!(g < self.groups && lane < LANES, "lane slot out of range");
        assert!(
            self.nx == other.nx
                && self.ny == other.ny
                && self.halo == other.halo
                && self.stride == other.stride(),
            "lane copy requires identical tile shapes"
        );
    }
}

/// Per-RHS masked partial dot products over one block's interior: slot
/// `g * LANES + lane` of `out` accumulates lane `(g, lane)`'s product sum
/// in row-major ocean-point order — each slot bitwise equal to
/// [`masked_block_dot`](crate::blockvec::masked_block_dot) over that lane's
/// single-RHS image.
///
/// The accumulation is branch-free: land contributes `and_bits(a*b, 0) =
/// +0.0`. Adding `+0.0` is bitwise neutral here — the accumulator starts at
/// `+0.0` and can never become `-0.0` (round-to-nearest gives `x + (-x) =
/// +0.0` and `(+0.0) + (±0.0) = +0.0`), and for any other value `acc +
/// (+0.0) == acc` exactly — so skipping land (the scalar loop) and adding
/// masked zeros (this loop) produce identical bits.
pub fn masked_dot_multi(a: &MultiBlockVec, b: &MultiBlockVec, mask: &[u8], out: &mut [f64]) {
    assert_eq!(a.nx, b.nx);
    assert_eq!(a.ny, b.ny);
    assert_eq!(a.groups, b.groups);
    assert!(out.len() >= a.groups * LANES, "output slice too short");
    debug_assert_eq!(mask.len(), a.nx * a.ny);
    let (nx, ny) = (a.nx, a.ny);
    for g in 0..a.groups {
        let acc = &mut out[g * LANES..(g + 1) * LANES];
        acc.fill(0.0);
        for j in 0..ny {
            let ra = &a.raw()[a.offset(g, 0, j as isize)..];
            let rb = &b.raw()[b.offset(g, 0, j as isize)..];
            let mrow = &mask[j * nx..(j + 1) * nx];
            for i in 0..nx {
                if mrow[i] != 0 {
                    for l in 0..LANES {
                        acc[l] += ra[i * LANES + l] * rb[i * LANES + l];
                    }
                }
            }
        }
    }
}

/// A `k`-wide distributed field: one [`MultiBlockVec`] per active block of
/// the layout. The multi image of [`DistVec`].
#[derive(Debug, Clone)]
pub struct MultiDistVec {
    pub layout: Arc<DistLayout>,
    pub blocks: Vec<MultiBlockVec>,
}

impl MultiDistVec {
    /// A zero-filled `groups * LANES`-wide vector over `layout`.
    pub fn zeros(layout: &Arc<DistLayout>, groups: usize) -> Self {
        let blocks = layout
            .decomp
            .blocks
            .iter()
            .map(|b| MultiBlockVec::zeros(b.nx, b.ny, layout.halo, groups))
            .collect();
        MultiDistVec {
            layout: Arc::clone(layout),
            blocks,
        }
    }

    /// A zeroed multi vector with `model`'s layout.
    pub fn like(model: &DistVec, groups: usize) -> Self {
        Self::zeros(&model.layout, groups)
    }
}

/// A `k`-wide distributed field as seen by one communicator — the multi-RHS
/// image of [`CommVec`](crate::CommVec): block tiles addressed by global
/// active-block id.
pub trait MultiCommVec: Send + Sync {
    /// The global layout this vector's blocks belong to.
    fn layout(&self) -> &Arc<DistLayout>;

    /// Lane-group count (all blocks agree).
    fn groups(&self) -> usize;

    /// Read-only access to the multi-tile of global active block `gb`.
    fn block(&self, gb: usize) -> &MultiBlockVec;

    /// Zero every cell of every block, group, and lane.
    fn zero_fill(&mut self);
}

impl MultiCommVec for MultiDistVec {
    #[inline]
    fn layout(&self) -> &Arc<DistLayout> {
        &self.layout
    }

    #[inline]
    fn groups(&self) -> usize {
        self.blocks.first().map_or(0, |b| b.groups())
    }

    #[inline]
    fn block(&self, gb: usize) -> &MultiBlockVec {
        &self.blocks[gb]
    }

    fn zero_fill(&mut self) {
        for b in &mut self.blocks {
            b.fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockvec::masked_block_dot;

    fn seeded_block(nx: usize, ny: usize, halo: usize, seed: u64) -> BlockVec {
        let mut b = BlockVec::zeros(nx, ny, halo);
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for v in b.raw_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
        }
        b
    }

    #[test]
    fn lane_roundtrip_is_bit_exact() {
        let src: Vec<BlockVec> = (0..8).map(|k| seeded_block(7, 5, 2, k)).collect();
        let mut mv = MultiBlockVec::like(&src[0], 2);
        for (k, b) in src.iter().enumerate() {
            mv.load_lane(k / LANES, k % LANES, b);
        }
        let mut out = BlockVec::zeros(7, 5, 2);
        for (k, b) in src.iter().enumerate() {
            mv.store_lane(k / LANES, k % LANES, &mut out);
            assert_eq!(out.raw(), b.raw(), "lane {k} roundtrip");
        }
    }

    #[test]
    fn indexing_matches_lane_copies() {
        let b = seeded_block(4, 3, 1, 9);
        let mut mv = MultiBlockVec::like(&b, 1);
        mv.load_lane(0, 2, &b);
        assert_eq!(mv.at(0, 2, 1, 2).to_bits(), b.at(1, 2).to_bits());
        assert_eq!(mv.at(0, 2, -1, -1).to_bits(), b.at(-1, -1).to_bits());
        mv.set(0, 2, 3, 0, 42.0);
        assert_eq!(mv.at(0, 2, 3, 0), 42.0);
    }

    #[test]
    fn zero_halo_touches_only_halo() {
        let b = seeded_block(4, 4, 2, 3);
        let mut mv = MultiBlockVec::like(&b, 2);
        for g in 0..2 {
            for l in 0..LANES {
                mv.load_lane(g, l, &b);
            }
        }
        mv.zero_halo();
        for g in 0..2 {
            for l in 0..LANES {
                for j in 0..4usize {
                    for i in 0..4usize {
                        assert_eq!(
                            mv.at(g, l, i as isize, j as isize).to_bits(),
                            b.at(i as isize, j as isize).to_bits()
                        );
                    }
                }
                assert_eq!(mv.at(g, l, -1, 0), 0.0);
                assert_eq!(mv.at(g, l, 4, 5), 0.0);
            }
        }
    }

    #[test]
    fn region_roundtrip_matches_single_rhs_regions() {
        let srcs: Vec<BlockVec> = (0..4).map(|k| seeded_block(6, 5, 2, 20 + k)).collect();
        let mut mv = MultiBlockVec::like(&srcs[0], 1);
        for (l, b) in srcs.iter().enumerate() {
            mv.load_lane(0, l, b);
        }
        let mut mbuf = Vec::new();
        mv.extract_region(1, 2, 3, 2, &mut mbuf);
        assert_eq!(mbuf.len(), 3 * 2 * LANES);

        let mut mdst = MultiBlockVec::like(&srcs[0], 1);
        mdst.copy_region(-2, -2, &mbuf, 3, 2);

        // Each lane must match the single-RHS extract/copy of its source.
        for (l, b) in srcs.iter().enumerate() {
            let mut sbuf = Vec::new();
            b.extract_region(1, 2, 3, 2, &mut sbuf);
            let mut sdst = BlockVec::zeros(6, 5, 2);
            sdst.copy_region(-2, -2, &sbuf, 3, 2);
            let mut got = BlockVec::zeros(6, 5, 2);
            mdst.store_lane(0, l, &mut got);
            assert_eq!(got.raw(), sdst.raw(), "lane {l}");
        }
    }

    #[test]
    fn masked_dot_multi_matches_per_lane_scalar() {
        let n = 6;
        let mask: Vec<u8> = (0..n * n).map(|k| (k % 3 != 0) as u8).collect();
        let xs: Vec<BlockVec> = (0..8).map(|k| seeded_block(n, n, 1, 50 + k)).collect();
        let ys: Vec<BlockVec> = (0..8).map(|k| seeded_block(n, n, 1, 90 + k)).collect();
        let mut mx = MultiBlockVec::like(&xs[0], 2);
        let mut my = MultiBlockVec::like(&ys[0], 2);
        for k in 0..8 {
            mx.load_lane(k / LANES, k % LANES, &xs[k]);
            my.load_lane(k / LANES, k % LANES, &ys[k]);
        }
        let mut out = [0.0; 8];
        masked_dot_multi(&mx, &my, &mask, &mut out);
        for k in 0..8 {
            let want = masked_block_dot(&xs[k], &ys[k], &mask);
            assert_eq!(out[k].to_bits(), want.to_bits(), "rhs {k}");
        }
    }
}

//! A halo-padded field tile for one decomposition block.

use pop_simd::AlignedVec;

/// One block's worth of a distributed field, stored with a halo ring of
/// configurable width around the interior. POP keeps a halo of width 2 so a
/// matrix–vector product *and* a non-diagonal preconditioner can run between
/// boundary updates; we follow that default.
///
/// Storage is row-major; interior indices run `0..nx` × `0..ny`, and halo
/// cells are addressed with negative or past-the-end indices through
/// [`BlockVec::at`] / [`BlockVec::at_mut`]. For the SIMD kernel layer the
/// backing buffer is 32-byte aligned and the row stride is `nx + 2*halo`
/// rounded up to the 4-lane width ([`pop_simd::LANES`]), so consecutive
/// rows keep the same alignment phase; the pad columns at the end of each
/// row are storage-only — no kernel reads or writes them. All flat
/// indexing must go through [`BlockVec::stride`], never recompute
/// `nx + 2*halo`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockVec {
    /// Interior zonal extent.
    pub nx: usize,
    /// Interior meridional extent.
    pub ny: usize,
    /// Halo width on each side.
    pub halo: usize,
    /// Row stride of the padded storage: `nx + 2*halo` rounded up to the
    /// SIMD lane width.
    stride: usize,
    data: AlignedVec,
}

impl BlockVec {
    /// A zero-filled tile.
    pub fn zeros(nx: usize, ny: usize, halo: usize) -> Self {
        assert!(nx > 0 && ny > 0, "empty block");
        let stride = pop_simd::round_up_lanes(nx + 2 * halo);
        let rows = ny + 2 * halo;
        BlockVec {
            nx,
            ny,
            halo,
            stride,
            data: AlignedVec::zeros(stride * rows),
        }
    }

    /// Row stride of the padded storage (`nx + 2*halo` rounded up to the
    /// SIMD lane width). Exposed for flat kernels that index
    /// [`BlockVec::raw`] directly.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Linear index of logical position `(i, j)`; accepts halo coordinates
    /// `-halo..nx+halo` × `-halo..ny+halo`.
    #[inline]
    pub fn offset(&self, i: isize, j: isize) -> usize {
        let h = self.halo as isize;
        debug_assert!(i >= -h && i < self.nx as isize + h, "i={i} out of range");
        debug_assert!(j >= -h && j < self.ny as isize + h, "j={j} out of range");
        ((j + h) as usize) * self.stride() + (i + h) as usize
    }

    /// Read the value at `(i, j)` (halo coordinates allowed).
    #[inline]
    pub fn at(&self, i: isize, j: isize) -> f64 {
        self.data[self.offset(i, j)]
    }

    /// Mutable access at `(i, j)` (halo coordinates allowed).
    #[inline]
    pub fn at_mut(&mut self, i: isize, j: isize) -> &mut f64 {
        let k = self.offset(i, j);
        &mut self.data[k]
    }

    /// Interior read with `usize` coordinates (the hot-loop form).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nx && j < self.ny);
        self.data[(j + self.halo) * self.stride() + i + self.halo]
    }

    /// Interior write with `usize` coordinates.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nx && j < self.ny);
        let s = self.stride();
        self.data[(j + self.halo) * s + i + self.halo] = v;
    }

    /// The raw padded storage (including halo and stride padding),
    /// row-major with [`BlockVec::stride`].
    #[inline]
    pub fn raw(&self) -> &[f64] {
        self.data.as_slice()
    }

    /// Mutable raw padded storage.
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [f64] {
        self.data.as_mut_slice()
    }

    /// One interior row as a slice (excludes halo columns).
    #[inline]
    pub fn interior_row(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.ny);
        let s = self.stride();
        let start = (j + self.halo) * s + self.halo;
        &self.data[start..start + self.nx]
    }

    /// Mutable interior row.
    #[inline]
    pub fn interior_row_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.ny);
        let s = self.stride();
        let start = (j + self.halo) * s + self.halo;
        &mut self.data[start..start + self.nx]
    }

    /// Set every cell (interior and halo) to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.as_mut_slice().fill(v);
    }

    /// Zero only the halo ring, leaving the interior untouched.
    pub fn zero_halo(&mut self) {
        let h = self.halo as isize;
        if h == 0 {
            return;
        }
        let (nx, ny) = (self.nx as isize, self.ny as isize);
        for j in -h..ny + h {
            for i in -h..nx + h {
                if i < 0 || i >= nx || j < 0 || j >= ny {
                    let k = self.offset(i, j);
                    self.data[k] = 0.0;
                }
            }
        }
    }

    /// Copy a rectangular region of `src` (interior coordinates, origin
    /// `(si, sj)`, extent `w × h`) into this tile at logical origin
    /// `(di, dj)` (halo coordinates allowed). Used by the halo exchange.
    pub fn copy_region(&mut self, di: isize, dj: isize, src: &[f64], w: usize, h: usize) {
        debug_assert_eq!(src.len(), w * h, "region buffer size mismatch");
        for r in 0..h {
            for c in 0..w {
                let k = self.offset(di + c as isize, dj + r as isize);
                self.data[k] = src[r * w + c];
            }
        }
    }

    /// Extract a rectangular region of the interior (origin `(si, sj)`,
    /// extent `w × h`) into `out`. Used by the halo exchange gather phase.
    pub fn extract_region(&self, si: usize, sj: usize, w: usize, h: usize, out: &mut Vec<f64>) {
        debug_assert!(
            si + w <= self.nx && sj + h <= self.ny,
            "region out of interior"
        );
        out.clear();
        out.reserve(w * h);
        for r in 0..h {
            let row = self.interior_row(sj + r);
            out.extend_from_slice(&row[si..si + w]);
        }
    }
}

/// Masked partial dot product over one block's interior, accumulating in
/// row-major ocean-point order — the canonical per-block partial that every
/// runtime (shared-memory or rank-based) folds in global block order, so
/// reductions stay bit-identical regardless of execution backend.
#[inline]
pub fn masked_block_dot(a: &BlockVec, b: &BlockVec, mask: &[u8]) -> f64 {
    let nx = a.nx;
    let mut acc = 0.0;
    for j in 0..a.ny {
        let ra = a.interior_row(j);
        let rb = b.interior_row(j);
        let mrow = &mask[j * nx..(j + 1) * nx];
        for i in 0..nx {
            if mrow[i] != 0 {
                acc += ra[i] * rb[i];
            }
        }
    }
    acc
}

/// Masked max-|value| over one block's interior, the per-block partial of
/// the global [`CommWorld::max_abs`](crate::CommWorld::max_abs) reduction.
#[inline]
pub fn masked_block_max_abs(a: &BlockVec, mask: &[u8]) -> f64 {
    let nx = a.nx;
    let mut m = 0.0f64;
    for j in 0..a.ny {
        let ra = a.interior_row(j);
        let mrow = &mask[j * nx..(j + 1) * nx];
        for i in 0..nx {
            if mrow[i] != 0 {
                m = m.max(ra[i].abs());
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut b = BlockVec::zeros(4, 3, 2);
        b.set(2, 1, 7.5);
        assert_eq!(b.get(2, 1), 7.5);
        assert_eq!(b.at(2, 1), 7.5);
        *b.at_mut(-2, -2) = 1.0;
        assert_eq!(b.at(-2, -2), 1.0);
        *b.at_mut(5, 4) = 2.0;
        assert_eq!(b.at(5, 4), 2.0);
    }

    #[test]
    fn zero_halo_preserves_interior() {
        let mut b = BlockVec::zeros(3, 3, 1);
        b.fill(9.0);
        b.zero_halo();
        for j in 0..3 {
            for i in 0..3 {
                assert_eq!(b.get(i, j), 9.0);
            }
        }
        assert_eq!(b.at(-1, 0), 0.0);
        assert_eq!(b.at(3, 3), 0.0);
        assert_eq!(b.at(1, -1), 0.0);
    }

    #[test]
    fn interior_rows_have_right_len() {
        let b = BlockVec::zeros(5, 4, 2);
        for j in 0..4 {
            assert_eq!(b.interior_row(j).len(), 5);
        }
    }

    #[test]
    fn extract_then_copy_region_roundtrips() {
        let mut src = BlockVec::zeros(6, 5, 2);
        for j in 0..5 {
            for i in 0..6 {
                src.set(i, j, (10 * j + i) as f64);
            }
        }
        let mut buf = Vec::new();
        src.extract_region(1, 2, 3, 2, &mut buf);
        assert_eq!(buf, vec![21.0, 22.0, 23.0, 31.0, 32.0, 33.0]);

        let mut dst = BlockVec::zeros(6, 5, 2);
        dst.copy_region(-2, -2, &buf, 3, 2);
        assert_eq!(dst.at(-2, -2), 21.0);
        assert_eq!(dst.at(0, -1), 33.0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)] // bounds checks are debug_assert!s
    fn out_of_range_debug_panics() {
        let b = BlockVec::zeros(3, 3, 1);
        let _ = b.at(5, 0);
    }
}

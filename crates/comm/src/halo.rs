//! Halo-exchange region geometry.
//!
//! For each (block, direction) pair this module computes which rectangle of
//! the *neighbour's interior* must be copied into which rectangle of the
//! block's *halo ring*. Blocks at the grid edge can be narrower than the
//! nominal block size — even narrower than the halo — so extents are clamped
//! to what the neighbour actually owns; the remainder of the halo ring stays
//! zero (the Dirichlet land/boundary value).

use pop_grid::{BlockInfo, Direction};

/// One copy operation of the halo exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyRegion {
    /// Origin in the source block's interior coordinates.
    pub src_i: usize,
    pub src_j: usize,
    /// Extent of the copied rectangle.
    pub w: usize,
    pub h: usize,
    /// Destination origin in the receiving block's halo coordinates.
    pub dst_i: isize,
    pub dst_j: isize,
}

/// The region that block `me` receives from neighbour `nb` lying in
/// direction `dir`, with halo width `halo`. Returns `None` when the
/// neighbour is too small to contribute anything.
pub fn recv_region(
    me: &BlockInfo,
    nb: &BlockInfo,
    dir: Direction,
    halo: usize,
) -> Option<CopyRegion> {
    let h = halo;
    // E/W neighbours share bj hence ny; N/S share bi hence nx. Diagonals
    // share neither; clamp both extents.
    let r = match dir {
        Direction::East => CopyRegion {
            src_i: 0,
            src_j: 0,
            w: h.min(nb.nx),
            h: me.ny,
            dst_i: me.nx as isize,
            dst_j: 0,
        },
        Direction::West => {
            let w = h.min(nb.nx);
            CopyRegion {
                src_i: nb.nx - w,
                src_j: 0,
                w,
                h: me.ny,
                dst_i: -(w as isize),
                dst_j: 0,
            }
        }
        Direction::North => CopyRegion {
            src_i: 0,
            src_j: 0,
            w: me.nx,
            h: h.min(nb.ny),
            dst_i: 0,
            dst_j: me.ny as isize,
        },
        Direction::South => {
            let hh = h.min(nb.ny);
            CopyRegion {
                src_i: 0,
                src_j: nb.ny - hh,
                w: me.nx,
                h: hh,
                dst_i: 0,
                dst_j: -(hh as isize),
            }
        }
        Direction::NorthEast => CopyRegion {
            src_i: 0,
            src_j: 0,
            w: h.min(nb.nx),
            h: h.min(nb.ny),
            dst_i: me.nx as isize,
            dst_j: me.ny as isize,
        },
        Direction::NorthWest => {
            let w = h.min(nb.nx);
            CopyRegion {
                src_i: nb.nx - w,
                src_j: 0,
                w,
                h: h.min(nb.ny),
                dst_i: -(w as isize),
                dst_j: me.ny as isize,
            }
        }
        Direction::SouthEast => {
            let hh = h.min(nb.ny);
            CopyRegion {
                src_i: 0,
                src_j: nb.ny - hh,
                w: h.min(nb.nx),
                h: hh,
                dst_i: me.nx as isize,
                dst_j: -(hh as isize),
            }
        }
        Direction::SouthWest => {
            let w = h.min(nb.nx);
            let hh = h.min(nb.ny);
            CopyRegion {
                src_i: nb.nx - w,
                src_j: nb.ny - hh,
                w,
                h: hh,
                dst_i: -(w as isize),
                dst_j: -(hh as isize),
            }
        }
    };
    if r.w == 0 || r.h == 0 {
        None
    } else {
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(nx: usize, ny: usize) -> BlockInfo {
        BlockInfo {
            active_id: 0,
            bi: 0,
            bj: 0,
            i0: 0,
            j0: 0,
            nx,
            ny,
            ocean_points: nx * ny,
        }
    }

    #[test]
    fn east_region_shape() {
        let me = block(8, 6);
        let nb = block(8, 6);
        let r = recv_region(&me, &nb, Direction::East, 2).expect("region");
        assert_eq!((r.src_i, r.src_j, r.w, r.h), (0, 0, 2, 6));
        assert_eq!((r.dst_i, r.dst_j), (8, 0));
    }

    #[test]
    fn west_region_takes_neighbors_east_columns() {
        let me = block(8, 6);
        let nb = block(5, 6);
        let r = recv_region(&me, &nb, Direction::West, 2).expect("region");
        assert_eq!((r.src_i, r.src_j, r.w, r.h), (3, 0, 2, 6));
        assert_eq!((r.dst_i, r.dst_j), (-2, 0));
    }

    #[test]
    fn narrow_neighbor_clamps() {
        let me = block(8, 6);
        let nb = block(1, 6); // narrower than the halo
        let r = recv_region(&me, &nb, Direction::East, 2).expect("region");
        assert_eq!(r.w, 1);
        assert_eq!(r.dst_i, 8);
    }

    #[test]
    fn corner_regions_are_halo_sized() {
        let me = block(8, 6);
        let nb = block(8, 6);
        let r = recv_region(&me, &nb, Direction::SouthWest, 2).expect("region");
        assert_eq!((r.w, r.h), (2, 2));
        assert_eq!((r.src_i, r.src_j), (6, 4));
        assert_eq!((r.dst_i, r.dst_j), (-2, -2));
    }

    #[test]
    fn all_directions_produce_regions_for_regular_blocks() {
        let me = block(8, 6);
        let nb = block(8, 6);
        for d in Direction::ALL {
            assert!(recv_region(&me, &nb, d, 2).is_some(), "{d:?}");
        }
    }
}

//! The communication world: executes collectives and counts them.

use crate::blockvec::BlockVec;
use crate::distvec::DistVec;
use crate::halo::recv_region;
use crate::pool;
use pop_grid::Direction;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How block-level work is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPolicy {
    /// One thread, blocks processed in order. Deterministic reference.
    Serial,
    /// Blocks processed on the crate's persistent worker pool
    /// ([`crate::pool`]). Reductions still combine partials in block order,
    /// so results are bit-identical to [`ExecPolicy::Serial`].
    Threaded,
}

/// Width of the per-block partial-reduction slot of a fused sweep. Wide
/// enough for the hungriest solver at the widest RHS batch (pipelined CG
/// fuses three dot products per RHS; a 16-wide batch needs 48 slots);
/// unused lanes stay `0.0` and add nothing. Both runtimes charge allreduce
/// cost by the *requested* scalar count, not this capacity, so widening the
/// slot is free.
pub const MAX_SWEEP_PARTIALS: usize = 64;

/// Per-block (and combined) partial reductions of a fused sweep.
pub type SweepPartials = [f64; MAX_SWEEP_PARTIALS];

/// A raw pointer that may cross threads. Every use in this module hands each
/// worker a *disjoint* element (one per claimed block index), so no two
/// threads ever alias the same referent.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
impl<T> SendPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Counters for every communication event issued through a [`CommWorld`].
///
/// These are the quantities the paper's cost model consumes: the number of
/// global reductions (ChronGear: one fused allreduce per iteration; P-CSI:
/// only the periodic convergence check), the number of halo updates, and the
/// halo byte volume.
#[derive(Debug, Default)]
pub struct CommStats {
    pub halo_updates: AtomicU64,
    pub halo_messages: AtomicU64,
    pub halo_bytes: AtomicU64,
    pub allreduces: AtomicU64,
    pub allreduce_scalars: AtomicU64,
    /// Collective messages put on the wire by reduction trees. Zero on the
    /// shared-memory backends (no wire); the rank runtime counts each hop
    /// of whatever `ReduceAlgo` schedule it executes.
    pub allreduce_steps: AtomicU64,
    /// Modelled payload bytes of those collective messages — what makes
    /// Rabenseifner's halving schedule observable against full-payload
    /// exchanges.
    pub allreduce_bytes_on_wire: AtomicU64,
    pub barriers: AtomicU64,
    /// Messages retransmitted after a (simulated) drop. Always zero on the
    /// shared-memory backends; the ranksim fault layer feeds it.
    pub retries: AtomicU64,
    /// Duplicate deliveries discarded by sequence-number dedup.
    pub duplicates: AtomicU64,
    /// Messages whose payload arrived corrupted or permanently failed
    /// (surfaced to the solver instead of panicking).
    pub delivery_failures: AtomicU64,
}

/// A plain-data copy of [`CommStats`] at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub halo_updates: u64,
    pub halo_messages: u64,
    pub halo_bytes: u64,
    pub allreduces: u64,
    pub allreduce_scalars: u64,
    /// Collective messages reduction trees put on the wire (ranksim only).
    pub allreduce_steps: u64,
    /// Modelled payload bytes of those messages (ranksim only).
    pub allreduce_bytes_on_wire: u64,
    pub barriers: u64,
    /// Messages retransmitted after a simulated drop (ranksim fault layer).
    pub retries: u64,
    /// Duplicate deliveries idempotently discarded via sequence numbers.
    pub duplicates: u64,
    /// Deliveries that arrived corrupted or permanently failed.
    pub delivery_failures: u64,
}

impl StatsSnapshot {
    /// Event-count difference `self - earlier` (used to attribute counts to
    /// a single solve). Saturating: if `reset_stats` ran between the two
    /// snapshots a counter can go backwards, and the difference clamps to
    /// zero instead of panicking in debug builds.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            halo_updates: self.halo_updates.saturating_sub(earlier.halo_updates),
            halo_messages: self.halo_messages.saturating_sub(earlier.halo_messages),
            halo_bytes: self.halo_bytes.saturating_sub(earlier.halo_bytes),
            allreduces: self.allreduces.saturating_sub(earlier.allreduces),
            allreduce_scalars: self
                .allreduce_scalars
                .saturating_sub(earlier.allreduce_scalars),
            allreduce_steps: self.allreduce_steps.saturating_sub(earlier.allreduce_steps),
            allreduce_bytes_on_wire: self
                .allreduce_bytes_on_wire
                .saturating_sub(earlier.allreduce_bytes_on_wire),
            barriers: self.barriers.saturating_sub(earlier.barriers),
            retries: self.retries.saturating_sub(earlier.retries),
            duplicates: self.duplicates.saturating_sub(earlier.duplicates),
            delivery_failures: self
                .delivery_failures
                .saturating_sub(earlier.delivery_failures),
        }
    }
}

type HaloBufs = Vec<[Vec<f64>; 8]>;

/// Executes collectives over the blocks of [`DistVec`]s and records
/// communication statistics.
#[derive(Debug)]
pub struct CommWorld {
    pub policy: ExecPolicy,
    stats: CommStats,
    scratch: Mutex<HaloBufs>,
    /// Reusable per-block partial-reduction slots for fused sweeps, so
    /// steady-state solver iterations allocate nothing.
    sweep_scratch: Mutex<Vec<SweepPartials>>,
    /// Reusable flat per-block partials for the unfused `dot_many` /
    /// `max_abs` paths, matching the zero-alloc discipline of the sweeps.
    partials_scratch: Mutex<Vec<f64>>,
}

impl CommWorld {
    pub fn new(policy: ExecPolicy) -> Self {
        CommWorld {
            policy,
            stats: CommStats::default(),
            scratch: Mutex::new(Vec::new()),
            sweep_scratch: Mutex::new(Vec::new()),
            partials_scratch: Mutex::new(Vec::new()),
        }
    }

    /// Serial deterministic world.
    pub fn serial() -> Self {
        Self::new(ExecPolicy::Serial)
    }

    /// Thread-pool world.
    pub fn threaded() -> Self {
        Self::new(ExecPolicy::Threaded)
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            halo_updates: self.stats.halo_updates.load(Ordering::Relaxed),
            halo_messages: self.stats.halo_messages.load(Ordering::Relaxed),
            halo_bytes: self.stats.halo_bytes.load(Ordering::Relaxed),
            allreduces: self.stats.allreduces.load(Ordering::Relaxed),
            allreduce_scalars: self.stats.allreduce_scalars.load(Ordering::Relaxed),
            allreduce_steps: self.stats.allreduce_steps.load(Ordering::Relaxed),
            allreduce_bytes_on_wire: self.stats.allreduce_bytes_on_wire.load(Ordering::Relaxed),
            barriers: self.stats.barriers.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            duplicates: self.stats.duplicates.load(Ordering::Relaxed),
            delivery_failures: self.stats.delivery_failures.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset_stats(&self) {
        self.stats.halo_updates.store(0, Ordering::Relaxed);
        self.stats.halo_messages.store(0, Ordering::Relaxed);
        self.stats.halo_bytes.store(0, Ordering::Relaxed);
        self.stats.allreduces.store(0, Ordering::Relaxed);
        self.stats.allreduce_scalars.store(0, Ordering::Relaxed);
        self.stats.allreduce_steps.store(0, Ordering::Relaxed);
        self.stats.allreduce_bytes_on_wire.store(0, Ordering::Relaxed);
        self.stats.barriers.store(0, Ordering::Relaxed);
        self.stats.retries.store(0, Ordering::Relaxed);
        self.stats.duplicates.store(0, Ordering::Relaxed);
        self.stats.delivery_failures.store(0, Ordering::Relaxed);
    }

    /// Total parallelism behind this world (1 under [`ExecPolicy::Serial`]).
    pub fn threads(&self) -> usize {
        match self.policy {
            ExecPolicy::Serial => 1,
            ExecPolicy::Threaded => pool::global().n_threads(),
        }
    }

    /// Run `f` over an indexed mutable slice, serially or on the pool.
    pub fn for_each_block<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        match self.policy {
            ExecPolicy::Serial => {
                for (k, it) in items.iter_mut().enumerate() {
                    f(k, it);
                }
            }
            ExecPolicy::Threaded => {
                let base = SendPtr(items.as_mut_ptr());
                pool::global().run_indexed(items.len(), &|k| {
                    // SAFETY: the pool claims each index exactly once, so
                    // every task gets a disjoint element.
                    let it = unsafe { &mut *base.get().add(k) };
                    f(k, it);
                });
            }
        }
    }

    /// Map each block index to a value, preserving block order in the output
    /// (so downstream folds are deterministic under both policies).
    pub fn map_blocks<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync + Send,
    {
        match self.policy {
            ExecPolicy::Serial => (0..n).map(f).collect(),
            ExecPolicy::Threaded => {
                let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
                let base = SendPtr(out.as_mut_ptr());
                pool::global().run_indexed(n, &|k| {
                    // SAFETY: disjoint element per claimed index.
                    unsafe { *base.get().add(k) = Some(f(k)) };
                });
                out.into_iter()
                    .map(|o| o.expect("pool visits every index"))
                    .collect()
            }
        }
    }

    /// Run a per-block partial-reduction kernel over `0..n`, writing each
    /// block's partials into the reusable scratch row for that block, then
    /// combine the rows **in block order**. This fixed combine order is what
    /// keeps fused reductions bit-identical between the serial and threaded
    /// backends. Allocation-free once the scratch has grown to `n` rows.
    fn sweep_reduce<F>(&self, n: usize, f: F) -> SweepPartials
    where
        F: Fn(usize) -> SweepPartials + Sync,
    {
        let mut partials = self.sweep_scratch.lock().expect("sweep scratch poisoned");
        if partials.len() != n {
            partials.clear();
            partials.resize(n, [0.0; MAX_SWEEP_PARTIALS]);
        }
        let base = SendPtr(partials.as_mut_ptr());
        let run = |b: usize| {
            // SAFETY: disjoint row per claimed index.
            unsafe { *base.get().add(b) = f(b) };
        };
        match self.policy {
            ExecPolicy::Serial => (0..n).for_each(run),
            ExecPolicy::Threaded => pool::global().run_indexed(n, &run),
        }
        let mut acc = [0.0; MAX_SWEEP_PARTIALS];
        for row in partials.iter() {
            for (a, v) in acc.iter_mut().zip(row) {
                *a += *v;
            }
        }
        acc
    }

    /// The fused execution primitive: walk all blocks **once**, handing the
    /// kernel block `b`'s tiles of every mutable operand back-to-back while
    /// the block is cache-hot, and accumulate up to [`MAX_SWEEP_PARTIALS`]
    /// partial reductions per block.
    ///
    /// The returned partials are combined in block order (deterministic under
    /// both policies). Nothing is recorded in [`CommStats`]: a fused sweep is
    /// local work. When the caller *consumes* the combined partials as a
    /// global value (a dot product, a norm), it must account for the implied
    /// communication with [`CommWorld::record_allreduce`].
    ///
    /// All operands must share a layout; read-only operands are captured by
    /// the kernel closure directly.
    pub fn for_each_block_fused<const M: usize, F>(
        &self,
        muts: [&mut DistVec; M],
        kernel: F,
    ) -> SweepPartials
    where
        F: Fn(usize, &mut [&mut BlockVec; M]) -> SweepPartials + Sync,
    {
        assert!(M > 0, "fused sweep needs a mutable operand");
        let n = muts[0].layout.n_blocks();
        for v in muts.iter().skip(1) {
            assert!(
                Arc::ptr_eq(&muts[0].layout, &v.layout),
                "fused sweep operands must share a layout"
            );
        }
        // Distinct `&mut DistVec` arguments are guaranteed disjoint by the
        // borrow checker, so per-block tiles never alias across operands.
        let bases: [SendPtr<BlockVec>; M] = muts.map(|v| SendPtr(v.blocks.as_mut_ptr()));
        let kernel = &kernel;
        self.sweep_reduce(n, move |b| {
            // SAFETY: disjoint block index per task; disjoint vectors per
            // the borrow argument above.
            let mut tiles: [&mut BlockVec; M] =
                std::array::from_fn(|m| unsafe { &mut *bases[m].get().add(b) });
            kernel(b, &mut tiles)
        })
    }

    /// Read-only fused sweep over `0..n` blocks: per-block partials combined
    /// in block order. Same accounting rules as
    /// [`CommWorld::for_each_block_fused`].
    pub fn reduce_blocks_fused<F>(&self, n: usize, f: F) -> SweepPartials
    where
        F: Fn(usize) -> SweepPartials + Sync,
    {
        self.sweep_reduce(n, f)
    }

    /// Record one allreduce of `scalars` values whose arithmetic was carried
    /// by a fused sweep's partials. Keeps the fused solver paths'
    /// communication accounting identical to the unfused ones.
    pub fn record_allreduce(&self, scalars: u64) {
        self.stats.allreduces.fetch_add(1, Ordering::Relaxed);
        self.stats
            .allreduce_scalars
            .fetch_add(scalars, Ordering::Relaxed);
    }

    /// Masked global dot product via a fused sweep: bit-identical to
    /// [`CommWorld::dot`], allocation-free in steady state, one recorded
    /// allreduce.
    pub fn dot_fused(&self, x: &DistVec, y: &DistVec) -> f64 {
        let n = x.layout.n_blocks();
        let acc = self.reduce_blocks_fused(n, |b| {
            let mut p = [0.0; MAX_SWEEP_PARTIALS];
            p[0] = x.block_dot(y, b);
            p
        });
        self.record_allreduce(1);
        acc[0]
    }

    /// Update the halo ring of every block of `v` from its neighbours'
    /// interiors, zero-filling halo cells with no owner (land neighbours and
    /// domain boundaries). One call corresponds to one `update_halo` in the
    /// paper's pseudocode (a message to each of up to 8 neighbours).
    pub fn halo_update(&self, v: &mut DistVec) {
        let layout = std::sync::Arc::clone(&v.layout);
        let decomp = &layout.decomp;
        let halo = layout.halo;
        let n = decomp.blocks.len();

        let mut scratch = self.scratch.lock().expect("halo scratch poisoned");
        if scratch.len() != n {
            *scratch = (0..n)
                .map(|_| std::array::from_fn(|_| Vec::new()))
                .collect();
        }

        let mut messages = 0u64;
        let mut elems = 0u64;

        // Phase 1: gather every outgoing region into per-(block, direction)
        // buffers. Reads are shared; each buffer row is written by one task.
        {
            let v_ref = &*v;
            let gather = |b: usize, bufs: &mut [Vec<f64>; 8]| {
                let me = &decomp.blocks[b];
                for d in Direction::ALL {
                    let buf = &mut bufs[d.index()];
                    buf.clear();
                    if let Some(nb) = decomp.neighbors[b][d.index()] {
                        if let Some(r) = recv_region(me, &decomp.blocks[nb], d, halo) {
                            v_ref.blocks[nb].extract_region(r.src_i, r.src_j, r.w, r.h, buf);
                        }
                    }
                }
            };
            self.for_each_block(&mut scratch[..], gather);
        }

        for bufs in scratch.iter() {
            for buf in bufs {
                if !buf.is_empty() {
                    messages += 1;
                    elems += buf.len() as u64;
                }
            }
        }

        // Phase 2: scatter buffers into each block's halo ring.
        {
            let scratch_ref = &*scratch;
            let scatter = |b: usize, blk: &mut crate::BlockVec| {
                blk.zero_halo();
                let me = &decomp.blocks[b];
                for d in Direction::ALL {
                    if let Some(nb) = decomp.neighbors[b][d.index()] {
                        if let Some(r) = recv_region(me, &decomp.blocks[nb], d, halo) {
                            let buf = &scratch_ref[b][d.index()];
                            blk.copy_region(r.dst_i, r.dst_j, buf, r.w, r.h);
                        }
                    }
                }
            };
            self.for_each_block(&mut v.blocks, scatter);
        }

        self.stats.halo_updates.fetch_add(1, Ordering::Relaxed);
        self.stats
            .halo_messages
            .fetch_add(messages, Ordering::Relaxed);
        self.stats
            .halo_bytes
            .fetch_add(elems * std::mem::size_of::<f64>() as u64, Ordering::Relaxed);
    }

    /// Multi-RHS image of [`CommWorld::halo_update`]: update the halo ring
    /// of every block of a `k`-wide vector. Same message *count* as the
    /// single-RHS exchange — each (block, direction) strip travels as one
    /// buffer carrying all `k` lanes — with honestly `k×` the byte volume.
    pub fn halo_update_multi(&self, v: &mut crate::MultiDistVec) {
        let layout = std::sync::Arc::clone(&v.layout);
        let decomp = &layout.decomp;
        let halo = layout.halo;
        let n = decomp.blocks.len();

        let mut scratch = self.scratch.lock().expect("halo scratch poisoned");
        if scratch.len() != n {
            *scratch = (0..n)
                .map(|_| std::array::from_fn(|_| Vec::new()))
                .collect();
        }

        let mut messages = 0u64;
        let mut elems = 0u64;

        // Phase 1: gather outgoing regions (all groups and lanes per
        // buffer). Reads are shared; each buffer row is written by one task.
        {
            let v_ref = &*v;
            let gather = |b: usize, bufs: &mut [Vec<f64>; 8]| {
                let me = &decomp.blocks[b];
                for d in Direction::ALL {
                    let buf = &mut bufs[d.index()];
                    buf.clear();
                    if let Some(nb) = decomp.neighbors[b][d.index()] {
                        if let Some(r) = recv_region(me, &decomp.blocks[nb], d, halo) {
                            v_ref.blocks[nb].extract_region(r.src_i, r.src_j, r.w, r.h, buf);
                        }
                    }
                }
            };
            self.for_each_block(&mut scratch[..], gather);
        }

        for bufs in scratch.iter() {
            for buf in bufs {
                if !buf.is_empty() {
                    messages += 1;
                    elems += buf.len() as u64;
                }
            }
        }

        // Phase 2: scatter buffers into each block's halo ring.
        {
            let scratch_ref = &*scratch;
            let scatter = |b: usize, blk: &mut crate::MultiBlockVec| {
                blk.zero_halo();
                let me = &decomp.blocks[b];
                for d in Direction::ALL {
                    if let Some(nb) = decomp.neighbors[b][d.index()] {
                        if let Some(r) = recv_region(me, &decomp.blocks[nb], d, halo) {
                            let buf = &scratch_ref[b][d.index()];
                            blk.copy_region(r.dst_i, r.dst_j, buf, r.w, r.h);
                        }
                    }
                }
            };
            self.for_each_block(&mut v.blocks, scatter);
        }

        self.stats.halo_updates.fetch_add(1, Ordering::Relaxed);
        self.stats
            .halo_messages
            .fetch_add(messages, Ordering::Relaxed);
        self.stats
            .halo_bytes
            .fetch_add(elems * std::mem::size_of::<f64>() as u64, Ordering::Relaxed);
    }

    /// Multi-RHS image of [`CommWorld::for_each_block_fused`]: one fused
    /// sweep over `k`-wide tiles, collecting up to [`MAX_SWEEP_PARTIALS`]
    /// per-block partials (per-RHS slots included) combined in block order.
    pub fn for_each_block_multi<const M: usize, F>(
        &self,
        muts: [&mut crate::MultiDistVec; M],
        kernel: F,
    ) -> SweepPartials
    where
        F: Fn(usize, &mut [&mut crate::MultiBlockVec; M]) -> SweepPartials + Sync,
    {
        assert!(M > 0, "fused sweep needs a mutable operand");
        let n = muts[0].layout.n_blocks();
        for v in muts.iter().skip(1) {
            assert!(
                Arc::ptr_eq(&muts[0].layout, &v.layout),
                "fused sweep operands must share a layout"
            );
        }
        let bases: [SendPtr<crate::MultiBlockVec>; M] =
            muts.map(|v| SendPtr(v.blocks.as_mut_ptr()));
        let kernel = &kernel;
        self.sweep_reduce(n, move |b| {
            // SAFETY: disjoint block index per task; disjoint vectors per
            // the distinct `&mut` arguments.
            let mut tiles: [&mut crate::MultiBlockVec; M] =
                std::array::from_fn(|m| unsafe { &mut *bases[m].get().add(b) });
            kernel(b, &mut tiles)
        })
    }

    /// Masked global dot products of several vector pairs, fused into a
    /// *single* recorded allreduce. ChronGear's step 9 fuses exactly two
    /// (`ρ̃`, `δ̃`); the convergence check uses one.
    pub fn dot_many(&self, pairs: &[(&DistVec, &DistVec)]) -> Vec<f64> {
        assert!(!pairs.is_empty(), "no dot products requested");
        let n = pairs[0].0.layout.n_blocks();
        let k = pairs.len();
        let mut partials = self
            .partials_scratch
            .lock()
            .expect("partials scratch poisoned");
        partials.clear();
        partials.resize(n * k, 0.0);
        {
            let base = SendPtr(partials.as_mut_ptr());
            let run = |b: usize| {
                // SAFETY: disjoint k-wide row per claimed block index.
                let row = unsafe { std::slice::from_raw_parts_mut(base.get().add(b * k), k) };
                for (slot, (x, y)) in row.iter_mut().zip(pairs) {
                    *slot = x.block_dot(y, b);
                }
            };
            match self.policy {
                ExecPolicy::Serial => (0..n).for_each(run),
                ExecPolicy::Threaded => pool::global().run_indexed(n, &run),
            }
        }
        // Combine in block order: deterministic under both policies.
        let mut out = vec![0.0; k];
        for b in 0..n {
            for (o, v) in out.iter_mut().zip(&partials[b * k..(b + 1) * k]) {
                *o += v;
            }
        }
        self.record_allreduce(k as u64);
        out
    }

    /// Masked global dot product (one allreduce).
    pub fn dot(&self, x: &DistVec, y: &DistVec) -> f64 {
        self.dot_many(&[(x, y)])[0]
    }

    /// Masked global squared 2-norm (one allreduce).
    pub fn norm2_sq(&self, x: &DistVec) -> f64 {
        self.dot(x, x)
    }

    /// Masked global max |value| (one allreduce).
    pub fn max_abs(&self, x: &DistVec) -> f64 {
        let n = x.layout.n_blocks();
        let mut partials = self
            .partials_scratch
            .lock()
            .expect("partials scratch poisoned");
        partials.clear();
        partials.resize(n, 0.0);
        let base = SendPtr(partials.as_mut_ptr());
        let run = |b: usize| {
            // SAFETY: disjoint element per claimed index.
            unsafe { *base.get().add(b) = x.block_max_abs(b) };
        };
        match self.policy {
            ExecPolicy::Serial => (0..n).for_each(run),
            ExecPolicy::Threaded => pool::global().run_indexed(n, &run),
        }
        self.record_allreduce(1);
        partials.iter().copied().fold(0.0, f64::max)
    }

    /// A global barrier (semantically a no-op here; counted for the model).
    pub fn barrier(&self) {
        self.stats.barriers.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DistLayout;
    use pop_grid::Grid;

    #[test]
    fn halo_update_matches_global_neighbors() {
        let g = Grid::gx1_scaled(21, 48, 40);
        let layout = DistLayout::build(&g, 12, 10);
        let world = CommWorld::serial();
        let mut v = DistVec::zeros(&layout);
        let val = |i: usize, j: usize| (1 + i * 7 + j * 131) as f64;
        v.fill_with(val);
        world.halo_update(&mut v);

        let nx = g.nx as isize;
        let ny = g.ny as isize;
        // Every halo cell must equal the global field value at the wrapped
        // global coordinate (0 for land / off-domain).
        for (b, info) in layout.decomp.blocks.iter().enumerate() {
            let h = layout.halo as isize;
            for j in -h..info.ny as isize + h {
                for i in -h..info.nx as isize + h {
                    let gi = info.i0 as isize + i;
                    let gj = info.j0 as isize + j;
                    let expect = if gj < 0 || gj >= ny {
                        0.0
                    } else {
                        let gi = gi.rem_euclid(nx) as usize;
                        let gj = gj as usize;
                        if g.is_ocean(gi, gj) {
                            val(gi, gj)
                        } else {
                            0.0
                        }
                    };
                    let got = v.blocks[b].at(i, j);
                    // A halo cell owned by a *land block* is zero even if the
                    // underlying grid point is ocean-adjacent... but land
                    // blocks have no ocean points by construction, so expect
                    // only differs when the neighbour block was eliminated.
                    if got != expect {
                        let neighbor_eliminated = {
                            let bi2 = gi.rem_euclid(nx) as usize / layout.decomp.block_nx;
                            let bj2 = gj.max(0) as usize / layout.decomp.block_ny;
                            layout.decomp.block_at[bj2 * layout.decomp.mx + bi2].is_none()
                        };
                        assert!(
                            neighbor_eliminated && got == 0.0,
                            "block {b} halo ({i},{j}): got {got}, expect {expect}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn serial_and_threaded_identical() {
        let g = Grid::gx1_scaled(5, 64, 48);
        let layout = DistLayout::build(&g, 16, 12);
        let mk = |world: &CommWorld| {
            let mut v = DistVec::zeros(&layout);
            v.fill_with(|i, j| ((i * 31 + j * 17) as f64).sin());
            world.halo_update(&mut v);
            let d = world.dot(&v, &v);
            (v.to_global(), d)
        };
        let (gs, ds) = mk(&CommWorld::serial());
        let (gt, dt) = mk(&CommWorld::threaded());
        assert_eq!(gs, gt, "fields must be bit-identical");
        assert_eq!(
            ds.to_bits(),
            dt.to_bits(),
            "reductions must be bit-identical"
        );
    }

    #[test]
    fn stats_count_events() {
        let g = Grid::idealized_basin(16, 16, 100.0, 1.0);
        let layout = DistLayout::build(&g, 8, 8);
        let world = CommWorld::serial();
        let mut v = DistVec::zeros(&layout);
        v.fill_with(|_, _| 1.0);
        world.halo_update(&mut v);
        world.dot_many(&[(&v, &v), (&v, &v)]);
        world.dot(&v, &v);
        let s = world.stats();
        assert_eq!(s.halo_updates, 1);
        assert!(s.halo_messages > 0);
        assert!(s.halo_bytes > 0);
        assert_eq!(s.allreduces, 2, "fused pair counts once");
        assert_eq!(s.allreduce_scalars, 3);
        world.reset_stats();
        assert_eq!(world.stats(), StatsSnapshot::default());
    }

    #[test]
    fn since_saturates_across_reset() {
        let g = Grid::idealized_basin(8, 8, 100.0, 1.0);
        let layout = DistLayout::build(&g, 4, 4);
        let world = CommWorld::serial();
        let mut v = DistVec::zeros(&layout);
        v.fill_with(|_, _| 1.0);
        world.halo_update(&mut v);
        world.dot(&v, &v);
        let before = world.stats();
        world.reset_stats();
        world.dot(&v, &v);
        // Counters went backwards across the reset; the difference must
        // clamp to zero, not panic.
        let d = world.stats().since(&before);
        assert_eq!(d.halo_updates, 0);
        assert_eq!(d.allreduces, 0);
        assert_eq!(d.allreduce_scalars, 0);
    }

    #[test]
    fn dot_counts_only_ocean() {
        let g = Grid::gx1_scaled(2, 48, 40);
        let layout = DistLayout::build(&g, 16, 10);
        let world = CommWorld::serial();
        let mut v = DistVec::zeros(&layout);
        v.fill_with(|_, _| 2.0);
        let d = world.dot(&v, &v);
        assert_eq!(d, 4.0 * layout.ocean_points() as f64);
    }

    #[test]
    fn periodic_seam_halo_wraps() {
        // Periodic strip: east halo of the easternmost block must contain the
        // westernmost block's values.
        let g = Grid::gx1_scaled(33, 64, 32);
        let layout = DistLayout::build(&g, 16, 16);
        let world = CommWorld::serial();
        let mut v = DistVec::zeros(&layout);
        v.fill_with(|i, j| (i * 1000 + j) as f64);
        world.halo_update(&mut v);
        // Find an active block on the east edge with an active west-edge
        // neighbour through the seam.
        let mx = layout.decomp.mx;
        for info in &layout.decomp.blocks {
            if info.bi == mx - 1 && info.i0 + info.nx == g.nx {
                if let Some(_e) =
                    layout.decomp.neighbors[info.active_id][pop_grid::Direction::East.index()]
                {
                    let b = info.active_id;
                    for j in 0..info.ny as isize {
                        let gj = info.j0 + j as usize;
                        let expect = if g.is_ocean(0, gj) {
                            gj as f64 // i = 0 at the wrapped west edge
                        } else {
                            0.0
                        };
                        assert_eq!(v.blocks[b].at(info.nx as isize, j), expect);
                    }
                    return;
                }
            }
        }
    }

    #[test]
    fn fused_sweep_matches_unfused_ops_bitwise() {
        let g = Grid::gx1_scaled(9, 64, 48);
        let layout = DistLayout::build(&g, 16, 12);
        let run = |world: &CommWorld| {
            let mut x = DistVec::zeros(&layout);
            let mut y = DistVec::zeros(&layout);
            x.fill_with(|i, j| ((i * 13 + j * 7) as f64 * 0.01).sin());
            y.fill_with(|i, j| ((i + 3 * j) as f64 * 0.02).cos());
            // Unfused: two separate passes plus a separate dot.
            let mut xu = x.clone();
            let mut yu = y.clone();
            yu.axpy(0.25, &xu);
            xu.scale(1.5);
            let du = world.dot(&xu, &yu);
            // Fused: one sweep doing both updates and the dot partial.
            let masks = &layout.masks;
            let acc = world.for_each_block_fused([&mut x, &mut y], |b, tiles| {
                let (nx, ny) = (tiles[0].nx, tiles[0].ny);
                let mask = &masks[b];
                let mut dot = 0.0;
                for j in 0..ny {
                    for i in 0..nx {
                        let xv = tiles[0].get(i, j);
                        let yv = tiles[1].get(i, j) + 0.25 * xv;
                        let xv = xv * 1.5;
                        tiles[1].set(i, j, yv);
                        tiles[0].set(i, j, xv);
                        if mask[j * nx + i] != 0 {
                            dot += xv * yv;
                        }
                    }
                }
                let mut p = [0.0; MAX_SWEEP_PARTIALS];
                p[0] = dot;
                p
            });
            world.record_allreduce(1);
            assert_eq!(x.to_global(), xu.to_global(), "fused x update differs");
            assert_eq!(y.to_global(), yu.to_global(), "fused y update differs");
            assert_eq!(acc[0].to_bits(), du.to_bits(), "fused dot differs");
            acc[0]
        };
        let ds = run(&CommWorld::serial());
        let dt = run(&CommWorld::threaded());
        assert_eq!(ds.to_bits(), dt.to_bits(), "policies must agree bitwise");
    }

    #[test]
    fn dot_fused_matches_dot_and_counts_once() {
        let g = Grid::gx1_scaled(4, 48, 40);
        let layout = DistLayout::build(&g, 12, 10);
        let world = CommWorld::threaded();
        let mut v = DistVec::zeros(&layout);
        v.fill_with(|i, j| ((i * 7 + j) as f64).sin());
        let a = world.dot(&v, &v);
        let before = world.stats();
        let b = world.dot_fused(&v, &v);
        let after = world.stats();
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(after.allreduces - before.allreduces, 1);
        assert_eq!(after.allreduce_scalars - before.allreduce_scalars, 1);
    }

    #[test]
    fn reduce_blocks_fused_combines_in_block_order() {
        let world = CommWorld::threaded();
        let n = 37;
        // Partials that are order-sensitive in floating point: combining in
        // any order other than 0..n would (with high probability) change the
        // bits. Compare against the explicit serial left-fold.
        let vals: Vec<f64> = (0..n)
            .map(|b| ((b * b) as f64 * 0.3).sin() * 1e10)
            .collect();
        let acc = world.reduce_blocks_fused(n, |b| {
            let mut p = [0.0; MAX_SWEEP_PARTIALS];
            p[0] = vals[b];
            p[1] = 2.0 * vals[b];
            p
        });
        let mut expect = [0.0; MAX_SWEEP_PARTIALS];
        for v in &vals {
            expect[0] += *v;
            expect[1] += 2.0 * *v;
        }
        assert_eq!(acc[0].to_bits(), expect[0].to_bits());
        assert_eq!(acc[1].to_bits(), expect[1].to_bits());
    }

    #[test]
    fn max_abs_reduction() {
        let g = Grid::idealized_basin(10, 10, 50.0, 1.0);
        let layout = DistLayout::build(&g, 5, 5);
        let world = CommWorld::serial();
        let mut v = DistVec::zeros(&layout);
        v.fill_with(|i, j| if (i, j) == (4, 5) { -42.0 } else { 1.0 });
        assert_eq!(world.max_abs(&v), 42.0);
    }
}

//! Distributed block vectors: the field type the solvers operate on.

use crate::blockvec::BlockVec;
use crate::layout::DistLayout;
use std::sync::Arc;

/// A field distributed over the active blocks of a [`DistLayout`], one
/// halo-padded [`BlockVec`] per block.
///
/// Purely local element-wise operations live here as plain methods; anything
/// involving communication (halo updates, reductions) goes through
/// [`crate::CommWorld`] so the event is counted and can be parallelized.
#[derive(Debug, Clone)]
pub struct DistVec {
    pub layout: Arc<DistLayout>,
    pub blocks: Vec<BlockVec>,
}

impl DistVec {
    /// A zero vector on `layout`.
    pub fn zeros(layout: &Arc<DistLayout>) -> Self {
        let blocks = layout
            .decomp
            .blocks
            .iter()
            .map(|b| BlockVec::zeros(b.nx, b.ny, layout.halo))
            .collect();
        DistVec {
            layout: Arc::clone(layout),
            blocks,
        }
    }

    /// Scatter a global row-major `nx × ny` field into a distributed vector.
    /// Land points are zeroed regardless of the input value.
    pub fn from_global(layout: &Arc<DistLayout>, global: &[f64]) -> Self {
        let nx = layout.decomp.grid_nx;
        assert_eq!(
            global.len(),
            nx * layout.decomp.grid_ny,
            "global field size mismatch"
        );
        let mut v = Self::zeros(layout);
        for (b, info) in layout.decomp.blocks.iter().enumerate() {
            for j in 0..info.ny {
                for i in 0..info.nx {
                    if layout.masks[b][j * info.nx + i] != 0 {
                        v.blocks[b].set(i, j, global[(info.j0 + j) * nx + info.i0 + i]);
                    }
                }
            }
        }
        v
    }

    /// Gather into a global row-major field; positions not covered by any
    /// active block (land blocks) are 0.
    pub fn to_global(&self) -> Vec<f64> {
        let nx = self.layout.decomp.grid_nx;
        let ny = self.layout.decomp.grid_ny;
        let mut out = vec![0.0; nx * ny];
        for (b, info) in self.layout.decomp.blocks.iter().enumerate() {
            for j in 0..info.ny {
                let row = self.blocks[b].interior_row(j);
                out[(info.j0 + j) * nx + info.i0..(info.j0 + j) * nx + info.i0 + info.nx]
                    .copy_from_slice(row);
            }
        }
        out
    }

    /// Fill the interior with a function of the *global* coordinates,
    /// zeroing land. Useful for manufactured solutions and forcing fields.
    pub fn fill_with(&mut self, f: impl Fn(usize, usize) -> f64) {
        for (b, info) in self.layout.decomp.blocks.clone().iter().enumerate() {
            for j in 0..info.ny {
                for i in 0..info.nx {
                    let v = if self.layout.masks[b][j * info.nx + i] != 0 {
                        f(info.i0 + i, info.j0 + j)
                    } else {
                        0.0
                    };
                    self.blocks[b].set(i, j, v);
                }
            }
        }
    }

    /// Set everything (interior and halo) to zero.
    pub fn set_zero(&mut self) {
        for b in &mut self.blocks {
            b.fill(0.0);
        }
    }

    /// Copy interior values from `src` (same layout).
    pub fn copy_from(&mut self, src: &DistVec) {
        self.check_same_layout(src);
        for (d, s) in self.blocks.iter_mut().zip(&src.blocks) {
            d.raw_mut().copy_from_slice(s.raw());
        }
    }

    /// `self += a * x` over interiors.
    pub fn axpy(&mut self, a: f64, x: &DistVec) {
        self.check_same_layout(x);
        for (d, s) in self.blocks.iter_mut().zip(&x.blocks) {
            for j in 0..d.ny {
                let dst = d.interior_row_mut(j);
                let src = s.interior_row(j);
                for (dv, sv) in dst.iter_mut().zip(src) {
                    *dv += a * sv;
                }
            }
        }
    }

    /// `self = x + a * self` over interiors (the CG search-direction update).
    pub fn xpay(&mut self, x: &DistVec, a: f64) {
        self.check_same_layout(x);
        for (d, s) in self.blocks.iter_mut().zip(&x.blocks) {
            for j in 0..d.ny {
                let dst = d.interior_row_mut(j);
                let src = s.interior_row(j);
                for (dv, sv) in dst.iter_mut().zip(src) {
                    *dv = sv + a * *dv;
                }
            }
        }
    }

    /// `self *= a` over interiors.
    pub fn scale(&mut self, a: f64) {
        for d in &mut self.blocks {
            for j in 0..d.ny {
                for v in d.interior_row_mut(j) {
                    *v *= a;
                }
            }
        }
    }

    /// Zero every land point of the interior (halo untouched). Solvers call
    /// this after operations that could smear values onto land.
    pub fn zero_land(&mut self) {
        for (b, d) in self.blocks.iter_mut().enumerate() {
            let info = &self.layout.decomp.blocks[b];
            let mask = &self.layout.masks[b];
            for j in 0..info.ny {
                let row = d.interior_row_mut(j);
                for i in 0..info.nx {
                    if mask[j * info.nx + i] == 0 {
                        row[i] = 0.0;
                    }
                }
            }
        }
    }

    /// Land-masked partial dot product of one block: Σ self·other over ocean
    /// points of block `b`.
    pub fn block_dot(&self, other: &DistVec, b: usize) -> f64 {
        let info = &self.layout.decomp.blocks[b];
        let mask = &self.layout.masks[b];
        let mut acc = 0.0;
        for j in 0..info.ny {
            let ra = self.blocks[b].interior_row(j);
            let rb = other.blocks[b].interior_row(j);
            let mrow = &mask[j * info.nx..(j + 1) * info.nx];
            for i in 0..info.nx {
                if mrow[i] != 0 {
                    acc += ra[i] * rb[i];
                }
            }
        }
        acc
    }

    /// Land-masked max |value| of one block.
    pub fn block_max_abs(&self, b: usize) -> f64 {
        let info = &self.layout.decomp.blocks[b];
        let mask = &self.layout.masks[b];
        let mut acc = 0.0f64;
        for j in 0..info.ny {
            let ra = self.blocks[b].interior_row(j);
            let mrow = &mask[j * info.nx..(j + 1) * info.nx];
            for i in 0..info.nx {
                if mrow[i] != 0 {
                    acc = acc.max(ra[i].abs());
                }
            }
        }
        acc
    }

    fn check_same_layout(&self, other: &DistVec) {
        assert!(
            Arc::ptr_eq(&self.layout, &other.layout),
            "vectors from different layouts"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_grid::Grid;

    fn layout() -> Arc<DistLayout> {
        let g = Grid::gx1_scaled(3, 48, 40);
        DistLayout::build(&g, 12, 10)
    }

    #[test]
    fn global_roundtrip_preserves_ocean_values() {
        let g = Grid::gx1_scaled(3, 48, 40);
        let layout = DistLayout::build(&g, 12, 10);
        let global: Vec<f64> = (0..g.nx * g.ny).map(|k| k as f64 + 0.5).collect();
        let v = DistVec::from_global(&layout, &global);
        let back = v.to_global();
        for j in 0..g.ny {
            for i in 0..g.nx {
                let k = j * g.nx + i;
                if g.is_ocean(i, j) {
                    assert_eq!(back[k], global[k]);
                } else {
                    assert_eq!(back[k], 0.0, "land must be zero");
                }
            }
        }
    }

    #[test]
    fn axpy_and_scale() {
        let l = layout();
        let mut a = DistVec::zeros(&l);
        let mut b = DistVec::zeros(&l);
        a.fill_with(|i, j| (i + j) as f64);
        b.fill_with(|i, _| i as f64);
        a.axpy(2.0, &b);
        a.scale(0.5);
        // a = ((i+j) + 2i)/2 = (3i + j)/2 on ocean
        let g = a.to_global();
        let nx = l.decomp.grid_nx;
        for (bidx, info) in l.decomp.blocks.iter().enumerate() {
            for j in 0..info.ny {
                for i in 0..info.nx {
                    if l.masks[bidx][j * info.nx + i] != 0 {
                        let gi = info.i0 + i;
                        let gj = info.j0 + j;
                        let expect = (3 * gi + gj) as f64 / 2.0;
                        assert!((g[gj * nx + gi] - expect).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn xpay_matches_definition() {
        let l = layout();
        let mut s = DistVec::zeros(&l);
        let mut x = DistVec::zeros(&l);
        s.fill_with(|i, _| i as f64);
        x.fill_with(|_, j| j as f64);
        let mut expect = DistVec::zeros(&l);
        expect.fill_with(|i, j| j as f64 + 3.0 * i as f64);
        s.xpay(&x, 3.0);
        assert_eq!(s.to_global(), expect.to_global());
    }

    #[test]
    fn block_dot_masks_land() {
        let l = layout();
        let mut a = DistVec::zeros(&l);
        a.fill_with(|_, _| 1.0);
        let total: f64 = (0..l.n_blocks()).map(|b| a.block_dot(&a, b)).sum();
        assert_eq!(total, l.ocean_points() as f64);
    }

    #[test]
    fn zero_land_idempotent() {
        let l = layout();
        let mut a = DistVec::zeros(&l);
        // Write garbage everywhere, including land.
        for blk in &mut a.blocks {
            blk.fill(3.0);
        }
        a.zero_land();
        let g = a.to_global();
        let ocean = g.iter().filter(|&&v| v != 0.0).count();
        assert_eq!(ocean, l.ocean_points());
    }
}

//! A minimal persistent worker pool for block-parallel sweeps.
//!
//! The solver hot loop dispatches the same shape of job thousands of times:
//! "run `f(b)` for every block index `b`". This pool is specialized to
//! exactly that — an index-claiming loop over `0..n` — and keeps its worker
//! threads parked between jobs, so a steady-state solver iteration costs two
//! condvar signals and **zero heap allocations** (no closure boxing, no
//! per-job channels).
//!
//! Design notes:
//!
//! - Workers park on a condvar and are woken by an epoch bump. The job is
//!   published as a raw pointer to the caller's closure; the caller blocks in
//!   [`ThreadPool::run_indexed`] until every worker has checked back in, so
//!   the pointed-to closure outlives all uses.
//! - Indices are claimed from a shared atomic cursor (dynamic scheduling).
//!   The *submitting* thread participates too, so a pool of size 1 spawns no
//!   threads at all and runs inline.
//! - A submitter-side mutex serializes jobs: many `CommWorld`s (e.g. unit
//!   tests running concurrently) can share the global pool safely.
//! - Worker panics are caught, counted, and re-raised on the submitting
//!   thread after the job drains, so a panicking kernel cannot leave a
//!   dangling job pointer behind.
//!
//! The pool size comes from `POP_BARO_THREADS` if set, else the machine's
//! available parallelism.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A job: a borrowed `Fn(usize)` with its lifetime erased. Only dereferenced
/// between epoch publication and the final worker check-in, during which the
/// submitter is blocked and the referent is alive.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointer is only dereferenced while the owning stack frame is
// pinned in `run_indexed` (see module docs).
unsafe impl Send for Job {}

struct State {
    /// Bumped once per job; workers wake when it changes.
    epoch: u64,
    /// Workers that have not yet finished the current job.
    remaining: usize,
    /// Number of indices in the current job.
    n_items: usize,
    task: Option<Job>,
    /// Set if any worker's kernel panicked during the current job.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    start: Condvar,
    done: Condvar,
    /// Next unclaimed index of the current job.
    cursor: AtomicUsize,
}

/// Persistent pool; see module docs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    /// Worker threads (the submitter is an extra, so parallelism is
    /// `workers + 1`).
    workers: usize,
    /// Serializes jobs from concurrent submitters.
    submit: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.n_threads())
            .finish()
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut seen = 0u64;
    loop {
        let (job, n) = {
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            while st.epoch == seen && !st.shutdown {
                st = shared.start.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.shutdown {
                return;
            }
            seen = st.epoch;
            (st.task.expect("task published with epoch"), st.n_items)
        };
        // SAFETY: the submitter keeps the closure alive until `remaining`
        // drops to zero, which happens strictly after this dereference.
        let f = unsafe { &*job.0 };
        let result = catch_unwind(AssertUnwindSafe(|| loop {
            let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            f(i);
        }));
        let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

impl ThreadPool {
    /// Pool with total parallelism `threads` (spawns `threads - 1` workers).
    pub fn new(threads: usize) -> Self {
        let workers = threads.max(1) - 1;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                remaining: 0,
                n_items: 0,
                task: None,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|k| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pop-baro-worker-{k}"))
                    .spawn(move || worker_loop(sh))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            submit: Mutex::new(()),
            handles,
        }
    }

    /// Total parallelism (workers + the submitting thread).
    pub fn n_threads(&self) -> usize {
        self.workers + 1
    }

    /// Run `f(i)` for every `i in 0..n`, each index exactly once, across the
    /// pool plus the calling thread. Blocks until all indices are done.
    /// Allocation-free in steady state.
    pub fn run_indexed(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if self.workers == 0 || n <= 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let _turn = self.submit.lock().unwrap_or_else(|e| e.into_inner());
        // Erase the closure's lifetime; validity is guaranteed by blocking
        // below until every worker has checked in.
        let job = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f as *const _)
        });
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.cursor.store(0, Ordering::Relaxed);
            st.task = Some(job);
            st.n_items = n;
            st.remaining = self.workers;
            st.panicked = false;
            st.epoch = st.epoch.wrapping_add(1);
            self.shared.start.notify_all();
        }
        // Participate: claim indices alongside the workers. Catch panics so
        // an unwinding kernel still waits for the workers (who hold a raw
        // pointer into this frame) before propagating.
        let mine = catch_unwind(AssertUnwindSafe(|| loop {
            let i = self.shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            f(i);
        }));
        let worker_panicked = {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            while st.remaining > 0 {
                st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.task = None;
            std::mem::replace(&mut st.panicked, false)
        };
        if let Err(payload) = mine {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            panic!("a pool worker panicked while running a block kernel");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Pool size used by [`global`]: `POP_BARO_THREADS` if set, else the
/// machine's available parallelism.
pub fn default_threads() -> usize {
    std::env::var("POP_BARO_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The process-wide pool used by `CommWorld::threaded()`. Built lazily on
/// first use; shared by all worlds (jobs are serialized by the submit lock).
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_claimed_exactly_once() {
        let pool = ThreadPool::new(4);
        for n in [0usize, 1, 2, 3, 17, 1000] {
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.run_indexed(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n = {n}"
            );
        }
    }

    #[test]
    fn pool_of_one_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.n_threads(), 1);
        let sum = AtomicU64::new(0);
        pool.run_indexed(100, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn reusable_across_many_jobs() {
        let pool = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..200 {
            pool.run_indexed(8, &|i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200 * 28);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(64, &|i| {
                if i == 13 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "panic must propagate to the submitter");
        // The pool must still be usable afterwards.
        let sum = AtomicU64::new(0);
        pool.run_indexed(10, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn concurrent_submitters_are_serialized() {
        let pool = Arc::new(ThreadPool::new(4));
        let total = Arc::new(AtomicU64::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let p = Arc::clone(&pool);
            let t = Arc::clone(&total);
            joins.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    p.run_indexed(16, &|i| {
                        t.fetch_add(i as u64, Ordering::Relaxed);
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 120);
    }
}

//! The distributed layout: decomposition + halo width + per-block masks.

use pop_grid::{Decomposition, Grid};
use std::sync::Arc;

/// Everything a [`crate::DistVec`] needs to know about how the global field
/// is split into blocks, shared by `Arc` between all vectors of a solve.
///
/// The per-block ocean masks are carried here (copied out of the [`Grid`])
/// because POP's `global_sum` masks land points; every masked reduction in
/// the solver consults them.
#[derive(Debug)]
pub struct DistLayout {
    pub decomp: Decomposition,
    /// Halo width; POP uses 2 (one matvec plus one stencil-preconditioner
    /// application per boundary update).
    pub halo: usize,
    /// Per active block: interior ocean mask (1 = ocean), row-major
    /// `nx × ny` of the block.
    pub masks: Vec<Vec<u8>>,
    /// Per active block: the same mask expanded to `f64` AND-mask words
    /// (ocean ↦ all-ones, land ↦ `+0.0`), row-major `nx × ny`. Precomputed
    /// here so the branch-free SIMD kernels never expand masks in the hot
    /// loop.
    pub maskbits: Vec<Vec<f64>>,
    /// Per active block: number of ocean points (cached from the mask).
    pub ocean_per_block: Vec<usize>,
}

impl DistLayout {
    /// Build a layout for `grid` under `decomp` with halo width `halo`.
    pub fn new(grid: &Grid, decomp: Decomposition, halo: usize) -> Arc<Self> {
        assert_eq!(decomp.grid_nx, grid.nx, "decomposition/grid mismatch");
        assert_eq!(decomp.grid_ny, grid.ny, "decomposition/grid mismatch");
        assert!(halo >= 1, "stencil needs at least one halo layer");
        let mut masks = Vec::with_capacity(decomp.blocks.len());
        let mut ocean = Vec::with_capacity(decomp.blocks.len());
        for b in &decomp.blocks {
            let mut m = Vec::with_capacity(b.nx * b.ny);
            for j in b.j0..b.j0 + b.ny {
                for i in b.i0..b.i0 + b.nx {
                    m.push(u8::from(grid.mask[j * grid.nx + i]));
                }
            }
            ocean.push(m.iter().map(|&v| v as usize).sum());
            masks.push(m);
        }
        let maskbits = masks.iter().map(|m| pop_simd::mask_bits(m)).collect();
        Arc::new(DistLayout {
            decomp,
            halo,
            masks,
            maskbits,
            ocean_per_block: ocean,
        })
    }

    /// Number of active blocks.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.decomp.blocks.len()
    }

    /// Global ocean point count.
    pub fn ocean_points(&self) -> usize {
        self.ocean_per_block.iter().sum()
    }

    /// Is interior point `(i, j)` of block `b` ocean?
    #[inline]
    pub fn is_ocean(&self, b: usize, i: usize, j: usize) -> bool {
        let info = &self.decomp.blocks[b];
        debug_assert!(i < info.nx && j < info.ny);
        self.masks[b][j * info.nx + i] != 0
    }

    /// Convenience constructor: decompose `grid` into blocks of the given
    /// nominal size with POP's default halo of 2.
    pub fn build(grid: &Grid, block_nx: usize, block_ny: usize) -> Arc<Self> {
        let d = Decomposition::new(grid, block_nx, block_ny);
        Self::new(grid, d, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_match_grid() {
        let g = Grid::gx1_scaled(5, 64, 48);
        let layout = DistLayout::build(&g, 16, 12);
        assert_eq!(layout.ocean_points(), g.ocean_points());
        for (b, info) in layout.decomp.blocks.iter().enumerate() {
            for j in 0..info.ny {
                for i in 0..info.nx {
                    assert_eq!(
                        layout.is_ocean(b, i, j),
                        g.is_ocean(info.i0 + i, info.j0 + j)
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one halo")]
    fn zero_halo_rejected() {
        let g = Grid::idealized_basin(8, 8, 10.0, 1.0);
        let d = Decomposition::new(&g, 4, 4);
        let _ = DistLayout::new(&g, d, 0);
    }
}

//! The [`Communicator`] trait: the communication surface the solvers use.
//!
//! The four barotropic solvers are written once, generically, against this
//! trait (`pop_core::solvers::CommSolver`); two runtimes implement it:
//!
//! - [`CommWorld`](crate::CommWorld) — the shared-memory world (serial or
//!   thread-pool), where every "message" is a copy inside one address space
//!   and reductions are block-ordered folds.
//! - `RankWorld`/`RankComm` (crate `pop-ranksim`) — a rank-per-OS-thread
//!   message-passing runtime where halo updates are explicit point-to-point
//!   sends of boundary strips and global reductions run as a binomial tree
//!   of messages, with a pluggable network model charging simulated time.
//!
//! # Deferred reduction semantics
//!
//! The key design point is how fused-sweep partials become global values.
//! [`Communicator::for_each_block_fused`] returns an opaque
//! [`Communicator::Sweep`] handle; the partials it carries are **not yet
//! global**. Only [`Communicator::reduce_sweep`] turns them into globally
//! combined sums — and *that* call is the allreduce: it is counted in
//! [`StatsSnapshot`], it pays simulated latency under a rank runtime, and a
//! solver that never calls it between convergence checks genuinely performs
//! no global communication there. This is what lets P-CSI's
//! communication-avoidance be *executed* rather than merely counted: its
//! loop body produces a residual-norm sweep handle every iteration but only
//! reduces it every `check_every` iterations.
//!
//! # Determinism contract
//!
//! `reduce_sweep` must combine the per-block partial rows of the sweep in
//! **global active-block order** with a flat left-fold starting from zero —
//! exactly what [`CommWorld`](crate::CommWorld) does in shared memory. Any
//! implementation honouring this produces bit-identical reduction values,
//! hence bit-identical solver trajectories, regardless of how many ranks
//! the blocks are spread over (`tests/ranksim_equivalence.rs` pins this).

use crate::blockvec::BlockVec;
use crate::distvec::DistVec;
use crate::layout::DistLayout;
use crate::multivec::{MultiBlockVec, MultiCommVec, MultiDistVec};
use crate::world::{CommWorld, StatsSnapshot, SweepPartials};
use std::sync::Arc;

/// A distributed field as seen by one communicator: block tiles addressed
/// by **global** active-block id.
///
/// [`DistVec`] (all blocks in one storage) and `pop-ranksim`'s `RankVec`
/// (only the blocks a rank privately owns) both implement this, so solver
/// kernels can read side operands with `v.block(bk)` under either runtime.
pub trait CommVec: Send + Sync {
    /// The global layout this vector's blocks belong to.
    fn layout(&self) -> &Arc<DistLayout>;

    /// Read-only access to the tile of global active block `gb`. Panics if
    /// this vector's view does not contain the block (a rank-private vector
    /// only holds the owning rank's blocks).
    fn block(&self, gb: usize) -> &BlockVec;

    /// Zero every cell (interior and halo) of every block in this view,
    /// exactly as a freshly allocated vector would be.
    fn zero_fill(&mut self);
}

impl CommVec for DistVec {
    #[inline]
    fn layout(&self) -> &Arc<DistLayout> {
        &self.layout
    }

    #[inline]
    fn block(&self, gb: usize) -> &BlockVec {
        &self.blocks[gb]
    }

    fn zero_fill(&mut self) {
        for b in &mut self.blocks {
            b.fill(0.0);
        }
    }
}

/// The communication surface of the barotropic solvers: halo updates, fused
/// block sweeps, deferred global reductions, and event statistics.
///
/// See the [module docs](self) for the deferred-reduction semantics and the
/// determinism contract.
pub trait Communicator {
    /// The distributed-vector type this communicator drives.
    type Vec: CommVec;

    /// Opaque handle to one fused sweep's per-block partial reductions.
    /// For [`CommWorld`] this is just the block-ordered fold
    /// ([`SweepPartials`]); a rank runtime keeps the per-block rows so a
    /// later [`Communicator::reduce_sweep`] can reproduce the exact fold.
    type Sweep;

    /// Snapshot of the communication counters *as seen by this
    /// communicator* (per-rank under a rank runtime).
    fn stats(&self) -> StatsSnapshot;

    /// Allocate a zeroed vector with the same view (layout and block
    /// ownership) as `model`.
    fn alloc_like(&self, model: &Self::Vec) -> Self::Vec;

    /// Update the halo ring of every block in `v`'s view from its
    /// neighbours' interiors (point-to-point messages under a rank
    /// runtime; shared-memory copies under [`CommWorld`]).
    fn halo_update(&self, v: &mut Self::Vec);

    /// The fused execution primitive: walk every block of the view once,
    /// handing the kernel block `gb`'s tiles of all mutable operands, and
    /// collect up to [`MAX_SWEEP_PARTIALS`](crate::MAX_SWEEP_PARTIALS)
    /// partial reductions per block. Local work only — nothing global
    /// happens (and nothing is counted) until the returned handle is passed
    /// to [`Communicator::reduce_sweep`].
    fn for_each_block_fused<const M: usize, F>(
        &self,
        muts: [&mut Self::Vec; M],
        kernel: F,
    ) -> Self::Sweep
    where
        F: Fn(usize, &mut [&mut BlockVec; M]) -> SweepPartials + Sync;

    /// A halo update immediately followed by a fused sweep that reads the
    /// freshly exchanged vector — the shape every solver iteration has
    /// (exchange `x`, then sweep a residual/stencil that reads `x.block(gb)`
    /// across block edges).
    ///
    /// Semantically identical to `halo_update(hv)` followed by
    /// `for_each_block_fused(muts, …)` with `hv` captured read-only — and
    /// that is exactly this default implementation. The seam exists so a
    /// communicator that models communication time can run the exchange
    /// *split-phase*: post the strips, charge the interior stencil points
    /// while they fly, and wait only before the halo-reading edge points.
    /// Implementations must keep the numeric sweep order canonical so
    /// results stay bit-identical to the default.
    fn halo_sweep_fused<const M: usize, F>(
        &self,
        hv: &mut Self::Vec,
        muts: [&mut Self::Vec; M],
        kernel: F,
    ) -> Self::Sweep
    where
        F: Fn(usize, &Self::Vec, &mut [&mut BlockVec; M]) -> SweepPartials + Sync,
    {
        self.halo_update(hv);
        let hv = &*hv;
        self.for_each_block_fused(muts, move |gb, tiles| kernel(gb, hv, tiles))
    }

    /// THE global reduction: combine `sweep`'s per-block partials over all
    /// blocks of the *global* layout, in global block order, and return the
    /// sums on every rank. Records one allreduce of `scalars` values (and
    /// pays its simulated cost under a rank runtime). May be called more
    /// than once on the same handle — each call is a fresh collective with
    /// identical results.
    fn reduce_sweep(&self, sweep: &Self::Sweep, scalars: u64) -> SweepPartials;

    /// Masked global dot product via a fused sweep plus one reduction.
    fn dot_fused(&self, x: &Self::Vec, y: &Self::Vec) -> f64;

    /// The `k`-wide distributed-vector type this communicator drives
    /// through batched solves.
    type MultiVec: MultiCommVec;

    /// Allocate a zeroed `groups * LANES`-wide vector with the same view
    /// (layout and block ownership) as `model`.
    fn alloc_multi(&self, model: &Self::Vec, groups: usize) -> Self::MultiVec;

    /// Multi-RHS halo update: same message count as
    /// [`Communicator::halo_update`] (each boundary strip travels once,
    /// carrying all lanes), `k×` the bytes.
    fn halo_update_multi(&self, v: &mut Self::MultiVec);

    /// Multi-RHS fused sweep: the batched image of
    /// [`Communicator::for_each_block_fused`]. Per-RHS partials occupy
    /// per-lane slots of the same [`SweepPartials`] row, so one
    /// [`Communicator::reduce_sweep`] call — **one** allreduce message —
    /// reduces all `k` residuals at once and the per-iteration allreduce
    /// count stays flat in `k`.
    fn for_each_block_multi<const M: usize, F>(
        &self,
        muts: [&mut Self::MultiVec; M],
        kernel: F,
    ) -> Self::Sweep
    where
        F: Fn(usize, &mut [&mut MultiBlockVec; M]) -> SweepPartials + Sync;
}

impl Communicator for CommWorld {
    type Vec = DistVec;
    type Sweep = SweepPartials;

    fn stats(&self) -> StatsSnapshot {
        CommWorld::stats(self)
    }

    fn alloc_like(&self, model: &DistVec) -> DistVec {
        DistVec::zeros(&model.layout)
    }

    fn halo_update(&self, v: &mut DistVec) {
        CommWorld::halo_update(self, v);
    }

    fn for_each_block_fused<const M: usize, F>(
        &self,
        muts: [&mut DistVec; M],
        kernel: F,
    ) -> SweepPartials
    where
        F: Fn(usize, &mut [&mut BlockVec; M]) -> SweepPartials + Sync,
    {
        CommWorld::for_each_block_fused(self, muts, kernel)
    }

    /// In shared memory the sweep's fold is already the global value;
    /// consuming it just records the allreduce the fold stood in for.
    fn reduce_sweep(&self, sweep: &SweepPartials, scalars: u64) -> SweepPartials {
        self.record_allreduce(scalars);
        *sweep
    }

    fn dot_fused(&self, x: &DistVec, y: &DistVec) -> f64 {
        CommWorld::dot_fused(self, x, y)
    }

    type MultiVec = MultiDistVec;

    fn alloc_multi(&self, model: &DistVec, groups: usize) -> MultiDistVec {
        MultiDistVec::zeros(&model.layout, groups)
    }

    fn halo_update_multi(&self, v: &mut MultiDistVec) {
        CommWorld::halo_update_multi(self, v);
    }

    fn for_each_block_multi<const M: usize, F>(
        &self,
        muts: [&mut MultiDistVec; M],
        kernel: F,
    ) -> SweepPartials
    where
        F: Fn(usize, &mut [&mut MultiBlockVec; M]) -> SweepPartials + Sync,
    {
        CommWorld::for_each_block_multi(self, muts, kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_grid::Grid;

    /// Exercise the whole trait surface through a generic function, driven
    /// by the shared-memory world, and pin it against the inherent methods.
    fn trait_norm2<C: Communicator>(comm: &C, v: &C::Vec) -> (f64, StatsSnapshot) {
        let before = comm.stats();
        let mut w = comm.alloc_like(v);
        let sweep = comm.for_each_block_fused([&mut w], |gb, [wb]| {
            let src = v.block(gb);
            for j in 0..wb.ny {
                wb.interior_row_mut(j).copy_from_slice(src.interior_row(j));
            }
            let mut p = [0.0; crate::MAX_SWEEP_PARTIALS];
            p[0] = crate::blockvec::masked_block_dot(src, src, &v.layout().masks[gb]);
            p
        });
        let total = comm.reduce_sweep(&sweep, 1)[0];
        (total, comm.stats().since(&before))
    }

    #[test]
    fn commworld_trait_surface_matches_inherent() {
        let g = Grid::gx1_scaled(5, 48, 40);
        let layout = DistLayout::build(&g, 12, 10);
        for world in [CommWorld::serial(), CommWorld::threaded()] {
            let mut v = DistVec::zeros(&layout);
            v.fill_with(|i, j| ((i * 3 + j * 7) as f64 * 0.11).sin());
            let direct = CommWorld::dot_fused(&world, &v, &v);
            let (via_trait, diff) = trait_norm2(&world, &v);
            assert_eq!(direct.to_bits(), via_trait.to_bits());
            assert_eq!(diff.allreduces, 1, "reduce_sweep must count once");
            assert_eq!(diff.allreduce_scalars, 1);
        }
    }

    #[test]
    fn reduce_sweep_can_be_repeated() {
        let g = Grid::idealized_basin(12, 12, 50.0, 1.0);
        let layout = DistLayout::build(&g, 6, 6);
        let world = CommWorld::serial();
        let mut v = DistVec::zeros(&layout);
        v.fill_with(|i, _| i as f64);
        let sweep = Communicator::for_each_block_fused(&world, [&mut v], |gb, [vb]| {
            let mut p = [0.0; crate::MAX_SWEEP_PARTIALS];
            p[0] = vb.interior_row(0)[0] + gb as f64;
            p
        });
        let a = world.reduce_sweep(&sweep, 1);
        let b = world.reduce_sweep(&sweep, 1);
        assert_eq!(a[0].to_bits(), b[0].to_bits());
        assert_eq!(world.stats().allreduces, 2);
    }
}

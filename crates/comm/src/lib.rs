//! Simulated message-passing runtime for the POP-like barotropic solver.
//!
//! The paper's solvers run under MPI on up to 16,875 cores. This crate stands
//! in for MPI (substitution **S1** in `DESIGN.md`): it provides the exact
//! communication *semantics* the solvers need — halo updates around each
//! decomposition block, fused global reductions, and fused block sweeps —
//! executed either serially (deterministic, for numerics) or over a
//! persistent in-crate worker pool ([`pool`]), while counting every
//! communication event so the machine model in `pop-perfmodel` can translate
//! counts into large-core-count wall time.
//!
//! The programming model is bulk-synchronous SPMD over *blocks*: a
//! [`DistVec`] owns one halo-padded tile per active decomposition block, and
//! collective operations ([`CommWorld::halo_update`],
//! [`CommWorld::dot_many`], …) act on all blocks at once. Because partial
//! reductions are always combined in block order, results are bit-for-bit
//! identical between the serial and threaded backends — a property the
//! integration tests pin down, and the same property POP relies on for
//! reproducible decompositions.
//!
//! What is *not* simulated here: wire time. Latency/bandwidth costs live in
//! `pop-perfmodel`, parameterized by the event counts recorded in
//! [`CommStats`] — and, since the `pop-ranksim` crate, in a rank-based
//! runtime implementing the same [`Communicator`] trait with real
//! point-to-point messages and simulated network time.

pub mod blockvec;
pub mod communicator;
pub mod distvec;
pub mod halo;
pub mod layout;
pub mod multivec;
pub mod pool;
pub mod transfer;
pub mod world;

pub use blockvec::{masked_block_dot, masked_block_max_abs, BlockVec};
pub use transfer::{coarse_extent, parents, prolong_add_masked, restrict_masked};
pub use communicator::{CommVec, Communicator};
pub use distvec::DistVec;
pub use layout::DistLayout;
pub use multivec::{masked_dot_multi, MultiBlockVec, MultiCommVec, MultiDistVec};
pub use world::{
    CommStats, CommWorld, ExecPolicy, StatsSnapshot, SweepPartials, MAX_SWEEP_PARTIALS,
};

//! Service mechanics: admission control, coalescing, fairness, shutdown.
//!
//! Bitwise cache/batch equivalence against standalone solves lives in the
//! workspace-level `tests/serve_cache_equivalence.rs`; this suite covers
//! the queueing behaviour, using `start_paused` to stage deterministic
//! bursts (nothing dispatches until `resume`, so admission decisions don't
//! race the scheduler).

use pop_comm::{CommWorld, DistLayout, DistVec};
use pop_core::setup::PrecondSpec;
use pop_grid::Grid;
use pop_serve::{Backend, Reject, ServiceConfig, SolveRequest, SolverService, SolverSpec, Ticket};
use pop_stencil::NinePoint;
use std::sync::Arc;
use std::time::Duration;

struct Problem {
    op: Arc<NinePoint>,
    b: DistVec,
}

fn problem(seed: u64) -> Problem {
    let grid = Grid::gx1_scaled(seed, 32, 24);
    let layout = DistLayout::build(&grid, 8, 6);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 3000.0 + seed as f64);
    let mut x_true = DistVec::zeros(&layout);
    x_true.fill_with(|i, j| ((i as f64) * 0.17).sin() + ((j as f64) * 0.11).cos());
    world.halo_update(&mut x_true);
    let mut b = DistVec::zeros(&layout);
    op.apply(&world, &x_true, &mut b);
    Problem {
        op: Arc::new(op),
        b,
    }
}

fn request(p: &Problem, tenant: u32) -> SolveRequest {
    SolveRequest::new(
        tenant,
        Arc::clone(&p.op),
        SolverSpec::ChronGear,
        PrecondSpec::Diagonal,
        p.b.clone(),
    )
    .with_tol(1e-11)
}

#[test]
fn serves_a_simple_request() {
    let p = problem(1);
    let svc = SolverService::start(ServiceConfig::default());
    let resp = svc.submit(request(&p, 0)).unwrap().wait().unwrap();
    assert!(resp.stats.converged);
    assert!(!resp.cache_hit, "first request on an operator is a miss");
    assert_eq!(resp.batch_width, 1);
    assert!(svc.ema_service_secs() > 0.0);

    // Same operator again: warm.
    let resp2 = svc.submit(request(&p, 0)).unwrap().wait().unwrap();
    assert!(resp2.cache_hit);
    // Identical request ⇒ identical solution bits, cold or warm.
    for (a, bl) in resp.x.blocks.iter().zip(resp2.x.blocks.iter()) {
        for j in 0..a.ny {
            let (ra, rb) = (a.interior_row(j), bl.interior_row(j));
            for (va, vb) in ra.iter().zip(rb) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }
    let cache = svc.shutdown();
    assert_eq!(cache.hits, 1);
    assert_eq!(cache.misses, 1);
}

#[test]
fn paused_burst_coalesces_into_one_batch() {
    let p = problem(2);
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        ..ServiceConfig::default()
    });
    let tickets: Vec<Ticket> = (0..5)
        .map(|i| svc.submit(request(&p, i)).unwrap())
        .collect();
    svc.resume();
    for t in tickets {
        let resp = t.wait().unwrap();
        assert!(resp.stats.converged);
        assert_eq!(
            resp.batch_width, 5,
            "a staged burst on one operator must ride one multi-RHS batch"
        );
    }
}

#[test]
fn mixed_operators_split_batches() {
    let p1 = problem(3);
    let p2 = problem(4);
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        ..ServiceConfig::default()
    });
    let t1 = svc.submit(request(&p1, 0)).unwrap();
    let t2 = svc.submit(request(&p2, 0)).unwrap();
    let t3 = svc.submit(request(&p1, 0)).unwrap();
    svc.resume();
    assert_eq!(t1.wait().unwrap().batch_width, 2);
    assert_eq!(t2.wait().unwrap().batch_width, 1);
    assert_eq!(t3.wait().unwrap().batch_width, 2);
}

#[test]
fn tolerance_gates_coalescing() {
    // Same operator, different tol: must not share a SolverConfig.
    let p = problem(5);
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        ..ServiceConfig::default()
    });
    let t1 = svc.submit(request(&p, 0).with_tol(1e-9)).unwrap();
    let t2 = svc.submit(request(&p, 0).with_tol(1e-11)).unwrap();
    svc.resume();
    assert_eq!(t1.wait().unwrap().batch_width, 1);
    assert_eq!(t2.wait().unwrap().batch_width, 1);
}

#[test]
fn queue_full_rejects_structurally() {
    let p = problem(6);
    let svc = SolverService::start(ServiceConfig {
        queue_capacity: 2,
        tenant_quota: 32,
        start_paused: true,
        ..ServiceConfig::default()
    });
    let _t1 = svc.submit(request(&p, 0)).unwrap();
    let _t2 = svc.submit(request(&p, 1)).unwrap();
    match svc.submit(request(&p, 2)) {
        Err(Reject::QueueFull { depth, capacity }) => {
            assert_eq!((depth, capacity), (2, 2));
        }
        other => panic!("expected QueueFull, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn tenant_quota_rejects_only_the_hog() {
    let p = problem(7);
    let svc = SolverService::start(ServiceConfig {
        queue_capacity: 16,
        tenant_quota: 2,
        start_paused: true,
        ..ServiceConfig::default()
    });
    let _a1 = svc.submit(request(&p, 9)).unwrap();
    let _a2 = svc.submit(request(&p, 9)).unwrap();
    match svc.submit(request(&p, 9)) {
        Err(Reject::TenantQuota {
            tenant,
            in_flight,
            quota,
        }) => {
            assert_eq!((tenant, in_flight, quota), (9, 2, 2));
        }
        other => panic!("expected TenantQuota, got {:?}", other.map(|_| ())),
    }
    // Another tenant is unaffected.
    assert!(svc.submit(request(&p, 10)).is_ok());
}

#[test]
fn expired_deadline_is_shed_at_dispatch() {
    let p = problem(8);
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        ..ServiceConfig::default()
    });
    let doomed = svc
        .submit(request(&p, 0).with_deadline(Duration::from_millis(1)))
        .unwrap();
    let fine = svc.submit(request(&p, 1)).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    svc.resume();
    match doomed.wait() {
        Err(Reject::DeadlineExpired { waited, deadline }) => {
            assert!(waited >= deadline);
        }
        other => panic!("expected DeadlineExpired, got {:?}", other.map(|_| ())),
    }
    assert!(fine.wait().unwrap().stats.converged);
}

#[test]
fn shutdown_drains_queue_with_rejects() {
    let p = problem(9);
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        ..ServiceConfig::default()
    });
    let t = svc.submit(request(&p, 0)).unwrap();
    let _cache = svc.shutdown();
    match t.wait() {
        Err(Reject::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn fairness_interleaves_tenants_under_quota_pressure() {
    // Tenant 0 floods; tenant 1 submits one request with a deadline. With
    // round-robin ordering tenant 1's request dispatches in the first
    // round alongside the flood, not after all of tenant 0's work.
    let p = problem(10);
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        max_batch: 4,
        ..ServiceConfig::default()
    });
    let flood: Vec<Ticket> = (0..8)
        .map(|_| svc.submit(request(&p, 0)).unwrap())
        .collect();
    let vip = svc.submit(request(&p, 1)).unwrap();
    svc.resume();
    let resp = vip.wait().unwrap();
    assert!(resp.stats.converged);
    assert_eq!(
        resp.batch_width, 4,
        "round-robin order puts the second tenant into the first batch"
    );
    for t in flood {
        assert!(t.wait().unwrap().stats.converged);
    }
}

#[test]
fn threaded_backend_matches_serial_bitwise() {
    let p = problem(11);
    let serial = SolverService::start(ServiceConfig::default());
    let threaded = SolverService::start(ServiceConfig {
        backend: Backend::Threaded,
        ..ServiceConfig::default()
    });
    let a = serial.submit(request(&p, 0)).unwrap().wait().unwrap();
    let b = threaded.submit(request(&p, 0)).unwrap().wait().unwrap();
    assert!(a.stats.converged && b.stats.converged);
    for (ba, bb) in a.x.blocks.iter().zip(b.x.blocks.iter()) {
        for j in 0..ba.ny {
            for (va, vb) in ba.interior_row(j).iter().zip(bb.interior_row(j)) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }
}

//! Service mechanics: admission control, coalescing, fairness, shutdown.
//!
//! Bitwise cache/batch equivalence against standalone solves lives in the
//! workspace-level `tests/serve_cache_equivalence.rs`; this suite covers
//! the queueing behaviour, using `start_paused` to stage deterministic
//! bursts (nothing dispatches until `resume`, so admission decisions don't
//! race the scheduler).

use pop_comm::{CommWorld, DistLayout, DistVec};
use pop_core::setup::PrecondSpec;
use pop_grid::Grid;
use pop_obs::{ObsSink, SampleValue};
use pop_serve::{
    Backend, Priority, Reject, ServiceConfig, SolveRequest, SolverService, SolverSpec, Ticket,
};
use pop_stencil::NinePoint;
use std::sync::Arc;
use std::time::Duration;

struct Problem {
    op: Arc<NinePoint>,
    b: DistVec,
}

fn problem(seed: u64) -> Problem {
    let grid = Grid::gx1_scaled(seed, 32, 24);
    let layout = DistLayout::build(&grid, 8, 6);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 3000.0 + seed as f64);
    let mut x_true = DistVec::zeros(&layout);
    x_true.fill_with(|i, j| ((i as f64) * 0.17).sin() + ((j as f64) * 0.11).cos());
    world.halo_update(&mut x_true);
    let mut b = DistVec::zeros(&layout);
    op.apply(&world, &x_true, &mut b);
    Problem {
        op: Arc::new(op),
        b,
    }
}

fn request(p: &Problem, tenant: u32) -> SolveRequest {
    SolveRequest::new(
        tenant,
        Arc::clone(&p.op),
        SolverSpec::ChronGear,
        PrecondSpec::Diagonal,
        p.b.clone(),
    )
    .with_tol(1e-11)
}

#[test]
fn serves_a_simple_request() {
    let p = problem(1);
    let svc = SolverService::start(ServiceConfig::default());
    let resp = svc.submit(request(&p, 0)).unwrap().wait().unwrap();
    assert!(resp.stats.converged);
    assert!(!resp.cache_hit, "first request on an operator is a miss");
    assert_eq!(resp.batch_width, 1);
    assert!(svc.ema_service_secs() > 0.0);

    // Same operator again: warm.
    let resp2 = svc.submit(request(&p, 0)).unwrap().wait().unwrap();
    assert!(resp2.cache_hit);
    // Identical request ⇒ identical solution bits, cold or warm.
    for (a, bl) in resp.x.blocks.iter().zip(resp2.x.blocks.iter()) {
        for j in 0..a.ny {
            let (ra, rb) = (a.interior_row(j), bl.interior_row(j));
            for (va, vb) in ra.iter().zip(rb) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }
    let cache = svc.shutdown();
    assert_eq!(cache.hits, 1);
    assert_eq!(cache.misses, 1);
}

#[test]
fn paused_burst_coalesces_into_one_batch() {
    let p = problem(2);
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        ..ServiceConfig::default()
    });
    let tickets: Vec<Ticket> = (0..5)
        .map(|i| svc.submit(request(&p, i)).unwrap())
        .collect();
    svc.resume();
    for t in tickets {
        let resp = t.wait().unwrap();
        assert!(resp.stats.converged);
        assert_eq!(
            resp.batch_width, 5,
            "a staged burst on one operator must ride one multi-RHS batch"
        );
    }
}

#[test]
fn mixed_operators_split_batches() {
    let p1 = problem(3);
    let p2 = problem(4);
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        ..ServiceConfig::default()
    });
    let t1 = svc.submit(request(&p1, 0)).unwrap();
    let t2 = svc.submit(request(&p2, 0)).unwrap();
    let t3 = svc.submit(request(&p1, 0)).unwrap();
    svc.resume();
    assert_eq!(t1.wait().unwrap().batch_width, 2);
    assert_eq!(t2.wait().unwrap().batch_width, 1);
    assert_eq!(t3.wait().unwrap().batch_width, 2);
}

#[test]
fn tolerance_gates_coalescing() {
    // Same operator, different tol: must not share a SolverConfig.
    let p = problem(5);
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        ..ServiceConfig::default()
    });
    let t1 = svc.submit(request(&p, 0).with_tol(1e-9)).unwrap();
    let t2 = svc.submit(request(&p, 0).with_tol(1e-11)).unwrap();
    svc.resume();
    assert_eq!(t1.wait().unwrap().batch_width, 1);
    assert_eq!(t2.wait().unwrap().batch_width, 1);
}

#[test]
fn queue_full_rejects_structurally() {
    let p = problem(6);
    let svc = SolverService::start(ServiceConfig {
        queue_capacity: 2,
        tenant_quota: 32,
        start_paused: true,
        ..ServiceConfig::default()
    });
    let _t1 = svc.submit(request(&p, 0)).unwrap();
    let _t2 = svc.submit(request(&p, 1)).unwrap();
    match svc.submit(request(&p, 2)) {
        Err(Reject::QueueFull { depth, capacity }) => {
            assert_eq!((depth, capacity), (2, 2));
        }
        other => panic!("expected QueueFull, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn tenant_quota_rejects_only_the_hog() {
    let p = problem(7);
    let svc = SolverService::start(ServiceConfig {
        queue_capacity: 16,
        tenant_quota: 2,
        start_paused: true,
        ..ServiceConfig::default()
    });
    let _a1 = svc.submit(request(&p, 9)).unwrap();
    let _a2 = svc.submit(request(&p, 9)).unwrap();
    match svc.submit(request(&p, 9)) {
        Err(Reject::TenantQuota {
            tenant,
            in_flight,
            quota,
        }) => {
            assert_eq!((tenant, in_flight, quota), (9, 2, 2));
        }
        other => panic!("expected TenantQuota, got {:?}", other.map(|_| ())),
    }
    // Another tenant is unaffected.
    assert!(svc.submit(request(&p, 10)).is_ok());
}

#[test]
fn expired_deadline_is_shed_at_dispatch() {
    let p = problem(8);
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        ..ServiceConfig::default()
    });
    let doomed = svc
        .submit(request(&p, 0).with_deadline(Duration::from_millis(1)))
        .unwrap();
    let fine = svc.submit(request(&p, 1)).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    svc.resume();
    match doomed.wait() {
        Err(Reject::DeadlineExpired { waited, deadline }) => {
            assert!(waited >= deadline);
        }
        other => panic!("expected DeadlineExpired, got {:?}", other.map(|_| ())),
    }
    assert!(fine.wait().unwrap().stats.converged);
}

#[test]
fn shutdown_drains_queue_with_rejects() {
    let p = problem(9);
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        ..ServiceConfig::default()
    });
    let t = svc.submit(request(&p, 0)).unwrap();
    let _cache = svc.shutdown();
    match t.wait() {
        Err(Reject::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn fairness_interleaves_tenants_under_quota_pressure() {
    // Tenant 0 floods; tenant 1 submits one request with a deadline. With
    // round-robin ordering tenant 1's request dispatches in the first
    // round alongside the flood, not after all of tenant 0's work.
    let p = problem(10);
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        max_batch: 4,
        ..ServiceConfig::default()
    });
    let flood: Vec<Ticket> = (0..8)
        .map(|_| svc.submit(request(&p, 0)).unwrap())
        .collect();
    let vip = svc.submit(request(&p, 1)).unwrap();
    svc.resume();
    let resp = vip.wait().unwrap();
    assert!(resp.stats.converged);
    assert_eq!(
        resp.batch_width, 4,
        "round-robin order puts the second tenant into the first batch"
    );
    for t in flood {
        assert!(t.wait().unwrap().stats.converged);
    }
}

#[test]
fn tenant_load_map_empties_after_all_tickets_resolve() {
    // Regression: `finish_tenant` used to saturating-sub to 0 without
    // removing the entry, leaking one map slot per tenant ever served.
    let p = problem(20);
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        ..ServiceConfig::default()
    });
    let tickets: Vec<Ticket> = (0..6)
        .map(|tenant| svc.submit(request(&p, tenant)).unwrap())
        .collect();
    assert_eq!(svc.tenant_load_len(), 6);
    svc.resume();
    for t in tickets {
        assert!(t.wait().unwrap().stats.converged);
    }
    assert_eq!(
        svc.tenant_load_len(),
        0,
        "tenant_load must not retain zero-load entries"
    );
}

#[test]
fn tenant_load_map_empties_after_shutdown_drain() {
    // The shutdown drain path shares the same remove-at-zero release as
    // the served path (it used to do `entry(..).or_insert(1) -= 1`).
    let p = problem(21);
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        ..ServiceConfig::default()
    });
    let tickets: Vec<Ticket> = (0..4)
        .map(|tenant| svc.submit(request(&p, tenant)).unwrap())
        .collect();
    assert_eq!(svc.tenant_load_len(), 4);
    let tenants_left = svc.tenant_load_len_after_shutdown();
    assert_eq!(tenants_left, 0, "drain must release every queued tenant");
    for t in tickets {
        assert!(matches!(t.wait(), Err(Reject::ShuttingDown)));
    }
}

/// Read the current `pop_serve_queue_depth` gauge from a sink.
fn queue_depth(obs: &ObsSink) -> Option<f64> {
    obs.metrics().into_iter().find_map(|s| {
        if s.name != "pop_serve_queue_depth" {
            return None;
        }
        match s.value {
            SampleValue::Gauge(v) => Some(v),
            _ => None,
        }
    })
}

#[test]
fn queue_depth_gauge_tracks_authoritative_length() {
    // Regression: the gauge was written outside the queue lock in the
    // dispatch path, so submit/dispatch interleavings could leave a
    // permanently stale nonzero depth after the queue drained.
    let p = problem(22);
    let obs = ObsSink::enabled();
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        obs: obs.clone(),
        ..ServiceConfig::default()
    });
    let tickets: Vec<Ticket> = (0..3)
        .map(|i| svc.submit(request(&p, i)).unwrap())
        .collect();
    assert_eq!(queue_depth(&obs), Some(3.0));
    svc.resume();
    for t in tickets {
        assert!(t.wait().unwrap().stats.converged);
    }
    // Every response is out, so the queue has drained; the gauge must
    // agree with the authoritative length it was set from.
    assert_eq!(queue_depth(&obs), Some(0.0));
}

#[test]
fn feasible_deadline_under_parallelism_is_admitted() {
    // Regression: admission estimated queue wait as `ema * (depth + 1)` —
    // one worker, no coalescing — over-rejecting the moment a pool
    // exists. The estimate now divides by workers × mean batch width.
    let per_solve = 0.010;
    let deadline = Duration::from_millis(30);

    // Stage identical queues (5 deep, paused) on both services; the 6th
    // submission carries the deadline: 6 × 10ms = 60ms of work.
    let mk = |workers: usize, seed: u64| {
        let p = problem(seed);
        let svc = SolverService::start(ServiceConfig {
            workers,
            start_paused: true,
            ..ServiceConfig::default()
        });
        svc.prime_service_estimate(per_solve, 1.0);
        for i in 0..5 {
            svc.submit(request(&p, i)).unwrap();
        }
        (svc, p)
    };

    // Serial service: estimated wait 60ms > 30ms deadline ⇒ shed.
    let (serial, p1) = mk(1, 23);
    match serial.submit(request(&p1, 9).with_deadline(deadline)) {
        Err(Reject::DeadlineUnmeetable { estimated_wait, .. }) => {
            assert!(estimated_wait > deadline);
        }
        other => panic!("expected DeadlineUnmeetable, got {:?}", other.map(|_| ())),
    }

    // Four workers: estimated wait 15ms < 30ms ⇒ admitted.
    let (pooled, p2) = mk(4, 24);
    assert_eq!(pooled.worker_count(), 4);
    assert!(
        pooled
            .submit(request(&p2, 9).with_deadline(deadline))
            .is_ok(),
        "a deadline feasible under pool parallelism must not be shed at admission"
    );
}

#[test]
fn interactive_lane_dispatches_ahead_of_batch() {
    // Batch work submitted FIRST, on its own operator; interactive work
    // submitted after. With one worker, lane priority (not FIFO) decides
    // dispatch order, so the interactive request waits less than the
    // batch request that got in line before it.
    let pb = problem(25);
    let pi = problem(26);
    let obs = ObsSink::enabled();
    let svc = SolverService::start(ServiceConfig {
        workers: 1,
        start_paused: true,
        obs: obs.clone(),
        ..ServiceConfig::default()
    });
    let batch = svc
        .submit(request(&pb, 0).with_priority(Priority::Batch))
        .unwrap();
    let interactive = svc.submit(request(&pi, 1)).unwrap();
    svc.resume();
    let ri = interactive.wait().unwrap();
    let rb = batch.wait().unwrap();
    assert!(ri.stats.converged && rb.stats.converged);
    assert!(
        rb.queue_wait > ri.queue_wait,
        "batch ({:?}) must wait through the interactive dispatch ({:?})",
        rb.queue_wait,
        ri.queue_wait
    );
    // SLO metrics are per-class: both lanes exported their own wait rows.
    let classes: Vec<_> = obs
        .metrics()
        .into_iter()
        .filter(|s| s.name == "pop_serve_queue_wait_seconds")
        .map(|s| s.labels.clone())
        .collect();
    assert!(classes.contains(&vec![("class", "interactive")]));
    assert!(classes.contains(&vec![("class", "batch")]));
}

#[test]
fn per_class_default_deadline_applies_at_admission() {
    // No explicit deadline on the request: the batch class default kicks
    // in, and expires while the service is paused; the interactive
    // request (class default None) is unaffected.
    let p = problem(27);
    let svc = SolverService::start(ServiceConfig {
        batch_deadline: Some(Duration::from_millis(1)),
        start_paused: true,
        ..ServiceConfig::default()
    });
    let doomed = svc
        .submit(request(&p, 0).with_priority(Priority::Batch))
        .unwrap();
    let fine = svc.submit(request(&p, 1)).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    svc.resume();
    assert!(matches!(doomed.wait(), Err(Reject::DeadlineExpired { .. })));
    assert!(fine.wait().unwrap().stats.converged);
}

#[test]
fn worker_pool_responses_match_single_worker_bitwise() {
    // The same staged burst through 1 and 4 workers: identical bits.
    let probs: Vec<Problem> = (30..33).map(problem).collect();
    let run = |workers: usize| {
        let svc = SolverService::start(ServiceConfig {
            workers,
            start_paused: true,
            ..ServiceConfig::default()
        });
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| svc.submit(request(&probs[i % 3], i as u32)).unwrap())
            .collect();
        svc.resume();
        tickets
            .into_iter()
            .map(|t| t.wait().unwrap())
            .collect::<Vec<_>>()
    };
    let one = run(1);
    let four = run(4);
    for (a, b) in one.iter().zip(&four) {
        assert!(a.stats.converged && b.stats.converged);
        for (ba, bb) in a.x.blocks.iter().zip(b.x.blocks.iter()) {
            for j in 0..ba.ny {
                for (va, vb) in ba.interior_row(j).iter().zip(bb.interior_row(j)) {
                    assert_eq!(va.to_bits(), vb.to_bits());
                }
            }
        }
    }
}

#[test]
fn threaded_backend_matches_serial_bitwise() {
    let p = problem(11);
    let serial = SolverService::start(ServiceConfig::default());
    let threaded = SolverService::start(ServiceConfig {
        backend: Backend::Threaded,
        ..ServiceConfig::default()
    });
    let a = serial.submit(request(&p, 0)).unwrap().wait().unwrap();
    let b = threaded.submit(request(&p, 0)).unwrap().wait().unwrap();
    assert!(a.stats.converged && b.stats.converged);
    for (ba, bb) in a.x.blocks.iter().zip(b.x.blocks.iter()) {
        for j in 0..ba.ny {
            for (va, vb) in ba.interior_row(j).iter().zip(bb.interior_row(j)) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }
}

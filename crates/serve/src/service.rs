//! The solve service: admission → queue → dispatch → batch → solve → stream.
//!
//! A pool of scheduler workers shares one dispatch queue. Callers submit
//! from any thread; admission control happens synchronously under the
//! queue lock (bounded depth, per-tenant quota, deadline feasibility
//! against an EWMA of recent service time scaled by the pool's effective
//! dispatch parallelism), and admitted requests come back through a
//! per-request channel ([`Ticket`]).
//!
//! **Dispatch.** Each worker pulls *one coalesced batch group* at a time:
//! under the queue lock it sheds requests whose deadlines expired while
//! queued, orders survivors per priority lane round-robin by tenant
//! (`sched::fair_order`), picks the lane (`sched::LaneState` — Interactive
//! first, batch promoted within a starvation bound), and takes the first
//! [`BatchPlanner`] group of at most `max_batch` requests sharing an
//! (operator fingerprint, layout identity, solver, preconditioner,
//! tolerance bits) key. The lock is released before the solve, so
//! independent groups solve concurrently across workers. Results are
//! bit-identical to standalone solves of the same requests regardless of
//! batching, cache state, worker count, or arrival order — the batched
//! engine pins each request to a lane, the cached setup state is
//! deterministic (and single-flighted, so concurrent misses share one
//! build), and each worker solves in its own workspace.

use crate::cache::{CacheStats, SharedOperatorCache};
use crate::request::{Priority, Reject, SolveRequest, SolveResponse, SolverSpec, Ticket};
use crate::sched::{self, LaneState, QueueItem};
use pop_comm::{CommWorld, Communicator, DistVec};
use pop_core::fingerprint::operator_fingerprint;
use pop_core::lanczos::LanczosConfig;
use pop_core::setup::OperatorState;
use pop_core::solvers::{
    batch_key, BatchCommSolver, BatchKey, BatchPlanner, BatchWorkspace, ChronGear, ClassicPcg,
    Pcsi, PipelinedCg, SolveStats, SolverConfig, MAX_BATCH,
};
use pop_obs::ObsSink;
use pop_ranksim::{solve_on_ranks, FaultPlan, RankSimConfig, RankWorld, SolverKind, ZeroCost};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Latency histogram bounds (seconds) for the serve SLO metrics. Spaced
/// ~3× apart from 100 µs to 30 s: smoke-grid solves land in the middle
/// decades, and the SLO quantile estimator interpolates within a bucket.
pub static LATENCY_BUCKETS: [f64; 12] = [
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
];

/// Batch-width histogram bounds (lanes per dispatched batch).
pub static WIDTH_BUCKETS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// Cap on auto-sized worker pools: dispatch rounds are short and the
/// solves are memory-bandwidth-hungry, so past a handful of workers the
/// marginal thread only adds queue-lock contention.
pub const MAX_WORKERS: usize = 8;

/// Where solves execute.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Shared-memory serial sweeps (deterministic, single-threaded per
    /// worker — the worker pool itself provides the parallelism).
    Serial,
    /// Shared-memory threaded sweeps (the global worker pool).
    Threaded,
    /// A fresh ranksim world per solve: `ranks` simulated MPI ranks with a
    /// seeded [`FaultPlan`]. The chaos backend — faults may stretch
    /// latency and trigger solver restarts, but results stay correct
    /// (benign plans are bitwise conformant; hostile plans degrade to
    /// structured non-converged outcomes, never panics or NaN).
    /// Requests run one at a time here: multi-RHS coalescing is the
    /// shared-memory fast path.
    RankSim { ranks: usize, faults: FaultPlan },
}

/// Service tuning knobs. `Default` is sized for tests and smoke loads.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Bounded admission queue depth; submissions beyond it get
    /// [`Reject::QueueFull`].
    pub queue_capacity: usize,
    /// Max queued + in-flight requests per tenant ([`Reject::TenantQuota`]).
    pub tenant_quota: usize,
    /// Widest multi-RHS batch to coalesce (clamped to `1..=MAX_BATCH`).
    pub max_batch: usize,
    /// Scheduler worker threads pulling batch groups from the dispatch
    /// queue. `0` (the default) auto-sizes: `POP_SERVE_WORKERS` if set,
    /// else the host's available parallelism, clamped to
    /// `1..=`[`MAX_WORKERS`].
    pub workers: usize,
    /// Default deadline applied at admission to `Interactive` requests
    /// that don't set one explicitly. `None` (default) = no deadline.
    pub interactive_deadline: Option<Duration>,
    /// Default deadline for `Batch` requests without an explicit one.
    pub batch_deadline: Option<Duration>,
    /// Operator-state LRU entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Lanczos configuration for P-CSI setup state. Service-wide so equal
    /// operators always produce equal (cacheable) bounds.
    pub lanczos: LanczosConfig,
    /// Base solver configuration; `tol` is overridden per request and the
    /// service's [`ObsSink`] is attached.
    pub base: SolverConfig,
    pub backend: Backend,
    /// Metrics sink; [`ObsSink::disabled`] costs nothing.
    pub obs: ObsSink,
    /// Start with the dispatch paused: submissions are admitted and
    /// queued but nothing dispatches until [`SolverService::resume`].
    /// Lets tests and the load generator stage a deterministic burst.
    pub start_paused: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            tenant_quota: 32,
            max_batch: MAX_BATCH,
            workers: 0,
            interactive_deadline: None,
            batch_deadline: None,
            cache_capacity: 8,
            lanczos: LanczosConfig {
                tol: 0.01,
                max_steps: 300,
                ..Default::default()
            },
            base: SolverConfig::default(),
            backend: Backend::Serial,
            obs: ObsSink::disabled(),
            start_paused: false,
        }
    }
}

impl ServiceConfig {
    /// The worker count this config resolves to (see
    /// [`ServiceConfig::workers`]).
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers.clamp(1, MAX_WORKERS);
        }
        if let Ok(v) = std::env::var("POP_SERVE_WORKERS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.clamp(1, MAX_WORKERS);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, MAX_WORKERS)
    }

    fn class_deadline(&self, priority: Priority) -> Option<Duration> {
        match priority {
            Priority::Interactive => self.interactive_deadline,
            Priority::Batch => self.batch_deadline,
        }
    }
}

struct Pending {
    req: SolveRequest,
    submitted: Instant,
    /// Effective deadline: the request's own, or its class default.
    deadline: Option<Duration>,
    tx: mpsc::Sender<Result<SolveResponse, Reject>>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    /// Queued + in-flight requests per tenant. Entries are removed when
    /// they reach zero ([`release_tenant`]) so the map stays bounded by
    /// *live* tenants, not every tenant ever seen.
    tenant_load: HashMap<u32, usize>,
    lanes: LaneState,
    paused: bool,
    shutdown: bool,
}

/// Decrement a tenant's queued+in-flight count, dropping the entry at
/// zero so a long-lived service doesn't accumulate one map slot per
/// tenant it has ever served.
fn release_tenant(tenant_load: &mut HashMap<u32, usize>, tenant: u32) {
    if let Some(load) = tenant_load.get_mut(&tenant) {
        *load = load.saturating_sub(1);
        if *load == 0 {
            tenant_load.remove(&tenant);
        }
    }
}

/// Lock-free EWMA update (α = 0.2, first sample seeds the average).
/// Workers race here, so this must be a CAS loop: a load/store pair would
/// silently drop whichever concurrent writer lost the race.
fn ewma_update(cell: &AtomicU64, sample: f64) {
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
        let old = f64::from_bits(bits);
        let new = if old == 0.0 {
            sample
        } else {
            0.8 * old + 0.2 * sample
        };
        Some(new.to_bits())
    });
}

struct Shared {
    cfg: ServiceConfig,
    /// Resolved worker-pool size (≥ 1); admission scales its queue-wait
    /// estimate by this.
    workers: usize,
    state: Mutex<QueueState>,
    cv: Condvar,
    /// Operator-state cache, shared across workers with single-flight
    /// builds.
    cache: SharedOperatorCache,
    /// EWMA of per-request service time, f64 seconds as bits. Admission
    /// uses it to judge deadline feasibility before any queueing happens.
    ema_service_secs: AtomicU64,
    /// EWMA of dispatched batch width (lanes per group), f64 as bits.
    /// Together with the worker count it gives the effective dispatch
    /// parallelism the admission estimate divides by.
    ema_batch_width: AtomicU64,
}

impl Shared {
    fn ema(&self) -> f64 {
        f64::from_bits(self.ema_service_secs.load(Ordering::Relaxed))
    }

    fn width_ema(&self) -> f64 {
        f64::from_bits(self.ema_batch_width.load(Ordering::Relaxed))
    }

    /// Requests retired per service-time unit once the pool and
    /// coalescing are accounted for: workers × recent mean batch width,
    /// floored at 1 so a cold estimator never inflates feasibility.
    fn effective_parallelism(&self) -> f64 {
        (self.workers as f64 * self.width_ema().max(1.0)).max(1.0)
    }

    /// Refresh the queue-depth gauge from the authoritative queue length.
    /// Must be called with the queue lock held — that is the whole fix:
    /// gauge writes outside the lock raced each other and could leave a
    /// permanently stale nonzero depth after the queue drained.
    fn gauge_depth(&self, st: &QueueState) {
        if let Some(reg) = self.cfg.obs.registry() {
            reg.gauge_set("pop_serve_queue_depth", &[], st.queue.len() as f64);
        }
    }

    fn count_shed(&self, reason: &'static str) {
        if let Some(reg) = self.cfg.obs.registry() {
            reg.counter_add("pop_serve_shed_total", &[("reason", reason)], 1);
            reg.counter_add("pop_serve_requests_total", &[("outcome", "shed")], 1);
        }
    }

    fn record_cache(&self, hit: bool, setup_secs: f64) {
        if let Some(reg) = self.cfg.obs.registry() {
            if hit {
                reg.counter_add("pop_serve_cache_hits_total", &[], 1);
            } else {
                reg.counter_add("pop_serve_cache_misses_total", &[], 1);
                reg.counter_add_f64("pop_serve_setup_seconds_total", &[], setup_secs);
            }
        }
    }

    fn record_served(
        &self,
        spec: SolverSpec,
        priority: Priority,
        st: &SolveStats,
        queue_wait: Duration,
        latency: Duration,
        width: usize,
    ) {
        if let Some(reg) = self.cfg.obs.registry() {
            let outcome = if st.converged {
                "served"
            } else {
                "served_unconverged"
            };
            reg.counter_add("pop_serve_requests_total", &[("outcome", outcome)], 1);
            reg.observe(
                "pop_serve_latency_seconds",
                &[("solver", spec.label()), ("class", priority.label())],
                &LATENCY_BUCKETS,
                latency.as_secs_f64(),
            );
            reg.observe(
                "pop_serve_queue_wait_seconds",
                &[("class", priority.label())],
                &LATENCY_BUCKETS,
                queue_wait.as_secs_f64(),
            );
            reg.observe("pop_serve_batch_width", &[], &WIDTH_BUCKETS, width as f64);
        }
    }
}

/// The running service. Dropping it (or calling [`SolverService::shutdown`])
/// drains the queue with [`Reject::ShuttingDown`] and joins the workers.
pub struct SolverService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl SolverService {
    pub fn start(cfg: ServiceConfig) -> SolverService {
        let paused = cfg.start_paused;
        let n_workers = cfg.resolved_workers();
        let cache = SharedOperatorCache::new(cfg.cache_capacity);
        let shared = Arc::new(Shared {
            cfg,
            workers: n_workers,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                tenant_load: HashMap::new(),
                lanes: LaneState::new(),
                paused,
                shutdown: false,
            }),
            cv: Condvar::new(),
            cache,
            ema_service_secs: AtomicU64::new(0),
            ema_batch_width: AtomicU64::new(0),
        });
        let workers = (0..n_workers)
            .map(|i| {
                let worker_shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pop-serve-worker-{i}"))
                    .spawn(move || Worker::new(worker_shared).run())
                    .expect("spawn dispatch worker thread")
            })
            .collect();
        SolverService { shared, workers }
    }

    /// Admission-controlled submit. Admission is synchronous: a returned
    /// [`Ticket`] means the request is queued (it can still be shed at
    /// dispatch if its deadline expires while waiting).
    pub fn submit(&self, req: SolveRequest) -> Result<Ticket, Reject> {
        let shared = &self.shared;
        let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.shutdown {
            return Err(self.shed_at_admission(Reject::ShuttingDown));
        }
        if st.queue.len() >= shared.cfg.queue_capacity {
            return Err(self.shed_at_admission(Reject::QueueFull {
                depth: st.queue.len(),
                capacity: shared.cfg.queue_capacity,
            }));
        }
        let load = st.tenant_load.get(&req.tenant).copied().unwrap_or(0);
        if load >= shared.cfg.tenant_quota {
            return Err(self.shed_at_admission(Reject::TenantQuota {
                tenant: req.tenant,
                in_flight: load,
                quota: shared.cfg.tenant_quota,
            }));
        }
        let deadline = req.deadline.or(shared.cfg.class_deadline(req.priority));
        if let Some(deadline) = deadline {
            let ema = shared.ema();
            if ema > 0.0 {
                // Wait estimate for the request at the back of the queue:
                // total outstanding work divided by the pool's effective
                // dispatch parallelism (workers × mean batch width). A
                // single serial scheduler would serve the queue one
                // request at a time; this pool does not.
                let estimated_wait = Duration::from_secs_f64(
                    ema * (st.queue.len() + 1) as f64 / shared.effective_parallelism(),
                );
                if deadline < estimated_wait {
                    return Err(self.shed_at_admission(Reject::DeadlineUnmeetable {
                        estimated_wait,
                        deadline,
                    }));
                }
            }
        }
        let (tx, rx) = mpsc::channel();
        *st.tenant_load.entry(req.tenant).or_insert(0) += 1;
        st.queue.push_back(Pending {
            req,
            submitted: Instant::now(),
            deadline,
            tx,
        });
        shared.gauge_depth(&st);
        drop(st);
        shared.cv.notify_all();
        Ok(Ticket { rx })
    }

    /// Release a paused dispatch ([`ServiceConfig::start_paused`]).
    pub fn resume(&self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.paused = false;
        drop(st);
        self.shared.cv.notify_all();
    }

    pub fn obs(&self) -> &ObsSink {
        &self.shared.cfg.obs
    }

    /// Resolved size of the dispatch worker pool.
    pub fn worker_count(&self) -> usize {
        self.shared.workers
    }

    /// Current EWMA of per-request service time (seconds); 0 before the
    /// first completion.
    pub fn ema_service_secs(&self) -> f64 {
        self.shared.ema()
    }

    /// Number of tenants with queued or in-flight work right now.
    /// Accounting introspection: drops back to 0 when the service idles
    /// (entries are removed at zero, not leaked).
    pub fn tenant_load_len(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .tenant_load
            .len()
    }

    /// Warm-start the admission estimator with known history (e.g. when
    /// restarting a service over the same operator population): seeds the
    /// per-request service-time EWMA and the mean-batch-width EWMA as if
    /// one sample of each had been observed.
    pub fn prime_service_estimate(&self, per_solve_secs: f64, mean_batch_width: f64) {
        self.shared
            .ema_service_secs
            .store(per_solve_secs.max(0.0).to_bits(), Ordering::Relaxed);
        self.shared
            .ema_batch_width
            .store(mean_batch_width.max(1.0).to_bits(), Ordering::Relaxed);
    }

    /// Drain and stop. Queued-but-undispatched requests receive
    /// [`Reject::ShuttingDown`]. Returns cache statistics for reporting.
    pub fn shutdown(mut self) -> CacheStats {
        self.shutdown_inner();
        self.shared.cache.stats()
    }

    /// Drain and stop, returning how many tenant-load entries survived
    /// the drain. Zero unless accounting leaks — the shutdown path
    /// releases queued tenants through the same remove-at-zero helper as
    /// the served path.
    pub fn tenant_load_len_after_shutdown(mut self) -> usize {
        self.shutdown_inner();
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .tenant_load
            .len()
    }

    fn shutdown_inner(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
            st.paused = false;
        }
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    fn shed_at_admission(&self, r: Reject) -> Reject {
        self.shared.count_shed(r.reason());
        r
    }
}

impl Drop for SolverService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Coalescing identity: requests may share a batch iff *all* of this
/// matches — operator bits + layout identity ([`BatchKey`]), solver,
/// preconditioner spec, and tolerance bits (lanes share one
/// `SolverConfig`). Priority is not part of the key because each dispatch
/// group is drawn from a single lane.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ServeKey {
    batch: BatchKey,
    solver: SolverSpec,
    precond: pop_core::setup::PrecondSpec,
    tol_bits: u64,
}

fn serve_key(req: &SolveRequest) -> ServeKey {
    ServeKey {
        batch: batch_key(&req.op),
        solver: req.solver,
        precond: req.precond,
        tol_bits: req.tol.to_bits(),
    }
}

/// One dispatch worker: pulls a batch group under the queue lock, solves
/// it in its own context, responds, repeats. The dispatcher logic
/// (shedding, lane pick, fair order, planning) lives in
/// [`Worker::take_next_group`] and runs entirely under the lock; the
/// solve never does.
struct Worker {
    shared: Arc<Shared>,
    planner: BatchPlanner,
    world: Option<CommWorld>,
    bws: BatchWorkspace<CommWorld>,
    /// Serial world for cache builds when the backend is ranksim (bounds
    /// and preconditioners are backend-independent by construction).
    setup_world: CommWorld,
}

impl Worker {
    fn new(shared: Arc<Shared>) -> Worker {
        let world = match shared.cfg.backend {
            Backend::Serial => Some(CommWorld::serial()),
            Backend::Threaded => Some(CommWorld::threaded()),
            Backend::RankSim { .. } => None,
        };
        let planner = BatchPlanner::new(shared.cfg.max_batch.clamp(1, MAX_BATCH));
        Worker {
            shared,
            planner,
            world,
            bws: BatchWorkspace::new(),
            setup_world: CommWorld::serial(),
        }
    }

    fn run(mut self) {
        loop {
            let group = {
                let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if st.shutdown {
                        self.drain(&mut st);
                        return;
                    }
                    if !st.paused {
                        if let Some(group) = self.take_next_group(&mut st) {
                            break group;
                        }
                    }
                    st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            self.run_batch(group);
        }
    }

    /// Shutdown drain: everything still queued is rejected. Idempotent —
    /// whichever worker observes the flag first empties the queue, the
    /// rest find it empty.
    fn drain(&self, st: &mut QueueState) {
        let rest: Vec<Pending> = st.queue.drain(..).collect();
        for p in &rest {
            release_tenant(&mut st.tenant_load, p.req.tenant);
        }
        self.shared.gauge_depth(st);
        for p in rest {
            let _ = p.tx.send(Err(Reject::ShuttingDown));
            self.shared.count_shed(Reject::ShuttingDown.reason());
        }
    }

    /// The dispatcher: shed expired deadlines, pick a lane, order it
    /// fairly, and take the first planned batch group off the queue.
    /// Runs under the queue lock (`st` is the locked state); returns
    /// `None` when the queue has nothing dispatchable.
    fn take_next_group(&self, st: &mut QueueState) -> Option<Vec<Pending>> {
        // Shed in place so tenant accounting and the depth gauge update
        // under the same lock as the queue they describe.
        let now = Instant::now();
        let mut shed: Vec<Pending> = Vec::new();
        let mut i = 0;
        while i < st.queue.len() {
            let expired = match st.queue[i].deadline {
                Some(d) => now.duration_since(st.queue[i].submitted) > d,
                None => false,
            };
            if expired {
                let p = st.queue.remove(i).expect("index in bounds");
                release_tenant(&mut st.tenant_load, p.req.tenant);
                shed.push(p);
            } else {
                i += 1;
            }
        }

        let items: Vec<QueueItem> = st
            .queue
            .iter()
            .map(|p| QueueItem {
                tenant: p.req.tenant,
                priority: p.req.priority,
            })
            .collect();
        let interactive = sched::fair_order(&items, Priority::Interactive);
        let batch = sched::fair_order(&items, Priority::Batch);
        let lane = st.lanes.pick(!interactive.is_empty(), !batch.is_empty());
        let group = lane.map(|lane| {
            let order = match lane {
                Priority::Interactive => interactive,
                Priority::Batch => batch,
            };
            let keys: Vec<ServeKey> = order
                .iter()
                .map(|&qi| serve_key(&st.queue[qi].req))
                .collect();
            let (_key, members) = self
                .planner
                .plan_by(&keys)
                .into_iter()
                .next()
                .expect("non-empty lane plans at least one group");
            let queue_idx: Vec<usize> = members.into_iter().map(|m| order[m]).collect();
            // Remove highest-index-first so earlier indices stay valid,
            // then restore the planned (fair) order.
            let mut desc = queue_idx.clone();
            desc.sort_unstable_by(|a, b| b.cmp(a));
            let mut taken: HashMap<usize, Pending> = desc
                .into_iter()
                .map(|qi| (qi, st.queue.remove(qi).expect("index in bounds")))
                .collect();
            queue_idx
                .into_iter()
                .map(|qi| taken.remove(&qi).expect("taken once"))
                .collect::<Vec<Pending>>()
        });
        self.shared.gauge_depth(st);
        for p in shed {
            self.shared.count_shed("deadline_expired");
            let waited = now.duration_since(p.submitted);
            let deadline = p.deadline.expect("only deadlined requests expire");
            let _ = p.tx.send(Err(Reject::DeadlineExpired { waited, deadline }));
        }
        group
    }

    fn run_batch(&mut self, group: Vec<Pending>) {
        let k = group.len();
        let spec = group[0].req.solver;
        let precond = group[0].req.precond;
        let priority = group[0].req.priority;
        let op = Arc::clone(&group[0].req.op);
        let fingerprint = operator_fingerprint(&op);

        let setup_start = Instant::now();
        let (state, cache_hit) = self.shared.cache.get_or_build(
            fingerprint,
            &op,
            precond,
            spec.needs_bounds(),
            &self.shared.cfg.lanczos,
            &self.setup_world,
        );
        let setup_secs = setup_start.elapsed().as_secs_f64();
        self.shared.record_cache(cache_hit, setup_secs);

        let mut cfg = self.shared.cfg.base.clone();
        cfg.tol = group[0].req.tol;
        cfg.obs = self.shared.cfg.obs.clone();

        let solve_start = Instant::now();
        let (xs, stats) = match &self.shared.cfg.backend {
            Backend::RankSim { ranks, faults } => {
                solve_group_ranksim(&group, &op, &state, spec, &cfg, *ranks, *faults)
            }
            _ => {
                let world = self.world.as_ref().expect("shared-memory backend");
                let mut xs: Vec<DistVec> = group
                    .iter()
                    .map(|p| {
                        p.req
                            .x0
                            .clone()
                            .unwrap_or_else(|| DistVec::zeros(&op.layout))
                    })
                    .collect();
                let bs: Vec<&DistVec> = group.iter().map(|p| &p.req.b).collect();
                let stats = {
                    let mut xrefs: Vec<&mut DistVec> = xs.iter_mut().collect();
                    solve_batch_with(
                        spec,
                        &state,
                        &op,
                        world,
                        &bs,
                        &mut xrefs,
                        &cfg,
                        &mut self.bws,
                    )
                };
                (xs, stats)
            }
        };
        let solve_secs = solve_start.elapsed().as_secs_f64();
        ewma_update(&self.shared.ema_service_secs, solve_secs / k as f64);
        ewma_update(&self.shared.ema_batch_width, k as f64);

        let done = Instant::now();
        for ((p, x), st) in group.into_iter().zip(xs).zip(stats) {
            let queue_wait = solve_start.saturating_duration_since(p.submitted);
            let latency = done.saturating_duration_since(p.submitted);
            self.finish_tenant(p.req.tenant);
            self.shared
                .record_served(spec, priority, &st, queue_wait, latency, k);
            let _ = p.tx.send(Ok(SolveResponse {
                x,
                stats: st,
                cache_hit,
                batch_width: k,
                queue_wait,
                latency,
            }));
        }
    }

    fn finish_tenant(&self, tenant: u32) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        release_tenant(&mut st.tenant_load, tenant);
    }
}

/// Dispatch one batch to the chosen solver through the batched engine.
/// Width-1 batches take the same code path — the engine's lane-pinning
/// contract is what keeps every width bit-identical to standalone solves.
#[allow(clippy::too_many_arguments)]
fn solve_batch_with<C: Communicator>(
    spec: SolverSpec,
    state: &OperatorState,
    op: &pop_stencil::NinePoint,
    comm: &C,
    bs: &[&C::Vec],
    xs: &mut [&mut C::Vec],
    cfg: &SolverConfig,
    ws: &mut BatchWorkspace<C>,
) -> Vec<SolveStats> {
    let pre = state.precond.as_ref();
    match spec {
        SolverSpec::ClassicPcg => ClassicPcg.solve_batch_comm(op, pre, comm, bs, xs, cfg, ws),
        SolverSpec::ChronGear => ChronGear.solve_batch_comm(op, pre, comm, bs, xs, cfg, ws),
        SolverSpec::PipelinedCg => PipelinedCg.solve_batch_comm(op, pre, comm, bs, xs, cfg, ws),
        SolverSpec::Pcsi => {
            let bounds = state
                .bounds
                .expect("P-CSI state built without bounds — cache key bug");
            Pcsi::new(bounds).solve_batch_comm(op, pre, comm, bs, xs, cfg, ws)
        }
    }
}

/// The ranksim (chaos) path: one simulated-MPI world per request, faults
/// injected per the plan. No multi-RHS coalescing here — the rank runtime
/// solves one system at a time; the group still shares cached setup state.
fn solve_group_ranksim(
    group: &[Pending],
    op: &pop_stencil::NinePoint,
    state: &OperatorState,
    spec: SolverSpec,
    cfg: &SolverConfig,
    ranks: usize,
    faults: FaultPlan,
) -> (Vec<DistVec>, Vec<SolveStats>) {
    let kind = match spec {
        SolverSpec::ClassicPcg => SolverKind::ClassicPcg,
        SolverSpec::ChronGear => SolverKind::ChronGear,
        SolverSpec::PipelinedCg => SolverKind::PipelinedCg,
        SolverSpec::Pcsi => SolverKind::Pcsi(
            state
                .bounds
                .expect("P-CSI state built without bounds — cache key bug"),
        ),
    };
    let mut xs = Vec::with_capacity(group.len());
    let mut stats = Vec::with_capacity(group.len());
    for p in group {
        let world = RankWorld::new(
            &op.layout,
            ranks,
            Arc::new(ZeroCost),
            RankSimConfig::default().with_faults(faults),
        );
        let x0 = p
            .req
            .x0
            .clone()
            .unwrap_or_else(|| DistVec::zeros(&op.layout));
        let out = solve_on_ranks(&world, op, state.precond.as_ref(), kind, &p.req.b, &x0, cfg);
        stats.push(out.stats().clone());
        xs.push(out.x);
    }
    (xs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_tenant_removes_entries_at_zero() {
        let mut load = HashMap::new();
        load.insert(7u32, 2usize);
        load.insert(9u32, 1usize);
        release_tenant(&mut load, 7);
        assert_eq!(load.get(&7), Some(&1));
        release_tenant(&mut load, 7);
        assert!(!load.contains_key(&7), "entry must be removed at zero");
        release_tenant(&mut load, 9);
        assert!(load.is_empty());
        // Releasing an absent tenant is a no-op, never an underflow or a
        // resurrected entry.
        release_tenant(&mut load, 42);
        assert!(load.is_empty());
    }

    #[test]
    fn ewma_first_sample_seeds_then_blends_exactly() {
        let cell = AtomicU64::new(0);
        ewma_update(&cell, 2.0);
        assert_eq!(f64::from_bits(cell.load(Ordering::Relaxed)), 2.0);
        ewma_update(&cell, 4.0);
        let expect = 0.8 * 2.0 + 0.2 * 4.0;
        assert_eq!(f64::from_bits(cell.load(Ordering::Relaxed)), expect);
    }

    #[test]
    fn ewma_cas_lands_in_the_convex_hull_under_contention() {
        // Many threads hammer samples drawn from [1.0, 2.0]. Every CAS
        // application of x -> 0.8x + 0.2s with s in [lo, hi] maps the
        // hull into itself once seeded, so the final value must be inside
        // it — and the fetch_update loop guarantees every sample is
        // applied to a current value, not a stale one.
        let cell = AtomicU64::new(0);
        let threads = 8;
        let per_thread = 500;
        std::thread::scope(|s| {
            for t in 0..threads {
                let cell = &cell;
                s.spawn(move || {
                    for i in 0..per_thread {
                        // Deterministic samples in [1, 2].
                        let u = ((t * per_thread + i) as f64 * 0.377).fract();
                        ewma_update(cell, 1.0 + u);
                    }
                });
            }
        });
        let v = f64::from_bits(cell.load(Ordering::Relaxed));
        assert!(
            (1.0..=2.0).contains(&v),
            "EWMA {v} escaped the sample hull [1, 2]"
        );
    }
}

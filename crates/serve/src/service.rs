//! The solve service: admission → queue → coalesce → batch → solve → stream.
//!
//! One scheduler thread owns the operator cache and the solve backend.
//! Callers submit from any thread; admission control happens synchronously
//! under the queue lock (bounded depth, per-tenant quota, deadline
//! feasibility against an EWMA of recent service time), and admitted
//! requests come back through a per-request channel ([`Ticket`]).
//!
//! Each scheduling round drains the whole queue, sheds requests whose
//! deadlines expired while queued, orders the survivors round-robin by
//! tenant (so one chatty tenant cannot monopolize a round), and coalesces
//! them by (operator fingerprint, layout identity, solver, preconditioner,
//! tolerance bits) through [`BatchPlanner`] into multi-RHS batches of at
//! most `max_batch` lanes. Results are bit-identical to standalone solves
//! of the same requests regardless of batching, cache state, or arrival
//! order — the batched engine pins each request to a lane and the cached
//! setup state is deterministic.

use crate::cache::{CacheStats, OperatorCache};
use crate::request::{Reject, SolveRequest, SolveResponse, SolverSpec, Ticket};
use pop_comm::{CommWorld, Communicator, DistVec};
use pop_core::fingerprint::operator_fingerprint;
use pop_core::lanczos::LanczosConfig;
use pop_core::setup::OperatorState;
use pop_core::solvers::{
    batch_key, BatchCommSolver, BatchKey, BatchPlanner, BatchWorkspace, ChronGear, ClassicPcg,
    Pcsi, PipelinedCg, SolveStats, SolverConfig, MAX_BATCH,
};
use pop_obs::ObsSink;
use pop_ranksim::{solve_on_ranks, FaultPlan, RankSimConfig, RankWorld, SolverKind, ZeroCost};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Latency histogram bounds (seconds) for the serve SLO metrics. Spaced
/// ~3× apart from 100 µs to 30 s: smoke-grid solves land in the middle
/// decades, and the SLO quantile estimator interpolates within a bucket.
pub static LATENCY_BUCKETS: [f64; 12] = [
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
];

/// Batch-width histogram bounds (lanes per dispatched batch).
pub static WIDTH_BUCKETS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// Where solves execute.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Shared-memory serial sweeps (deterministic, single-threaded).
    Serial,
    /// Shared-memory threaded sweeps (the global worker pool).
    Threaded,
    /// A fresh ranksim world per solve: `ranks` simulated MPI ranks with a
    /// seeded [`FaultPlan`]. The chaos backend — faults may stretch
    /// latency and trigger solver restarts, but results stay correct
    /// (benign plans are bitwise conformant; hostile plans degrade to
    /// structured non-converged outcomes, never panics or NaN).
    /// Requests run one at a time here: multi-RHS coalescing is the
    /// shared-memory fast path.
    RankSim { ranks: usize, faults: FaultPlan },
}

/// Service tuning knobs. `Default` is sized for tests and smoke loads.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Bounded admission queue depth; submissions beyond it get
    /// [`Reject::QueueFull`].
    pub queue_capacity: usize,
    /// Max queued + in-flight requests per tenant ([`Reject::TenantQuota`]).
    pub tenant_quota: usize,
    /// Widest multi-RHS batch to coalesce (clamped to `1..=MAX_BATCH`).
    pub max_batch: usize,
    /// Operator-state LRU entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Lanczos configuration for P-CSI setup state. Service-wide so equal
    /// operators always produce equal (cacheable) bounds.
    pub lanczos: LanczosConfig,
    /// Base solver configuration; `tol` is overridden per request and the
    /// service's [`ObsSink`] is attached.
    pub base: SolverConfig,
    pub backend: Backend,
    /// Metrics sink; [`ObsSink::disabled`] costs nothing.
    pub obs: ObsSink,
    /// Start with the scheduler paused: submissions are admitted and
    /// queued but nothing dispatches until [`SolverService::resume`].
    /// Lets tests and the load generator stage a deterministic burst.
    pub start_paused: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            tenant_quota: 32,
            max_batch: MAX_BATCH,
            cache_capacity: 8,
            lanczos: LanczosConfig {
                tol: 0.01,
                max_steps: 300,
                ..Default::default()
            },
            base: SolverConfig::default(),
            backend: Backend::Serial,
            obs: ObsSink::disabled(),
            start_paused: false,
        }
    }
}

struct Pending {
    req: SolveRequest,
    submitted: Instant,
    tx: mpsc::Sender<Result<SolveResponse, Reject>>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    /// Queued + in-flight requests per tenant.
    tenant_load: HashMap<u32, usize>,
    paused: bool,
    shutdown: bool,
}

struct Shared {
    cfg: ServiceConfig,
    state: Mutex<QueueState>,
    cv: Condvar,
    /// EWMA of per-request service time, f64 seconds as bits. Admission
    /// uses it to judge deadline feasibility before any queueing happens.
    ema_service_secs: AtomicU64,
}

impl Shared {
    fn ema(&self) -> f64 {
        f64::from_bits(self.ema_service_secs.load(Ordering::Relaxed))
    }

    fn update_ema(&self, per_solve_secs: f64) {
        // Single writer (the scheduler thread), so a load/store pair is fine.
        let old = self.ema();
        let new = if old == 0.0 {
            per_solve_secs
        } else {
            0.8 * old + 0.2 * per_solve_secs
        };
        self.ema_service_secs
            .store(new.to_bits(), Ordering::Relaxed);
    }
}

/// The running service. Dropping it (or calling [`SolverService::shutdown`])
/// drains the queue with [`Reject::ShuttingDown`] and joins the scheduler.
pub struct SolverService {
    shared: Arc<Shared>,
    scheduler: Option<JoinHandle<CacheStats>>,
}

impl SolverService {
    pub fn start(cfg: ServiceConfig) -> SolverService {
        let paused = cfg.start_paused;
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                tenant_load: HashMap::new(),
                paused,
                shutdown: false,
            }),
            cv: Condvar::new(),
            ema_service_secs: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let scheduler = std::thread::Builder::new()
            .name("pop-serve-scheduler".into())
            .spawn(move || Scheduler::new(worker_shared).run())
            .expect("spawn scheduler thread");
        SolverService {
            shared,
            scheduler: Some(scheduler),
        }
    }

    /// Admission-controlled submit. Admission is synchronous: a returned
    /// [`Ticket`] means the request is queued (it can still be shed at
    /// dispatch if its deadline expires while waiting).
    pub fn submit(&self, req: SolveRequest) -> Result<Ticket, Reject> {
        let shared = &self.shared;
        let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.shutdown {
            return Err(self.shed_at_admission(Reject::ShuttingDown));
        }
        if st.queue.len() >= shared.cfg.queue_capacity {
            return Err(self.shed_at_admission(Reject::QueueFull {
                depth: st.queue.len(),
                capacity: shared.cfg.queue_capacity,
            }));
        }
        let load = st.tenant_load.get(&req.tenant).copied().unwrap_or(0);
        if load >= shared.cfg.tenant_quota {
            return Err(self.shed_at_admission(Reject::TenantQuota {
                tenant: req.tenant,
                in_flight: load,
                quota: shared.cfg.tenant_quota,
            }));
        }
        if let Some(deadline) = req.deadline {
            let ema = shared.ema();
            if ema > 0.0 {
                let estimated_wait = Duration::from_secs_f64(ema * (st.queue.len() + 1) as f64);
                if deadline < estimated_wait {
                    return Err(self.shed_at_admission(Reject::DeadlineUnmeetable {
                        estimated_wait,
                        deadline,
                    }));
                }
            }
        }
        let (tx, rx) = mpsc::channel();
        *st.tenant_load.entry(req.tenant).or_insert(0) += 1;
        st.queue.push_back(Pending {
            req,
            submitted: Instant::now(),
            tx,
        });
        self.gauge_depth(st.queue.len());
        drop(st);
        shared.cv.notify_all();
        Ok(Ticket { rx })
    }

    /// Release a paused scheduler ([`ServiceConfig::start_paused`]).
    pub fn resume(&self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.paused = false;
        drop(st);
        self.shared.cv.notify_all();
    }

    pub fn obs(&self) -> &ObsSink {
        &self.shared.cfg.obs
    }

    /// Current EWMA of per-request service time (seconds); 0 before the
    /// first completion.
    pub fn ema_service_secs(&self) -> f64 {
        self.shared.ema()
    }

    /// Drain and stop. Queued-but-undispatched requests receive
    /// [`Reject::ShuttingDown`]. Returns cache statistics for reporting.
    pub fn shutdown(mut self) -> CacheStats {
        self.shutdown_inner().unwrap_or_default()
    }

    fn shutdown_inner(&mut self) -> Option<CacheStats> {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
            st.paused = false;
        }
        self.shared.cv.notify_all();
        self.scheduler.take().map(|h| h.join().unwrap_or_default())
    }

    fn shed_at_admission(&self, r: Reject) -> Reject {
        if let Some(reg) = self.shared.cfg.obs.registry() {
            reg.counter_add("pop_serve_shed_total", &[("reason", r.reason())], 1);
            reg.counter_add("pop_serve_requests_total", &[("outcome", "shed")], 1);
        }
        r
    }

    fn gauge_depth(&self, depth: usize) {
        if let Some(reg) = self.shared.cfg.obs.registry() {
            reg.gauge_set("pop_serve_queue_depth", &[], depth as f64);
        }
    }
}

impl Drop for SolverService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Coalescing identity: requests may share a batch iff *all* of this
/// matches — operator bits + layout identity ([`BatchKey`]), solver,
/// preconditioner spec, and tolerance bits (lanes share one
/// `SolverConfig`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct ServeKey {
    batch: BatchKey,
    solver: SolverSpec,
    precond: pop_core::setup::PrecondSpec,
    tol_bits: u64,
}

struct Scheduler {
    shared: Arc<Shared>,
    cache: OperatorCache,
    planner: BatchPlanner,
    world: Option<CommWorld>,
    bws: BatchWorkspace<CommWorld>,
    /// Serial world for cache builds when the backend is ranksim (bounds
    /// and preconditioners are backend-independent by construction).
    setup_world: CommWorld,
}

impl Scheduler {
    fn new(shared: Arc<Shared>) -> Scheduler {
        let world = match shared.cfg.backend {
            Backend::Serial => Some(CommWorld::serial()),
            Backend::Threaded => Some(CommWorld::threaded()),
            Backend::RankSim { .. } => None,
        };
        let cache = OperatorCache::new(shared.cfg.cache_capacity);
        let planner = BatchPlanner::new(shared.cfg.max_batch.clamp(1, MAX_BATCH));
        Scheduler {
            shared,
            cache,
            planner,
            world,
            bws: BatchWorkspace::new(),
            setup_world: CommWorld::serial(),
        }
    }

    fn run(mut self) -> CacheStats {
        loop {
            let round = {
                let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if st.shutdown {
                        // Drain: everything still queued is rejected.
                        let rest: Vec<Pending> = st.queue.drain(..).collect();
                        for p in &rest {
                            *st.tenant_load.entry(p.req.tenant).or_insert(1) -= 1;
                        }
                        drop(st);
                        for p in rest {
                            let _ = p.tx.send(Err(Reject::ShuttingDown));
                            self.count_shed(Reject::ShuttingDown.reason());
                        }
                        return self.cache.stats();
                    }
                    if !st.queue.is_empty() && !st.paused {
                        break;
                    }
                    st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                let round: Vec<Pending> = st.queue.drain(..).collect();
                round
            };
            if let Some(reg) = self.shared.cfg.obs.registry() {
                reg.gauge_set("pop_serve_queue_depth", &[], 0.0);
            }
            self.dispatch_round(round);
        }
    }

    /// Shed expired deadlines, order fairly, coalesce, solve, respond.
    fn dispatch_round(&mut self, round: Vec<Pending>) {
        let now = Instant::now();
        let mut live = Vec::with_capacity(round.len());
        for p in round {
            match p.req.deadline {
                Some(d) if now.duration_since(p.submitted) > d => {
                    let waited = now.duration_since(p.submitted);
                    self.finish_tenant(p.req.tenant);
                    self.count_shed("deadline_expired");
                    let _ = p.tx.send(Err(Reject::DeadlineExpired {
                        waited,
                        deadline: d,
                    }));
                }
                _ => live.push(p),
            }
        }
        let ordered = fair_order(live);
        let keys: Vec<ServeKey> = ordered
            .iter()
            .map(|p| ServeKey {
                batch: batch_key(&p.req.op),
                solver: p.req.solver,
                precond: p.req.precond,
                tol_bits: p.req.tol.to_bits(),
            })
            .collect();
        let plan = self.planner.plan_by(&keys);
        // Move requests out of `ordered` into their planned groups.
        let mut slots: Vec<Option<Pending>> = ordered.into_iter().map(Some).collect();
        for (_key, indices) in plan {
            let group: Vec<Pending> = indices
                .iter()
                .map(|&i| slots[i].take().expect("planner indices are unique"))
                .collect();
            self.run_batch(group);
        }
    }

    fn run_batch(&mut self, group: Vec<Pending>) {
        let k = group.len();
        let spec = group[0].req.solver;
        let precond = group[0].req.precond;
        let op = Arc::clone(&group[0].req.op);
        let fingerprint = operator_fingerprint(&op);

        let setup_start = Instant::now();
        let (state, cache_hit) = self.cache.get_or_build(
            fingerprint,
            &op,
            precond,
            spec.needs_bounds(),
            &self.shared.cfg.lanczos,
            &self.setup_world,
        );
        let setup_secs = setup_start.elapsed().as_secs_f64();
        self.record_cache(cache_hit, setup_secs);

        let mut cfg = self.shared.cfg.base.clone();
        cfg.tol = group[0].req.tol;
        cfg.obs = self.shared.cfg.obs.clone();

        let solve_start = Instant::now();
        let (xs, stats) = match &self.shared.cfg.backend {
            Backend::RankSim { ranks, faults } => {
                solve_group_ranksim(&group, &op, &state, spec, &cfg, *ranks, *faults)
            }
            _ => {
                let world = self.world.as_ref().expect("shared-memory backend");
                let mut xs: Vec<DistVec> = group
                    .iter()
                    .map(|p| {
                        p.req
                            .x0
                            .clone()
                            .unwrap_or_else(|| DistVec::zeros(&op.layout))
                    })
                    .collect();
                let bs: Vec<&DistVec> = group.iter().map(|p| &p.req.b).collect();
                let stats = {
                    let mut xrefs: Vec<&mut DistVec> = xs.iter_mut().collect();
                    solve_batch_with(
                        spec,
                        &state,
                        &op,
                        world,
                        &bs,
                        &mut xrefs,
                        &cfg,
                        &mut self.bws,
                    )
                };
                (xs, stats)
            }
        };
        let solve_secs = solve_start.elapsed().as_secs_f64();
        self.shared.update_ema(solve_secs / k as f64);

        let done = Instant::now();
        for ((p, x), st) in group.into_iter().zip(xs).zip(stats) {
            let queue_wait = solve_start.saturating_duration_since(p.submitted);
            let latency = done.saturating_duration_since(p.submitted);
            self.finish_tenant(p.req.tenant);
            self.record_served(spec, &st, queue_wait, latency, k);
            let _ = p.tx.send(Ok(SolveResponse {
                x,
                stats: st,
                cache_hit,
                batch_width: k,
                queue_wait,
                latency,
            }));
        }
    }

    fn finish_tenant(&self, tenant: u32) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(load) = st.tenant_load.get_mut(&tenant) {
            *load = load.saturating_sub(1);
        }
    }

    fn count_shed(&self, reason: &'static str) {
        if let Some(reg) = self.shared.cfg.obs.registry() {
            reg.counter_add("pop_serve_shed_total", &[("reason", reason)], 1);
            reg.counter_add("pop_serve_requests_total", &[("outcome", "shed")], 1);
        }
    }

    fn record_cache(&self, hit: bool, setup_secs: f64) {
        if let Some(reg) = self.shared.cfg.obs.registry() {
            if hit {
                reg.counter_add("pop_serve_cache_hits_total", &[], 1);
            } else {
                reg.counter_add("pop_serve_cache_misses_total", &[], 1);
                reg.counter_add_f64("pop_serve_setup_seconds_total", &[], setup_secs);
            }
        }
    }

    fn record_served(
        &self,
        spec: SolverSpec,
        st: &SolveStats,
        queue_wait: Duration,
        latency: Duration,
        width: usize,
    ) {
        if let Some(reg) = self.shared.cfg.obs.registry() {
            let outcome = if st.converged {
                "served"
            } else {
                "served_unconverged"
            };
            reg.counter_add("pop_serve_requests_total", &[("outcome", outcome)], 1);
            reg.observe(
                "pop_serve_latency_seconds",
                &[("solver", spec.label())],
                &LATENCY_BUCKETS,
                latency.as_secs_f64(),
            );
            reg.observe(
                "pop_serve_queue_wait_seconds",
                &[],
                &LATENCY_BUCKETS,
                queue_wait.as_secs_f64(),
            );
            reg.observe("pop_serve_batch_width", &[], &WIDTH_BUCKETS, width as f64);
        }
    }
}

/// Round-robin interleave by tenant, preserving each tenant's own
/// submission order and first-appearance tenant order. Coalescing happens
/// *after* this, so a tenant flooding one operator still shares batches,
/// but dispatch order (and therefore shedding pressure) rotates fairly.
fn fair_order(live: Vec<Pending>) -> Vec<Pending> {
    let mut lanes: Vec<(u32, VecDeque<Pending>)> = Vec::new();
    for p in live {
        match lanes.iter_mut().find(|(t, _)| *t == p.req.tenant) {
            Some((_, q)) => q.push_back(p),
            None => {
                let mut q = VecDeque::new();
                let tenant = p.req.tenant;
                q.push_back(p);
                lanes.push((tenant, q));
            }
        }
    }
    let mut out = Vec::new();
    while lanes.iter().any(|(_, q)| !q.is_empty()) {
        for (_, q) in lanes.iter_mut() {
            if let Some(p) = q.pop_front() {
                out.push(p);
            }
        }
    }
    out
}

/// Dispatch one batch to the chosen solver through the batched engine.
/// Width-1 batches take the same code path — the engine's lane-pinning
/// contract is what keeps every width bit-identical to standalone solves.
#[allow(clippy::too_many_arguments)]
fn solve_batch_with<C: Communicator>(
    spec: SolverSpec,
    state: &OperatorState,
    op: &pop_stencil::NinePoint,
    comm: &C,
    bs: &[&C::Vec],
    xs: &mut [&mut C::Vec],
    cfg: &SolverConfig,
    ws: &mut BatchWorkspace<C>,
) -> Vec<SolveStats> {
    let pre = state.precond.as_ref();
    match spec {
        SolverSpec::ClassicPcg => ClassicPcg.solve_batch_comm(op, pre, comm, bs, xs, cfg, ws),
        SolverSpec::ChronGear => ChronGear.solve_batch_comm(op, pre, comm, bs, xs, cfg, ws),
        SolverSpec::PipelinedCg => PipelinedCg.solve_batch_comm(op, pre, comm, bs, xs, cfg, ws),
        SolverSpec::Pcsi => {
            let bounds = state
                .bounds
                .expect("P-CSI state built without bounds — cache key bug");
            Pcsi::new(bounds).solve_batch_comm(op, pre, comm, bs, xs, cfg, ws)
        }
    }
}

/// The ranksim (chaos) path: one simulated-MPI world per request, faults
/// injected per the plan. No multi-RHS coalescing here — the rank runtime
/// solves one system at a time; the group still shares cached setup state.
fn solve_group_ranksim(
    group: &[Pending],
    op: &pop_stencil::NinePoint,
    state: &OperatorState,
    spec: SolverSpec,
    cfg: &SolverConfig,
    ranks: usize,
    faults: FaultPlan,
) -> (Vec<DistVec>, Vec<SolveStats>) {
    let kind = match spec {
        SolverSpec::ClassicPcg => SolverKind::ClassicPcg,
        SolverSpec::ChronGear => SolverKind::ChronGear,
        SolverSpec::PipelinedCg => SolverKind::PipelinedCg,
        SolverSpec::Pcsi => SolverKind::Pcsi(
            state
                .bounds
                .expect("P-CSI state built without bounds — cache key bug"),
        ),
    };
    let mut xs = Vec::with_capacity(group.len());
    let mut stats = Vec::with_capacity(group.len());
    for p in group {
        let world = RankWorld::new(
            &op.layout,
            ranks,
            Arc::new(ZeroCost),
            RankSimConfig::default().with_faults(faults),
        );
        let x0 = p
            .req
            .x0
            .clone()
            .unwrap_or_else(|| DistVec::zeros(&op.layout));
        let out = solve_on_ranks(&world, op, state.precond.as_ref(), kind, &p.req.b, &x0, cfg);
        stats.push(out.stats().clone());
        xs.push(out.x);
    }
    (xs, stats)
}

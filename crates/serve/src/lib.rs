//! `pop-serve`: a multi-tenant solve service over the barotropic solvers.
//!
//! The paper's P-CSI + block-EVP stack amortizes an expensive per-operator
//! setup (O(n³) EVP influence matrices, dense-LU land-tile factors, a
//! seeded Lanczos eigenbound estimation) over many cheap solves. This
//! crate turns that property into a serving architecture:
//!
//! ```text
//!   submit ──► admission ──► bounded queue ──► dispatch worker pool (×N)
//!              (full? quota?                     │ each worker, under the
//!               deadline feasible                │ queue lock: shed expired,
//!               at pool parallelism?)            │ pick priority lane,
//!                                                │ round-robin by tenant
//!                                                ▼
//!                                     take ONE coalesced group per
//!                                     (operator, solver, precond, tol)
//!                                     via BatchPlanner, release the lock
//!                                                ▼
//!                  shared LRU operator-state cache ──► batched multi-RHS
//!                  (fingerprint-keyed, Arc'd,            solve, per-worker
//!                   single-flight builds)                workspace
//!                                                         │
//!                                                         ▼
//!                                     per-request response channels
//! ```
//!
//! **Correctness contract.** Every served result is bit-identical to a
//! standalone solve of the same request — regardless of batching width,
//! cache state, arrival order, **worker count**, or injected ranksim
//! faults (benign plans). Three properties compose to give this: the
//! batched engine pins each request to a lane bitwise-equal to its
//! single-RHS trajectory (PR 6),
//! [`pop_core::setup::OperatorState::build`] is deterministic so a cache
//! hit (or a single-flighted concurrent build) returns the same bits a
//! cold build would, and the solvers are bitwise identical across
//! serial/threaded/ranksim backends. Workers never share solve state —
//! each has its own workspace and communicator world.
//! `tests/serve_cache_equivalence.rs` and `tests/serve_chaos.rs` enforce
//! it end to end across `workers ∈ {1, 2, 4}`.
//!
//! **Degradation contract.** Overload shows up as structured [`Reject`]s
//! (queue full, tenant quota, infeasible or expired deadline), never as
//! silent queue growth; ranksim faults show up as latency and solver
//! restarts, never as wrong results. SLO metrics (queue depth, latency
//! histograms with p50/p90/p99 via `pop_obs::quantile`, cache hit/shed
//! counters) export through the standard `pop-obs` registry.
//!
//! See DESIGN.md §13 for the full architecture discussion.

pub mod cache;
pub mod request;
pub mod sched;
pub mod service;

pub use cache::{CacheKey, CacheStats, OperatorCache, SharedOperatorCache};
pub use request::{Priority, Reject, SolveRequest, SolveResponse, SolverSpec, Ticket};
pub use sched::{fair_order, LaneState, QueueItem, INTERACTIVE_STREAK_LIMIT};
pub use service::{
    Backend, ServiceConfig, SolverService, LATENCY_BUCKETS, MAX_WORKERS, WIDTH_BUCKETS,
};

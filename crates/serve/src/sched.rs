//! Dispatch-order policy: per-class tenant fairness and priority lanes.
//!
//! Pure functions over `(tenant, priority)` queue snapshots, so the
//! ordering contract is testable without spinning up a service:
//!
//! - **Within a class**, requests are round-robin interleaved by tenant:
//!   each tenant's own submission order is preserved, and tenants rotate
//!   in order of first appearance in the queue, so one chatty tenant
//!   cannot monopolize a dispatch round ([`fair_order`]).
//! - **Across classes**, [`LaneState`] picks which lane the next
//!   dispatched group comes from. `Interactive` goes first, with one
//!   bound in each direction: a pending `Batch` group is promoted after
//!   at most [`INTERACTIVE_STREAK_LIMIT`] consecutive interactive
//!   dispatches (batch work cannot starve), and two batch groups are
//!   never dispatched back-to-back while interactive work is queued (an
//!   interactive request never waits behind more than one batch group).
//!
//! Both pieces are deterministic functions of the arrival sequence and
//! the lane state, which is what keeps single-worker dispatch order
//! reproducible for a fixed submission order.

use crate::request::Priority;

/// Consecutive interactive group dispatches (while batch work is queued)
/// before one batch group is promoted. Any value ≥ 1 preserves the
/// interactive starvation bound — after the promoted batch group the
/// streak resets, so the next pick is interactive again.
pub const INTERACTIVE_STREAK_LIMIT: usize = 4;

/// What the dispatcher needs to know about one queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueItem {
    pub tenant: u32,
    pub priority: Priority,
}

/// Indices of the `class` members of `items`, round-robin interleaved by
/// tenant: per-tenant FIFO order is preserved, tenants rotate in
/// first-appearance order. Returns queue positions, not items, so the
/// caller can move the real requests without cloning them.
pub fn fair_order(items: &[QueueItem], class: Priority) -> Vec<usize> {
    let mut lanes: Vec<(u32, Vec<usize>)> = Vec::new();
    for (i, item) in items.iter().enumerate() {
        if item.priority != class {
            continue;
        }
        match lanes.iter_mut().find(|(t, _)| *t == item.tenant) {
            Some((_, q)) => q.push(i),
            None => lanes.push((item.tenant, vec![i])),
        }
    }
    let mut out = Vec::with_capacity(lanes.iter().map(|(_, q)| q.len()).sum());
    let mut depth = 0;
    loop {
        let mut any = false;
        for (_, q) in &lanes {
            if let Some(&i) = q.get(depth) {
                out.push(i);
                any = true;
            }
        }
        if !any {
            return out;
        }
        depth += 1;
    }
}

/// Cross-class lane rotation state. One instance lives under the queue
/// lock; every group pick goes through [`LaneState::pick`].
#[derive(Debug, Default)]
pub struct LaneState {
    /// Consecutive interactive picks made while batch work was pending.
    interactive_streak: usize,
}

impl LaneState {
    pub fn new() -> LaneState {
        LaneState::default()
    }

    /// Choose the class of the next dispatched group given which lanes
    /// have work. `None` iff both lanes are empty.
    pub fn pick(&mut self, has_interactive: bool, has_batch: bool) -> Option<Priority> {
        match (has_interactive, has_batch) {
            (false, false) => None,
            (true, false) => {
                self.interactive_streak = 0;
                Some(Priority::Interactive)
            }
            (false, true) => {
                self.interactive_streak = 0;
                Some(Priority::Batch)
            }
            (true, true) => {
                if self.interactive_streak >= INTERACTIVE_STREAK_LIMIT {
                    self.interactive_streak = 0;
                    Some(Priority::Batch)
                } else {
                    self.interactive_streak += 1;
                    Some(Priority::Interactive)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Priority::{Batch, Interactive};

    fn item(tenant: u32, priority: Priority) -> QueueItem {
        QueueItem { tenant, priority }
    }

    #[test]
    fn fair_order_preserves_per_tenant_fifo_and_rotates_by_first_appearance() {
        // Queue: A0 A1 B0 A2 C0 B1 (all one class).
        let items = [
            item(7, Interactive), // 0: A0
            item(7, Interactive), // 1: A1
            item(3, Interactive), // 2: B0
            item(7, Interactive), // 3: A2
            item(9, Interactive), // 4: C0
            item(3, Interactive), // 5: B1
        ];
        // Rotation A, B, C (first appearance), per-tenant FIFO inside.
        assert_eq!(fair_order(&items, Interactive), vec![0, 2, 4, 1, 5, 3]);
        assert_eq!(fair_order(&items, Batch), Vec::<usize>::new());
    }

    #[test]
    fn fair_order_filters_by_class_without_disturbing_the_other_lane() {
        let items = [
            item(1, Batch),       // 0
            item(2, Interactive), // 1
            item(1, Interactive), // 2
            item(2, Batch),       // 3
            item(2, Interactive), // 4
            item(1, Batch),       // 5
        ];
        // Interactive lane: tenants rotate 2, 1; tenant 2 FIFO = 1, 4.
        assert_eq!(fair_order(&items, Interactive), vec![1, 2, 4]);
        // Batch lane: tenants rotate 1, 2; tenant 1 FIFO = 0, 5.
        assert_eq!(fair_order(&items, Batch), vec![0, 3, 5]);
    }

    #[test]
    fn fair_order_is_deterministic_for_a_fixed_arrival_sequence() {
        let items: Vec<QueueItem> = (0..32)
            .map(|i| item(i % 5, if i % 3 == 0 { Batch } else { Interactive }))
            .collect();
        let a = fair_order(&items, Interactive);
        let b = fair_order(&items, Interactive);
        assert_eq!(a, b);
        assert_eq!(fair_order(&items, Batch), fair_order(&items, Batch));
        // Every index appears exactly once across the two lanes.
        let mut all: Vec<usize> = a.into_iter().chain(fair_order(&items, Batch)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn interactive_never_waits_behind_more_than_one_batch_group() {
        // Both lanes always have work: the pick sequence must never
        // contain two consecutive Batch picks.
        let mut lanes = LaneState::new();
        let mut prev = None;
        for _ in 0..64 {
            let pick = lanes.pick(true, true).unwrap();
            assert!(
                !(prev == Some(Batch) && pick == Batch),
                "two batch groups dispatched back-to-back while interactive work was queued"
            );
            prev = Some(pick);
        }
    }

    #[test]
    fn batch_lane_is_promoted_within_the_streak_limit() {
        let mut lanes = LaneState::new();
        let picks: Vec<Priority> = (0..2 * (INTERACTIVE_STREAK_LIMIT + 1))
            .map(|_| lanes.pick(true, true).unwrap())
            .collect();
        let batch_picks = picks.iter().filter(|p| **p == Batch).count();
        assert!(batch_picks >= 2, "batch work starved: picks {picks:?}");
        // No window of STREAK_LIMIT+1 consecutive picks is all-interactive.
        for w in picks.windows(INTERACTIVE_STREAK_LIMIT + 1) {
            assert!(
                w.contains(&Batch),
                "batch group not promoted within the bound: {picks:?}"
            );
        }
    }

    #[test]
    fn empty_counter_lane_resets_the_streak() {
        let mut lanes = LaneState::new();
        for _ in 0..INTERACTIVE_STREAK_LIMIT {
            assert_eq!(lanes.pick(true, true), Some(Interactive));
        }
        // Batch lane drains before the promotion fires: interactive-only
        // picks reset the streak, so a batch arrival later still waits
        // for a fresh streak.
        assert_eq!(lanes.pick(true, false), Some(Interactive));
        assert_eq!(lanes.pick(true, true), Some(Interactive));
        // Lone batch work dispatches immediately.
        assert_eq!(lanes.pick(false, true), Some(Batch));
        assert_eq!(lanes.pick(false, false), None);
    }
}

//! Request/response/reject types of the solve service.

use pop_comm::DistVec;
use pop_core::setup::PrecondSpec;
use pop_core::solvers::SolveStats;
use pop_stencil::NinePoint;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Which iterative solver to run. Unlike `pop_ranksim::SolverKind` this
/// carries no eigenbounds — for P-CSI they come from the cached
/// [`pop_core::setup::OperatorState`], which is the point of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverSpec {
    ClassicPcg,
    ChronGear,
    PipelinedCg,
    Pcsi,
}

impl SolverSpec {
    pub fn label(self) -> &'static str {
        match self {
            SolverSpec::ClassicPcg => "pcg",
            SolverSpec::ChronGear => "chrongear",
            SolverSpec::PipelinedCg => "pipecg",
            SolverSpec::Pcsi => "pcsi",
        }
    }

    /// P-CSI needs Lanczos eigenbounds in its setup state.
    pub fn needs_bounds(self) -> bool {
        matches!(self, SolverSpec::Pcsi)
    }
}

/// Tenant SLO class. The dispatcher keeps two priority lanes: the
/// `Interactive` lane dispatches first, while a starvation bound
/// guarantees `Batch` work still progresses — and, symmetrically, that an
/// interactive request never waits behind more than one batch group (see
/// `sched::LaneState`). Each class can carry its own default deadline
/// ([`crate::ServiceConfig::interactive_deadline`] /
/// [`crate::ServiceConfig::batch_deadline`]), applied at admission when a
/// request doesn't set one explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic: dispatched ahead of `Batch` work.
    Interactive,
    /// Throughput traffic: yields to `Interactive`, protected from
    /// starvation by the lane rotation bound.
    Batch,
}

impl Priority {
    /// Stable label used on per-class SLO metrics.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// One tenant's solve request.
///
/// The operator rides behind an `Arc` so many queued requests against the
/// same operator share one allocation; requests whose operators
/// fingerprint equal (and agree on solver, preconditioner, and tolerance
/// bits) coalesce into one batched multi-RHS solve.
pub struct SolveRequest {
    /// Tenant identity for fairness accounting (quota on queued+in-flight
    /// requests per tenant).
    pub tenant: u32,
    pub op: Arc<NinePoint>,
    pub solver: SolverSpec,
    pub precond: PrecondSpec,
    /// Right-hand side `b` of `A x = b`.
    pub b: DistVec,
    /// Warm-start iterate; zeros when absent.
    pub x0: Option<DistVec>,
    /// Convergence tolerance. Part of the coalescing key: lanes of one
    /// batch share a `SolverConfig`.
    pub tol: f64,
    /// Relative deadline from submission. Expired requests are shed at
    /// dispatch time with a structured reject; a request already solving
    /// when its deadline passes is completed, not interrupted. When unset,
    /// the service applies the per-class default for `priority`.
    pub deadline: Option<Duration>,
    /// SLO class: which dispatch lane the request rides
    /// ([`Priority::Interactive`] by default).
    pub priority: Priority,
}

impl SolveRequest {
    pub fn new(
        tenant: u32,
        op: Arc<NinePoint>,
        solver: SolverSpec,
        precond: PrecondSpec,
        b: DistVec,
    ) -> SolveRequest {
        SolveRequest {
            tenant,
            op,
            solver,
            precond,
            b,
            x0: None,
            tol: 1e-13,
            deadline: None,
            priority: Priority::Interactive,
        }
    }

    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn with_x0(mut self, x0: DistVec) -> Self {
        self.x0 = Some(x0);
        self
    }

    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// A served solve: the solution plus how it was produced.
#[derive(Debug)]
pub struct SolveResponse {
    pub x: DistVec,
    pub stats: SolveStats,
    /// Whether the operator's setup state came from the cache.
    pub cache_hit: bool,
    /// How many requests shared the batched solve this one rode in
    /// (1 on the ranksim backend — batching is the shared-memory fast path).
    pub batch_width: usize,
    /// Time from submission to dispatch.
    pub queue_wait: Duration,
    /// Time from submission to response.
    pub latency: Duration,
}

/// A structured rejection: *why* the service refused or dropped the
/// request, with the numbers a client needs to back off sensibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// Admission: the bounded queue is full.
    QueueFull { depth: usize, capacity: usize },
    /// Admission: this tenant already has `in_flight` requests queued or
    /// solving, at its quota.
    TenantQuota {
        tenant: u32,
        in_flight: usize,
        quota: usize,
    },
    /// Admission: the requested deadline is shorter than the estimated
    /// queue wait (EWMA of recent per-solve service time × queue depth) —
    /// admitting it would only waste a solve.
    DeadlineUnmeetable {
        estimated_wait: Duration,
        deadline: Duration,
    },
    /// Dispatch: the deadline passed while the request sat in the queue.
    DeadlineExpired {
        waited: Duration,
        deadline: Duration,
    },
    /// The service is draining; nothing new is admitted.
    ShuttingDown,
}

impl Reject {
    /// Stable short reason, used as the `reason` label on the shed counter.
    pub fn reason(&self) -> &'static str {
        match self {
            Reject::QueueFull { .. } => "queue_full",
            Reject::TenantQuota { .. } => "tenant_quota",
            Reject::DeadlineUnmeetable { .. } => "deadline_unmeetable",
            Reject::DeadlineExpired { .. } => "deadline_expired",
            Reject::ShuttingDown => "shutting_down",
        }
    }
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::QueueFull { depth, capacity } => {
                write!(f, "queue full ({depth}/{capacity})")
            }
            Reject::TenantQuota {
                tenant,
                in_flight,
                quota,
            } => write!(f, "tenant {tenant} at quota ({in_flight}/{quota})"),
            Reject::DeadlineUnmeetable {
                estimated_wait,
                deadline,
            } => write!(
                f,
                "deadline {deadline:?} < estimated queue wait {estimated_wait:?}"
            ),
            Reject::DeadlineExpired { waited, deadline } => {
                write!(f, "deadline {deadline:?} expired after queueing {waited:?}")
            }
            Reject::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

/// The caller's handle to an admitted request. [`Ticket::wait`] blocks for
/// the outcome; admitted requests can still come back rejected
/// ([`Reject::DeadlineExpired`] at dispatch, [`Reject::ShuttingDown`] on
/// drain).
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Result<SolveResponse, Reject>>,
}

impl Ticket {
    /// Block until the request is served, shed, or the service drops.
    pub fn wait(self) -> Result<SolveResponse, Reject> {
        self.rx.recv().unwrap_or(Err(Reject::ShuttingDown))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reasons_are_stable_and_unique() {
        let all = [
            Reject::QueueFull {
                depth: 4,
                capacity: 4,
            },
            Reject::TenantQuota {
                tenant: 7,
                in_flight: 2,
                quota: 2,
            },
            Reject::DeadlineUnmeetable {
                estimated_wait: Duration::from_millis(50),
                deadline: Duration::from_millis(10),
            },
            Reject::DeadlineExpired {
                waited: Duration::from_millis(20),
                deadline: Duration::from_millis(10),
            },
            Reject::ShuttingDown,
        ];
        let mut reasons: Vec<&str> = all.iter().map(|r| r.reason()).collect();
        reasons.sort_unstable();
        reasons.dedup();
        assert_eq!(reasons.len(), all.len());
        for r in &all {
            assert!(!format!("{r}").is_empty());
        }
    }

    #[test]
    fn solver_spec_labels_match_solver_names() {
        // Labels must match `LinearSolver::name` so SLO metrics join with
        // the per-solve counters the solvers already export.
        assert_eq!(SolverSpec::ClassicPcg.label(), "pcg");
        assert_eq!(SolverSpec::ChronGear.label(), "chrongear");
        assert_eq!(SolverSpec::PipelinedCg.label(), "pipecg");
        assert_eq!(SolverSpec::Pcsi.label(), "pcsi");
        assert!(SolverSpec::Pcsi.needs_bounds());
        assert!(!SolverSpec::ChronGear.needs_bounds());
    }

    #[test]
    fn priority_labels_are_stable_and_default_is_interactive() {
        assert_eq!(Priority::Interactive.label(), "interactive");
        assert_eq!(Priority::Batch.label(), "batch");
        let grid = pop_grid::Grid::gx1_scaled(1, 16, 12);
        let layout = pop_comm::DistLayout::build(&grid, 4, 4);
        let world = pop_comm::CommWorld::serial();
        let op = NinePoint::assemble(&grid, &layout, &world, 1000.0);
        let b = DistVec::zeros(&layout);
        let req = SolveRequest::new(
            0,
            Arc::new(op),
            SolverSpec::ChronGear,
            PrecondSpec::Diagonal,
            b,
        );
        assert_eq!(req.priority, Priority::Interactive);
        assert_eq!(
            req.with_priority(Priority::Batch).priority,
            Priority::Batch
        );
    }
}

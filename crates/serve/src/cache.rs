//! LRU cache of per-operator setup state.
//!
//! The expensive, immutable part of a solve — EVP influence matrices,
//! dense-LU land-tile factors, Lanczos eigenbounds — is an
//! [`OperatorState`] keyed by the operator's fingerprint plus the
//! preconditioner spec and whether bounds were estimated. States are
//! `Arc`-shared: eviction only drops the cache's reference, so a batch
//! solving against an evicted state keeps it alive and is never corrupted
//! (`tests/serve_cache_equivalence.rs` exercises exactly this).
//!
//! Because [`OperatorState::build`] is deterministic, a hit is not merely
//! "close enough" — it is the same bits a cold build would produce, which
//! is what makes the cache transparent to results.

use pop_comm::CommWorld;
use pop_core::lanczos::LanczosConfig;
use pop_core::setup::{OperatorState, PrecondSpec};
use pop_stencil::NinePoint;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache identity of one setup state. Fingerprint collisions are treated
/// as identity (see `pop_core::fingerprint` for the collision semantics);
/// `with_bounds` keeps a CG-grade state (no Lanczos run) from masquerading
/// as a P-CSI-grade one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub fingerprint: u64,
    pub precond: PrecondSpec,
    pub with_bounds: bool,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

struct Entry {
    state: Arc<OperatorState>,
    last_used: u64,
}

/// Least-recently-used cache of [`OperatorState`]s.
///
/// Owned by the scheduler thread — no interior locking; concurrency safety
/// comes from the `Arc` payloads, not the map.
pub struct OperatorCache {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry>,
    stats: CacheStats,
}

impl OperatorCache {
    /// `capacity = 0` disables caching (every lookup builds cold).
    pub fn new(capacity: usize) -> OperatorCache {
        OperatorCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Fetch the setup state for `op`, building (and caching) it on miss.
    /// Returns the state and whether it was a hit. The Lanczos estimation
    /// runs only when `solver_needs_bounds` — CG-type traffic never pays
    /// for bounds it won't use.
    pub fn get_or_build(
        &mut self,
        fingerprint: u64,
        op: &NinePoint,
        precond: PrecondSpec,
        solver_needs_bounds: bool,
        lanczos: &LanczosConfig,
        world: &CommWorld,
    ) -> (Arc<OperatorState>, bool) {
        self.tick += 1;
        let key = CacheKey {
            fingerprint,
            precond,
            with_bounds: solver_needs_bounds,
        };
        if let Some(e) = self.map.get_mut(&key) {
            e.last_used = self.tick;
            self.stats.hits += 1;
            return (Arc::clone(&e.state), true);
        }
        self.stats.misses += 1;
        let state =
            OperatorState::build(op, precond, solver_needs_bounds.then_some(lanczos), world);
        if self.capacity > 0 {
            if self.map.len() >= self.capacity {
                self.evict_lru();
            }
            self.map.insert(
                key,
                Entry {
                    state: Arc::clone(&state),
                    last_used: self.tick,
                },
            );
        }
        (state, false)
    }

    fn evict_lru(&mut self) {
        if let Some(key) = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| *k)
        {
            self.map.remove(&key);
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_comm::DistLayout;
    use pop_grid::Grid;

    fn op() -> (NinePoint, CommWorld) {
        let grid = Grid::gx1_scaled(31, 32, 24);
        let layout = DistLayout::build(&grid, 8, 6);
        let world = CommWorld::serial();
        let op = NinePoint::assemble(&grid, &layout, &world, 4000.0);
        (op, world)
    }

    #[test]
    fn hit_returns_the_same_state() {
        let (op, world) = op();
        let fp = pop_core::fingerprint::operator_fingerprint(&op);
        let lz = LanczosConfig::default();
        let mut c = OperatorCache::new(4);
        let (a, hit_a) = c.get_or_build(fp, &op, PrecondSpec::Diagonal, false, &lz, &world);
        let (b, hit_b) = c.get_or_build(fp, &op, PrecondSpec::Diagonal, false, &lz, &world);
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b), "hit must return the identical state");
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn bounds_grade_is_part_of_the_key() {
        let (op, world) = op();
        let fp = pop_core::fingerprint::operator_fingerprint(&op);
        let lz = LanczosConfig::default();
        let mut c = OperatorCache::new(4);
        let (no_bounds, _) = c.get_or_build(fp, &op, PrecondSpec::Diagonal, false, &lz, &world);
        let (with_bounds, hit) = c.get_or_build(fp, &op, PrecondSpec::Diagonal, true, &lz, &world);
        assert!(!hit, "a CG-grade state must not satisfy a P-CSI lookup");
        assert!(no_bounds.bounds.is_none());
        assert!(with_bounds.bounds.is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used_and_keeps_arcs_alive() {
        let (op, world) = op();
        let lz = LanczosConfig::default();
        let mut c = OperatorCache::new(2);
        // Distinct fingerprints stand in for distinct operators; the
        // builder only cares about the op it is given.
        let (s1, _) = c.get_or_build(1, &op, PrecondSpec::Diagonal, false, &lz, &world);
        let (_s2, _) = c.get_or_build(2, &op, PrecondSpec::Diagonal, false, &lz, &world);
        // Touch 1 so 2 is the LRU, then insert 3.
        let (_, hit) = c.get_or_build(1, &op, PrecondSpec::Diagonal, false, &lz, &world);
        assert!(hit);
        let (_s3, _) = c.get_or_build(3, &op, PrecondSpec::Diagonal, false, &lz, &world);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        let (_, hit1) = c.get_or_build(1, &op, PrecondSpec::Diagonal, false, &lz, &world);
        assert!(hit1, "recently-used entry survived");
        // s1 still usable after all the churn — eviction can't free it
        // while we hold the Arc.
        assert_eq!(s1.precond.name(), "diagonal");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let (op, world) = op();
        let lz = LanczosConfig::default();
        let mut c = OperatorCache::new(0);
        let (_, h1) = c.get_or_build(9, &op, PrecondSpec::Diagonal, false, &lz, &world);
        let (_, h2) = c.get_or_build(9, &op, PrecondSpec::Diagonal, false, &lz, &world);
        assert!(!h1 && !h2);
        assert!(c.is_empty());
        assert_eq!(c.stats().misses, 2);
    }
}

//! LRU cache of per-operator setup state.
//!
//! The expensive, immutable part of a solve — EVP influence matrices,
//! dense-LU land-tile factors, Lanczos eigenbounds — is an
//! [`OperatorState`] keyed by the operator's fingerprint plus the
//! preconditioner spec and whether bounds were estimated. States are
//! `Arc`-shared: eviction only drops the cache's reference, so a batch
//! solving against an evicted state keeps it alive and is never corrupted
//! (`tests/serve_cache_equivalence.rs` exercises exactly this).
//!
//! Because [`OperatorState::build`] is deterministic, a hit is not merely
//! "close enough" — it is the same bits a cold build would produce, which
//! is what makes the cache transparent to results.

use pop_comm::CommWorld;
use pop_core::lanczos::LanczosConfig;
use pop_core::setup::{OperatorState, PrecondSpec};
use pop_stencil::NinePoint;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Cache identity of one setup state. Fingerprint collisions are treated
/// as identity (see `pop_core::fingerprint` for the collision semantics);
/// `with_bounds` keeps a CG-grade state (no Lanczos run) from masquerading
/// as a P-CSI-grade one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub fingerprint: u64,
    pub precond: PrecondSpec,
    pub with_bounds: bool,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Lookups that neither hit the LRU nor built: they arrived while
    /// another worker was building the same state and waited for it
    /// (single-flight, [`SharedOperatorCache`]). Counted inside `hits`
    /// as well — a coalesced lookup did not pay for a build.
    pub coalesced_builds: u64,
}

struct Entry {
    state: Arc<OperatorState>,
    last_used: u64,
}

/// Least-recently-used cache of [`OperatorState`]s.
///
/// Owned by the scheduler thread — no interior locking; concurrency safety
/// comes from the `Arc` payloads, not the map.
pub struct OperatorCache {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry>,
    stats: CacheStats,
}

impl OperatorCache {
    /// `capacity = 0` disables caching (every lookup builds cold).
    pub fn new(capacity: usize) -> OperatorCache {
        OperatorCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// LRU lookup: bumps recency and the hit counter on success. The
    /// miss counter is charged by [`OperatorCache::insert_built`] so a
    /// (lookup, build, insert) sequence counts one miss.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Arc<OperatorState>> {
        self.tick += 1;
        if let Some(e) = self.map.get_mut(key) {
            e.last_used = self.tick;
            self.stats.hits += 1;
            return Some(Arc::clone(&e.state));
        }
        None
    }

    /// Record a freshly built state after a miss ([`OperatorCache::lookup`]
    /// returned `None`), evicting the LRU entry if at capacity. With
    /// `capacity = 0` the state is not retained — the miss is still
    /// counted.
    pub fn insert_built(&mut self, key: CacheKey, state: &Arc<OperatorState>) {
        self.stats.misses += 1;
        if self.capacity > 0 {
            if self.map.len() >= self.capacity {
                self.evict_lru();
            }
            self.map.insert(
                key,
                Entry {
                    state: Arc::clone(state),
                    last_used: self.tick,
                },
            );
        }
    }

    /// Fetch the setup state for `op`, building (and caching) it on miss.
    /// Returns the state and whether it was a hit. The Lanczos estimation
    /// runs only when `solver_needs_bounds` — CG-type traffic never pays
    /// for bounds it won't use.
    pub fn get_or_build(
        &mut self,
        fingerprint: u64,
        op: &NinePoint,
        precond: PrecondSpec,
        solver_needs_bounds: bool,
        lanczos: &LanczosConfig,
        world: &CommWorld,
    ) -> (Arc<OperatorState>, bool) {
        let key = CacheKey {
            fingerprint,
            precond,
            with_bounds: solver_needs_bounds,
        };
        if let Some(state) = self.lookup(&key) {
            return (state, true);
        }
        let state =
            OperatorState::build(op, precond, solver_needs_bounds.then_some(lanczos), world);
        self.insert_built(key, &state);
        (state, false)
    }

    fn evict_lru(&mut self) {
        if let Some(key) = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| *k)
        {
            self.map.remove(&key);
            self.stats.evictions += 1;
        }
    }
}

/// One in-flight build: waiters block on the condvar until the builder
/// publishes the finished state.
struct Flight {
    done: Mutex<Option<Arc<OperatorState>>>,
    cv: Condvar,
}

/// Thread-safe wrapper around [`OperatorCache`] for the dispatch worker
/// pool, with **single-flight** miss handling: when several workers miss
/// on the same [`CacheKey`] concurrently, exactly one builds the
/// `OperatorState` and the rest wait for that build instead of
/// duplicating the (expensive, deterministic) work. Waiters count as
/// hits plus [`CacheStats::coalesced_builds`].
///
/// The LRU lock is never held across a build — only across map lookups
/// and inserts — so a slow Lanczos/EVP setup on one operator cannot
/// stall workers serving other operators.
pub struct SharedOperatorCache {
    inner: Mutex<OperatorCache>,
    /// Builds in flight, keyed by cache identity. Entries are inserted
    /// by the worker that claims the build and removed when it
    /// publishes; the map lock is disjoint from the LRU lock.
    building: Mutex<HashMap<CacheKey, Arc<Flight>>>,
}

impl SharedOperatorCache {
    /// `capacity = 0` disables LRU retention (misses still single-flight).
    pub fn new(capacity: usize) -> SharedOperatorCache {
        SharedOperatorCache {
            inner: Mutex::new(OperatorCache::new(capacity)),
            building: Mutex::new(HashMap::new()),
        }
    }

    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).stats()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Concurrent [`OperatorCache::get_or_build`]: LRU hit, wait on an
    /// in-flight build of the same key, or claim the build. Returns the
    /// state and whether it was served without building (LRU hit or
    /// coalesced onto another worker's build).
    pub fn get_or_build(
        &self,
        fingerprint: u64,
        op: &NinePoint,
        precond: PrecondSpec,
        solver_needs_bounds: bool,
        lanczos: &LanczosConfig,
        world: &CommWorld,
    ) -> (Arc<OperatorState>, bool) {
        let key = CacheKey {
            fingerprint,
            precond,
            with_bounds: solver_needs_bounds,
        };
        if let Some(state) = self
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .lookup(&key)
        {
            return (state, true);
        }
        let flight = {
            let mut b = self.building.lock().unwrap_or_else(|e| e.into_inner());
            match b.get(&key) {
                Some(f) => Some(Arc::clone(f)),
                None => {
                    b.insert(
                        key,
                        Arc::new(Flight {
                            done: Mutex::new(None),
                            cv: Condvar::new(),
                        }),
                    );
                    None
                }
            }
        };
        match flight {
            Some(f) => {
                // Another worker owns the build; wait for it to publish,
                // then report a coalesced hit.
                let mut done = f.done.lock().unwrap_or_else(|e| e.into_inner());
                while done.is_none() {
                    done = f.cv.wait(done).unwrap_or_else(|e| e.into_inner());
                }
                let state = Arc::clone(done.as_ref().expect("flight published"));
                let mut c = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                c.stats.hits += 1;
                c.stats.coalesced_builds += 1;
                (state, true)
            }
            None => {
                // We claimed the build. Between our LRU miss and the
                // claim, the previous builder may have published and
                // retired its flight — re-check the LRU before paying
                // for a build.
                if let Some(state) = self
                    .inner
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .lookup(&key)
                {
                    self.retire_flight(&key, &state);
                    return (state, true);
                }
                let state =
                    OperatorState::build(op, precond, solver_needs_bounds.then_some(lanczos), world);
                self.inner
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert_built(key, &state);
                self.retire_flight(&key, &state);
                (state, false)
            }
        }
    }

    /// Publish the built state to waiters and drop the flight entry.
    fn retire_flight(&self, key: &CacheKey, state: &Arc<OperatorState>) {
        let flight = self
            .building
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key);
        if let Some(f) = flight {
            *f.done.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(state));
            f.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_comm::DistLayout;
    use pop_grid::Grid;

    fn op() -> (NinePoint, CommWorld) {
        let grid = Grid::gx1_scaled(31, 32, 24);
        let layout = DistLayout::build(&grid, 8, 6);
        let world = CommWorld::serial();
        let op = NinePoint::assemble(&grid, &layout, &world, 4000.0);
        (op, world)
    }

    #[test]
    fn hit_returns_the_same_state() {
        let (op, world) = op();
        let fp = pop_core::fingerprint::operator_fingerprint(&op);
        let lz = LanczosConfig::default();
        let mut c = OperatorCache::new(4);
        let (a, hit_a) = c.get_or_build(fp, &op, PrecondSpec::Diagonal, false, &lz, &world);
        let (b, hit_b) = c.get_or_build(fp, &op, PrecondSpec::Diagonal, false, &lz, &world);
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b), "hit must return the identical state");
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn bounds_grade_is_part_of_the_key() {
        let (op, world) = op();
        let fp = pop_core::fingerprint::operator_fingerprint(&op);
        let lz = LanczosConfig::default();
        let mut c = OperatorCache::new(4);
        let (no_bounds, _) = c.get_or_build(fp, &op, PrecondSpec::Diagonal, false, &lz, &world);
        let (with_bounds, hit) = c.get_or_build(fp, &op, PrecondSpec::Diagonal, true, &lz, &world);
        assert!(!hit, "a CG-grade state must not satisfy a P-CSI lookup");
        assert!(no_bounds.bounds.is_none());
        assert!(with_bounds.bounds.is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used_and_keeps_arcs_alive() {
        let (op, world) = op();
        let lz = LanczosConfig::default();
        let mut c = OperatorCache::new(2);
        // Distinct fingerprints stand in for distinct operators; the
        // builder only cares about the op it is given.
        let (s1, _) = c.get_or_build(1, &op, PrecondSpec::Diagonal, false, &lz, &world);
        let (_s2, _) = c.get_or_build(2, &op, PrecondSpec::Diagonal, false, &lz, &world);
        // Touch 1 so 2 is the LRU, then insert 3.
        let (_, hit) = c.get_or_build(1, &op, PrecondSpec::Diagonal, false, &lz, &world);
        assert!(hit);
        let (_s3, _) = c.get_or_build(3, &op, PrecondSpec::Diagonal, false, &lz, &world);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        let (_, hit1) = c.get_or_build(1, &op, PrecondSpec::Diagonal, false, &lz, &world);
        assert!(hit1, "recently-used entry survived");
        // s1 still usable after all the churn — eviction can't free it
        // while we hold the Arc.
        assert_eq!(s1.precond.name(), "diagonal");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let (op, world) = op();
        let lz = LanczosConfig::default();
        let mut c = OperatorCache::new(0);
        let (_, h1) = c.get_or_build(9, &op, PrecondSpec::Diagonal, false, &lz, &world);
        let (_, h2) = c.get_or_build(9, &op, PrecondSpec::Diagonal, false, &lz, &world);
        assert!(!h1 && !h2);
        assert!(c.is_empty());
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn shared_cache_single_flights_concurrent_misses() {
        let (op, world) = op();
        let fp = pop_core::fingerprint::operator_fingerprint(&op);
        let lz = LanczosConfig::default();
        let cache = SharedOperatorCache::new(4);
        let n = 8;
        let states: Vec<Arc<OperatorState>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    s.spawn(|| {
                        let world = CommWorld::serial();
                        cache
                            .get_or_build(fp, &op, PrecondSpec::Evp, true, &lz, &world)
                            .0
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let _ = world;
        // All callers share one state: exactly one build happened.
        for s in &states[1..] {
            assert!(Arc::ptr_eq(&states[0], s), "workers built duplicate states");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "single-flight must build exactly once");
        assert_eq!(stats.hits, (n - 1) as u64);
        // Every hit either waited on the in-flight build or arrived after
        // it was published into the LRU.
        assert!(stats.coalesced_builds <= stats.hits);
    }

    #[test]
    fn shared_cache_matches_unshared_semantics_sequentially() {
        let (op, world) = op();
        let fp = pop_core::fingerprint::operator_fingerprint(&op);
        let lz = LanczosConfig::default();
        let shared = SharedOperatorCache::new(2);
        let (a, h1) = shared.get_or_build(fp, &op, PrecondSpec::Diagonal, false, &lz, &world);
        let (b, h2) = shared.get_or_build(fp, &op, PrecondSpec::Diagonal, false, &lz, &world);
        assert!(!h1 && h2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(shared.len(), 1);
        assert_eq!(shared.stats().coalesced_builds, 0);
    }
}

//! SIMD-vs-scalar micro-benchmarks of the three hot kernels, as JSON.
//!
//! Times the fused 9-point apply/residual block sweeps and the EVP tile
//! solve under an explicit dispatch choice — the scalar reference arm
//! against the best mode the CPU supports (`pop_simd::mode()`) — and
//! reports paired-ratio speedups. The two arms compute bitwise-identical
//! results (DESIGN.md §9), so this isolates pure kernel throughput.
//!
//! Writes `BENCH_kernels.json` in the working directory with full
//! provenance: requested and resolved dispatch mode, CPU feature
//! detection, thread counts. `--quick` shrinks reps for CI smoke runs.

use pop_bench::provenance::Provenance;
use pop_bench::timing::quick_requested;
use pop_comm::{CommWorld, DistLayout, DistVec};
use pop_core::precond::{EvpScratch, EvpSubBlock};
use pop_grid::Grid;
use pop_simd::SimdMode;
use pop_stencil::{LocalStencil, NinePoint};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    kernel: String,
    /// Per-op microseconds (op = one block/tile visit), median over samples.
    scalar_us_median: f64,
    simd_us_median: f64,
    /// Median of paired per-sample ratios scalar/simd.
    speedup_paired_median: f64,
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

/// Interleaved scalar/SIMD sampling: each sample times `run(mode)` once per
/// arm, back to back, so machine drift cancels inside each paired ratio.
/// `run` returns the number of kernel ops it performed.
fn measure(
    kernel: &str,
    simd: SimdMode,
    samples: usize,
    mut run: Box<dyn FnMut(SimdMode) -> usize + '_>,
) -> Row {
    // Warm-up both arms (page faults, branch predictors, frequency).
    run(SimdMode::Scalar);
    run(simd);
    let mut scalar_us = Vec::with_capacity(samples);
    let mut simd_us = Vec::with_capacity(samples);
    for _ in 0..samples {
        for arm in [SimdMode::Scalar, simd] {
            let t = Instant::now();
            let ops = run(arm);
            let us = t.elapsed().as_secs_f64() * 1e6 / ops as f64;
            if arm == SimdMode::Scalar {
                scalar_us.push(us);
            } else {
                simd_us.push(us);
            }
        }
    }
    let median = |v: &[f64]| {
        let mut s = v.to_vec();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    let mut ratios: Vec<f64> = scalar_us
        .iter()
        .zip(&simd_us)
        .map(|(&s, &v)| s / v)
        .collect();
    ratios.sort_by(f64::total_cmp);
    Row {
        kernel: kernel.to_string(),
        scalar_us_median: median(&scalar_us),
        simd_us_median: median(&simd_us),
        speedup_paired_median: ratios[ratios.len() / 2],
    }
}

fn main() {
    let quick = quick_requested();
    let simd = pop_simd::mode();
    if simd == SimdMode::Scalar {
        eprintln!(
            "WARNING [bench_kernels_json]: dispatch resolved to the scalar mode \
             (POP_BARO_SIMD = {:?}); the \"simd\" arm is the scalar arm and every \
             speedup below will be ~1.0x.",
            pop_simd::requested()
        );
    }
    let (reps, samples) = if quick { (10usize, 5usize) } else { (60, 31) };

    let mut rows: Vec<Row> = Vec::new();

    // --- fused stencil apply / residual -----------------------------------
    // An L2-resident grid (~0.9 MB working set), so the rows measure kernel
    // throughput rather than memory bandwidth. Two decompositions: the
    // 10x10 blocks the solver benches run on, and 20x20 blocks where lane
    // groups dominate the row tail.
    let (nx, ny) = (160, 120);
    for (bx, by) in [(nx / 10, ny / 10), (nx / 20, ny / 20)] {
        let g = Grid::gx01_scaled(7, nx, ny);
        let layout = DistLayout::build(&g, bx, by);
        let world = CommWorld::serial();
        let op = NinePoint::assemble(&g, &layout, &world, 345.6);
        let mut x = DistVec::zeros(&layout);
        x.fill_with(|i, j| ((i * 3 + j * 7) as f64 * 0.013).sin());
        world.halo_update(&mut x);
        let mut y = DistVec::zeros(&layout);
        let mut rhs = DistVec::zeros(&layout);
        op.apply(&world, &x, &mut rhs);
        let nb = layout.n_blocks();
        let shape = format!("{}x{}", nx / bx, ny / by);

        rows.push(measure(
            &format!("stencil_apply_{shape}"),
            simd,
            samples,
            Box::new(|mode| {
                for _ in 0..reps {
                    for b in 0..nb {
                        op.apply_block_into_mode(
                            mode,
                            b,
                            &x.blocks[b],
                            &mut y.blocks[b],
                            &layout.masks[b],
                        );
                    }
                }
                reps * nb
            }),
        ));
        let mut r = DistVec::zeros(&layout);
        let mut sink = 0.0f64;
        rows.push(measure(
            &format!("stencil_residual_{shape}"),
            simd,
            samples,
            Box::new(|mode| {
                for _ in 0..reps {
                    for b in 0..nb {
                        sink += op.residual_block_into_mode(
                            mode,
                            b,
                            &x.blocks[b],
                            &rhs.blocks[b],
                            &mut r.blocks[b],
                            &layout.masks[b],
                        );
                    }
                }
                reps * nb
            }),
        ));
        assert!(sink.is_finite());
    }

    // --- EVP tile solve ---------------------------------------------------
    // Marchable open-ocean tiles at the default tile size, reduced and full.
    let evp_reps = reps * 200;
    for (tn, reduced, phi) in [(8usize, true, 5.0), (8, false, 5.0), (12, true, 80.0)] {
        // The larger tile takes a stronger diagonal (free-surface) shift to
        // stay inside marching stability, like POP's real operator does.
        let raw = LocalStencil::reference(tn, tn, 120.0, phi);
        let sub = EvpSubBlock::new(&raw, reduced);
        if !sub.uses_marching() {
            eprintln!("[bench_kernels_json] skipping {tn}x{tn} (LU fallback, not EVP)");
            continue;
        }
        let psi: Vec<f64> = (0..tn * tn)
            .map(|k| ((k.wrapping_mul(2654435761)) % 1000) as f64 / 500.0 - 1.0)
            .collect();
        let mut out = vec![0.0; tn * tn];
        let mut scratch = EvpScratch::default();
        let variant = if reduced { "reduced" } else { "full" };
        rows.push(measure(
            &format!("evp_tile_solve_{tn}x{tn}_{variant}"),
            simd,
            samples,
            Box::new(|mode| {
                for _ in 0..evp_reps {
                    sub.solve_mode(mode, &psi, &mut out, &mut scratch);
                }
                evp_reps
            }),
        ));
        assert!(out.iter().all(|v| v.is_finite()));
    }

    println!(
        "\n== kernel micro-benchmarks (scalar vs {}) ==",
        simd.name()
    );
    println!(
        "{:>28} {:>14} {:>14} {:>10}",
        "kernel", "scalar µs/op", "simd µs/op", "speedup"
    );
    for r in &rows {
        println!(
            "{:>28} {:>14.4} {:>14.4} {:>9.2}x",
            r.kernel, r.scalar_us_median, r.simd_us_median, r.speedup_paired_median
        );
    }

    let prov = Provenance::collect();
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"bench_kernels_json\",");
    let _ = writeln!(j, "  \"provenance\": {},", prov.json());
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(
        j,
        "  \"simd\": {{\"requested\": \"{}\", \"dispatch\": \"{}\", \"avx2_detected\": {}, \
         \"fma_detected\": {}}},",
        pop_simd::requested(),
        simd.name(),
        pop_simd::detected_avx2(),
        pop_simd::detected_fma()
    );
    let _ = writeln!(j, "  \"samples\": {samples},");
    j.push_str("  \"results\": [\n");
    for (k, r) in rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"kernel\": \"{}\", \"scalar_us_median\": {}, \"simd_us_median\": {}, \
             \"speedup_paired_median\": {}}}",
            r.kernel,
            json_f(r.scalar_us_median),
            json_f(r.simd_us_median),
            json_f(r.speedup_paired_median)
        );
        j.push_str(if k + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");

    let out = "BENCH_kernels.json";
    std::fs::write(out, &j).expect("write BENCH_kernels.json");
    println!("\n[wrote {out}]");
}

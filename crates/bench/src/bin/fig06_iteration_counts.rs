//! Figure 6: average iteration counts of the four solver configurations at
//! both resolutions. The paper's headline convergence claims:
//! EVP cuts the count by ~2/3 for both solvers; P-CSI needs more iterations
//! than ChronGear; 0.1° converges in fewer iterations than 1° (its aspect
//! ratio is nearer 1).

use pop_bench::*;
use pop_perfmodel::paper::fig6 as paper;

fn main() {
    let opts = RunOptions::from_args();
    let cfg = production_solver_config();

    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for (eg, paper_vals) in [
        (
            gx1(&opts),
            [
                paper::GX1_CG_DIAG,
                paper::GX1_CG_EVP,
                paper::GX1_PCSI_DIAG,
                paper::GX1_PCSI_EVP,
            ],
        ),
        (
            gx01(&opts),
            [
                paper::GX01_CG_DIAG,
                paper::GX01_CG_EVP,
                paper::GX01_PCSI_DIAG,
                paper::GX01_PCSI_EVP,
            ],
        ),
    ] {
        println!(
            "measuring {} on {}x{} (tau = {}s)...",
            eg.label, eg.grid.nx, eg.grid.ny, eg.tau
        );
        let wl = Workload::new(&eg);
        let ms = wl.measure_paper_set(&cfg);
        for (m, pv) in ms.iter().zip(paper_vals) {
            rows.push(vec![
                eg.label.to_string(),
                m.choice.label().to_string(),
                m.stats.iterations.to_string(),
                format!("{pv:.0}"),
                format!("{:.2}", m.stats.iterations as f64 / pv),
            ]);
        }
        measured.push((eg.label, ms));
    }

    print_table(
        "average solver iterations (Fig 6)",
        &["grid", "config", "measured K", "paper K", "ratio"],
        &rows,
    );

    // Shape checks the paper's text states.
    for (label, ms) in &measured {
        let k = |idx: usize| ms[idx].stats.iterations as f64;
        // PAPER_SET order: cg+diag, cg+evp, pcsi+diag, pcsi+evp
        println!(
            "{label}: EVP/diag iteration ratio = {:.2} (ChronGear), {:.2} (P-CSI)  [paper ~0.33]",
            k(1) / k(0),
            k(3) / k(2)
        );
        assert!(k(1) < 0.7 * k(0), "EVP must cut ChronGear iterations");
        assert!(k(3) < 0.7 * k(2), "EVP must cut P-CSI iterations");
        assert!(k(2) > k(0), "P-CSI needs more iterations than ChronGear");
    }
    write_csv(
        "fig06_iteration_counts",
        &["grid", "config", "measured_K", "paper_K", "ratio"],
        &rows,
    );
}

//! Run every figure/table reproduction in sequence (quick settings) and
//! leave their CSVs under `results/`. See `EXPERIMENTS.md` for the
//! paper-vs-measured record.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "fig01_barotropic_fraction",
        "fig02_comm_breakdown",
        "fig03_lanczos_steps",
        "fig04_sparsity",
        "fig05_evp_marching",
        "fig06_iteration_counts",
        "fig07_lowres_scaling",
        "table1_total_improvement",
        "fig08_highres_yellowstone",
        "fig09_pcsi_fraction",
        "fig10_solver_components",
        "fig11_highres_edison",
        "fig12_rmse_tolerance",
        "fig13_rmsz_ensemble",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n################ {bin} ################");
        let status = Command::new(exe_dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e} (build with `cargo build -p pop-bench --release --bins` first)"));
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; CSVs under results/");
    } else {
        println!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}

//! Figure 5: the EVP marching pattern. The equation centered at `(i,j)`
//! determines the unknown at `(i+1,j+1)`, so one SW→NE sweep from the
//! initial-guess line `e` (south row + west column) fills the domain and
//! overshoots onto the Dirichlet ring `f` (north + east), whose mismatch
//! drives the influence-matrix correction.

use pop_bench::*;
use pop_core::precond::{EvpScratch, EvpSubBlock};
use pop_stencil::LocalStencil;

fn main() {
    let _opts = RunOptions::from_args();
    let n = 7usize;
    println!("Fig 5 reproduction: EVP marching on a {n}x{n} block\n");
    println!("E = initial-guess point (value assumed), number = marching order,");
    println!("F = overshoot onto the Dirichlet ring (drives the correction)\n");

    // Marching order: the equation at (i, j) — lexicographic — produces
    // (i+1, j+1).
    let mut order = vec![None::<usize>; (n + 1) * (n + 1)];
    let mut step = 0usize;
    for j in 0..n {
        for i in 0..n {
            order[(j + 1) * (n + 1) + (i + 1)] = Some(step);
            step += 1;
        }
    }
    for j in (0..=n).rev() {
        let mut line = String::new();
        for i in 0..=n {
            let cell = if i < n && j < n && (i == 0 || j == 0) {
                " E ".to_string()
            } else if i == n || j == n {
                if order[j * (n + 1) + i].is_some() {
                    " F ".to_string()
                } else {
                    " . ".to_string()
                }
            } else {
                match order[j * (n + 1) + i] {
                    Some(s) => format!("{s:2} "),
                    None => " ? ".to_string(),
                }
            };
            line.push_str(&format!("{cell:>4}"));
        }
        println!("{line}");
    }

    // And demonstrate the full algorithm end to end: exact solve of a block.
    let raw = LocalStencil::reference(n, n, 200.0, 4.0);
    let sub = EvpSubBlock::new(&raw, false);
    assert!(sub.uses_marching());
    let psi: Vec<f64> = (0..n * n).map(|k| ((k as f64) * 0.37).sin()).collect();
    let mut x = vec![0.0; n * n];
    sub.solve(&psi, &mut x, &mut EvpScratch::default());
    let mut worst = 0.0f64;
    for j in 0..n as isize {
        for i in 0..n as isize {
            let ax = raw.apply_at(i, j, |ii, jj| {
                if ii >= 0 && jj >= 0 && (ii as usize) < n && (jj as usize) < n {
                    x[jj as usize * n + ii as usize]
                } else {
                    0.0
                }
            });
            worst = worst.max((ax - psi[(j as usize) * n + i as usize]).abs());
        }
    }
    println!(
        "\nEVP solve of the {n}x{n} block: max residual {worst:.2e} \
         (two marching sweeps + one {k}x{k} correction, k = 2n-1)",
        k = 2 * n - 1
    );
    println!("costs: solve O(22 n^2) vs dense LU O(n^4); setup O(26 n^3) done once (paper 4.2)");
}

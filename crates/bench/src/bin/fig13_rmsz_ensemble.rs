//! Figure 13: the ensemble-based RMSZ test succeeds where RMSE fails.
//! A perturbation ensemble (paper: 40 members, 1e-14 initial temperature
//! perturbation) defines the envelope of natural variability; candidates
//! with loose solver tolerances (1e-10, 1e-11) score RMSZ values orders of
//! magnitude outside the member envelope, while the default and stricter
//! tolerances — and the new P-CSI+EVP solver — fall inside.

use pop_bench::*;
use pop_comm::CommWorld;
use pop_grid::Grid;
use pop_ocean::{MiniPopConfig, SolverChoice};
use pop_perfmodel::paper::verification as paper;
use pop_verif::consistency::{evaluate, DEFAULT_ALLOWED_FAILURES, DEFAULT_MARGIN};
use pop_verif::{EnsembleConfig, Verdict, VerificationLab};

fn main() {
    let opts = RunOptions::from_args();
    let quick = !opts.full;
    let grid = Grid::idealized_basin(64, 48, 500.0, 2.0e4);
    let mut base = MiniPopConfig::eddying_for(&grid);
    base.nlev = 3;
    base.solver = SolverChoice::ChronGearDiag;
    base.tolerance = paper::DEFAULT_TOLERANCE;

    let cfg = if quick {
        EnsembleConfig {
            members: 16,
            perturbation: paper::PERTURBATION,
            months: 8,
            steps_per_month: 600,
            spinup_steps: 2500,
        }
    } else {
        EnsembleConfig {
            members: paper::ENSEMBLE_SIZE,
            perturbation: paper::PERTURBATION,
            // Long enough that the chaotic divergence saturates — the regime
            // the paper's 12–24-month ensembles operate in, and what makes
            // a solver *change* at tight tolerance indistinguishable from
            // the ensemble's own variability.
            months: 12,
            steps_per_month: 2500,
            spinup_steps: 4000,
        }
    };
    println!(
        "Fig 13 reproduction: {}-member ensemble, {} months x {} steps{}",
        cfg.members,
        cfg.months,
        cfg.steps_per_month,
        if quick {
            " (QUICK; pass --full for the 40-member setup)"
        } else {
            ""
        }
    );

    let world = CommWorld::serial();
    let lab = VerificationLab::new(grid, base, cfg.clone(), &world);
    println!("building the ensemble ({} members)...", cfg.members);
    let ensemble = lab.build_ensemble(&world);

    // The member envelope (the paper's yellow band).
    let mut band_rows = Vec::new();
    for (t, (lo, hi)) in ensemble.member_rmsz_range.iter().enumerate() {
        band_rows.push(vec![
            format!("m{}", t + 1),
            format!("{lo:.2}"),
            format!("{hi:.2}"),
        ]);
    }
    print_table(
        "ensemble member leave-one-out RMSZ envelope",
        &["month", "min", "max"],
        &band_rows,
    );

    // Candidates: the tolerance sweep with the reference solver, plus the
    // paper's new solver at the default tolerance.
    let tolerances: Vec<f64> = if quick {
        vec![1e-10, 1e-11, 1e-13, 1e-16]
    } else {
        paper::TOLERANCES.to_vec()
    };
    let mut rows = Vec::new();
    let mut verdicts = Vec::new();
    let mut run_candidate = |label: String, solver: SolverChoice, tol: f64| {
        println!("candidate: {label}...");
        let months = lab.run_trajectory(&world, None, solver, tol);
        let report = evaluate(&ensemble, &months, DEFAULT_MARGIN, DEFAULT_ALLOWED_FAILURES);
        let mut row = vec![label.clone()];
        row.extend(report.rmsz.iter().map(|z| format!("{z:.2}")));
        row.push(format!("{:?}", report.verdict));
        rows.push(row);
        verdicts.push((label, tol, report.verdict));
    };
    for &tol in &tolerances {
        run_candidate(
            format!("chrongear tol={tol:.0e}"),
            SolverChoice::ChronGearDiag,
            tol,
        );
    }
    run_candidate(
        format!("P-CSI+EVP tol={:.0e}", paper::DEFAULT_TOLERANCE),
        SolverChoice::PcsiEvp,
        paper::DEFAULT_TOLERANCE,
    );

    let mut headers: Vec<String> = vec!["candidate".to_string()];
    headers.extend((1..=ensemble.months()).map(|m| format!("m{m}")));
    headers.push("verdict".to_string());
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("candidate RMSZ per month", &hdr_refs, &rows);

    println!("\npaper finding: tolerances 1e-10 and 1e-11 are 'noticeably removed from the");
    println!("ensemble distribution'; the default (1e-13), stricter tolerances, and the new");
    println!("P-CSI solver are consistent — enabling its inclusion in the CESM release.");
    for (label, tol, v) in &verdicts {
        let expect_flag = *tol >= 1e-11 && label.starts_with("chrongear");
        let marker = match (expect_flag, v) {
            (true, Verdict::Inconsistent) | (false, Verdict::Consistent) => "as in the paper",
            _ => "DIFFERS from the paper",
        };
        println!("  {label}: {v:?} ({marker})");
    }
    println!(
        "\nnote: with an unsaturated ensemble (finite horizon on the reduced-physics\n\
         model) the test is stricter than the paper's — any non-bit-similar candidate\n\
         sits above the band even when its RMSZ is orders of magnitude below the\n\
         flagged tolerances'. The discrimination ORDER is the reproducible claim;\n\
         see EXPERIMENTS.md, Fig 13, for the analysis."
    );
    write_csv("fig13_rmsz_ensemble", &hdr_refs, &rows);
}

//! Rank-count scaling of the barotropic solvers on the message-passing
//! runtime — the paper's Fig. 7/8 story, *executed*.
//!
//! Sweeps 4 → 256 simulated MPI ranks over a gx1v6-like 1° grid for
//! {ChronGear, P-CSI} × {diagonal, block-EVP}, running every solve through
//! `pop-ranksim`: each rank is an OS thread with private blocks, halos move
//! as point-to-point messages, and reductions climb a binomial tree whose
//! hops are charged at Yellowstone's calibrated `α_reduce`. The per-rank
//! simulated clocks then decompose into compute / halo / allreduce time on
//! the critical rank:
//!
//! - **ChronGear** pays one tree allreduce per iteration, so its reduction
//!   share grows as `log₂ p` while compute shrinks as `1/p` — the scaling
//!   wall of paper Fig. 2/7.
//! - **P-CSI** reduces only at the periodic convergence check, so its
//!   allreduce count is independent of rank count and its reduction time
//!   stays a sliver of ChronGear's — Fig. 7/8's crossover.
//!
//! Writes `BENCH_ranksim.json` (with provenance) plus a Chrome trace of one
//! mid-size configuration. `--quick` runs a 4-point sweep on a smaller grid
//! for CI smoke.

use pop_bench::args::BenchArgs;
use pop_bench::provenance::Provenance;
use pop_comm::{CommWorld, DistLayout, DistVec};
use pop_core::lanczos::{estimate_bounds, LanczosConfig};
use pop_core::precond::{BlockEvp, Diagonal, Preconditioner};
use pop_core::solvers::SolverConfig;
use pop_grid::Grid;
use pop_obs::ObsSink;
use pop_perfmodel::machine::MachineModel;
use pop_ranksim::{
    solve_on_ranks, write_chrome_trace, LatencyBandwidth, NetworkModel, RankSimConfig, RankWorld,
    SolverKind, SpanKind,
};
use pop_stencil::NinePoint;
use std::fmt::Write as _;
use std::sync::Arc;

struct Row {
    solver: &'static str,
    precond: &'static str,
    ranks: usize,
    iterations: usize,
    max_blocks_per_rank: usize,
    sim_time_s: f64,
    compute_s: f64,
    halo_s: f64,
    allreduce_s: f64,
    allreduces_per_rank: u64,
    halo_bytes_total: u64,
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_string()
    }
}

/// The acceptance facts of the sweep (paper Fig. 7/8), checked over the
/// collected rows: ChronGear's reduction time must grow with rank count
/// while P-CSI's allreduce count stays fixed and its reduce time stays a
/// small fraction of ChronGear's. Returns `Err` with a diagnostic instead
/// of panicking — an empty or partial sweep (empty rank list, a solver
/// erroring out of the sweep) is reported gracefully and the binary exits
/// non-zero.
fn check_crossover(rows: &[Row], preconds: &[&str]) -> Result<Vec<String>, String> {
    let mut summaries = Vec::new();
    for &pname in preconds {
        let series = |solver: &str| -> Vec<&Row> {
            rows.iter()
                .filter(|r| r.solver == solver && r.precond == pname)
                .collect()
        };
        let cg = series("chrongear");
        let csi = series("pcsi");
        let (Some(cg_lo), Some(cg_hi)) = (cg.first(), cg.last()) else {
            return Err(format!(
                "{pname}: no ChronGear rows collected — empty rank sweep or solver failure"
            ));
        };
        let (Some(csi_lo), Some(csi_hi)) = (csi.first(), csi.last()) else {
            return Err(format!(
                "{pname}: no P-CSI rows collected — empty rank sweep or solver failure"
            ));
        };
        if cg_hi.allreduce_s <= cg_lo.allreduce_s * 1.5 {
            return Err(format!(
                "{pname}: ChronGear reduction time must grow with ranks \
                 ({:.3e}s at p={} vs {:.3e}s at p={})",
                cg_lo.allreduce_s, cg_lo.ranks, cg_hi.allreduce_s, cg_hi.ranks
            ));
        }
        if csi_hi.allreduce_s >= cg_hi.allreduce_s / 4.0 {
            return Err(format!(
                "{pname}: P-CSI must avoid most of ChronGear's reduction cost at scale"
            ));
        }
        if !csi
            .iter()
            .all(|r| r.allreduces_per_rank == csi_lo.allreduces_per_rank)
        {
            return Err(format!(
                "{pname}: P-CSI's allreduce count must not depend on rank count"
            ));
        }
        if csi_lo.allreduces_per_rank * 5 > cg_lo.allreduces_per_rank {
            return Err(format!(
                "{pname}: P-CSI must issue far fewer allreduces than ChronGear ({} vs {})",
                csi_lo.allreduces_per_rank, cg_lo.allreduces_per_rank
            ));
        }
        summaries.push(format!(
            "[{pname}] reduce time p={}→{}: chrongear {:.3}ms→{:.3}ms, pcsi {:.3}ms→{:.3}ms",
            cg_lo.ranks,
            cg_hi.ranks,
            cg_lo.allreduce_s * 1e3,
            cg_hi.allreduce_s * 1e3,
            csi_lo.allreduce_s * 1e3,
            csi_hi.allreduce_s * 1e3
        ));
    }
    Ok(summaries)
}

/// Exit with a diagnostic instead of a panic backtrace.
fn fail(msg: &str) -> ! {
    eprintln!("scaling_ranksim: error: {msg}");
    std::process::exit(1);
}

fn main() {
    let quick = BenchArgs::parse().quick;
    let (nx, ny, bx, by, iters, rank_counts): (_, _, _, _, _, &[usize]) = if quick {
        (
            160usize,
            120usize,
            16usize,
            12usize,
            20usize,
            &[4, 8, 16, 32],
        )
    } else {
        (320, 240, 10, 8, 50, &[4, 8, 16, 32, 64, 128, 256])
    };

    let Some(&max_ranks) = rank_counts.last() else {
        fail("rank sweep is empty — nothing to run");
    };
    let g = Grid::gx1_scaled(11, nx, ny);
    let layout = DistLayout::build(&g, bx, by);
    if layout.n_blocks() < max_ranks {
        fail(&format!(
            "grid has {} active blocks; need at least {max_ranks} so no rank idles",
            layout.n_blocks()
        ));
    }
    let serial = CommWorld::serial();
    let op = NinePoint::assemble(&g, &layout, &serial, 2700.0);

    let mut x_true = DistVec::zeros(&layout);
    x_true.fill_with(|i, j| {
        let xf = i as f64 / nx as f64 * std::f64::consts::TAU;
        let yf = j as f64 / ny as f64 * std::f64::consts::PI;
        (3.0 * xf).sin() * yf.sin() + 0.4 * (2.0 * xf).cos() * (4.0 * yf).sin()
    });
    serial.halo_update(&mut x_true);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&serial, &x_true, &mut rhs);
    let x0 = DistVec::zeros(&layout);

    // Fixed-iteration runs (tol = 0 never converges): the sweep compares
    // communication structure, so every configuration must do identical
    // iteration counts at every rank count. The live obs sink collects
    // every solve's telemetry; its metrics land in the BENCH provenance.
    let obs = ObsSink::enabled();
    let cfg = SolverConfig {
        tol: 0.0,
        max_iters: iters,
        check_every: 10,
        obs: obs.clone(),
        ..SolverConfig::default()
    };
    let lanczos = LanczosConfig {
        tol: 0.01,
        max_steps: 300,
        ..Default::default()
    };

    let machine = MachineModel::yellowstone();
    let net = Arc::new(LatencyBandwidth::from_machine(&machine));
    let sim_cfg = RankSimConfig {
        record_trace: true,
        ..RankSimConfig::modeled(&machine)
    };

    let diag = Diagonal::new(&op);
    let evp = BlockEvp::with_defaults(&op);
    let preconds: [(&'static str, &dyn Preconditioner); 2] = [("diag", &diag), ("evp", &evp)];

    let mut rows: Vec<Row> = Vec::new();
    let mut traced = false;
    for (pname, pre) in preconds {
        let (bounds, _) = estimate_bounds(&op, pre, &serial, &lanczos);
        let solvers: [(&'static str, SolverKind); 2] = [
            ("chrongear", SolverKind::ChronGear),
            ("pcsi", SolverKind::Pcsi(bounds)),
        ];
        for (sname, kind) in solvers {
            for &p in rank_counts {
                let world = RankWorld::new(&layout, p, net.clone(), sim_cfg);
                let out = solve_on_ranks(&world, &op, pre, kind, &rhs, &x0, &cfg);
                let st = out.stats();
                assert_eq!(st.iterations, iters, "{sname}+{pname} p={p} ran short");
                assert!(st.final_relative_residual.is_finite());

                // Decompose the critical (slowest) rank's timeline.
                let crit = out
                    .per_rank
                    .iter()
                    .max_by(|a, b| a.clock.total_cmp(&b.clock))
                    .expect("ranks");
                let by_kind = |k: SpanKind| -> f64 {
                    crit.spans
                        .iter()
                        .filter(|s| s.kind == k)
                        .map(|s| s.t1 - s.t0)
                        .sum()
                };
                let halo_bytes_total: u64 = out.per_rank.iter().map(|r| r.stats.halo_bytes).sum();

                // Dump one mid-size ChronGear timeline as a Chrome trace:
                // the per-iteration allreduce bars are the figure.
                if !traced && sname == "chrongear" && pname == "diag" && p >= 16 {
                    let path = std::path::Path::new("BENCH_ranksim_trace.json");
                    write_chrome_trace(&out.per_rank, path).expect("write trace");
                    println!("[wrote {} (p={p} chrongear+diag timeline)]", path.display());
                    traced = true;
                }

                rows.push(Row {
                    solver: sname,
                    precond: pname,
                    ranks: p,
                    iterations: st.iterations,
                    max_blocks_per_rank: world.assignment().max_blocks_per_rank(),
                    sim_time_s: out.sim_time,
                    compute_s: by_kind(SpanKind::Compute),
                    halo_s: by_kind(SpanKind::Halo),
                    allreduce_s: by_kind(SpanKind::Allreduce),
                    allreduces_per_rank: crit.stats.allreduces,
                    halo_bytes_total,
                });
            }
        }
    }

    println!(
        "\n== simulated {}-iteration solves, {nx}x{ny} gx1-like grid, {} blocks, {} machine ==",
        iters,
        layout.n_blocks(),
        machine.name
    );
    println!(
        "{:>10} {:>7} {:>6} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "solver", "precond", "ranks", "sim ms", "compute ms", "halo ms", "reduce ms", "reduces"
    );
    for r in &rows {
        println!(
            "{:>10} {:>7} {:>6} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>9}",
            r.solver,
            r.precond,
            r.ranks,
            r.sim_time_s * 1e3,
            r.compute_s * 1e3,
            r.halo_s * 1e3,
            r.allreduce_s * 1e3,
            r.allreduces_per_rank
        );
    }

    // The acceptance facts, checked so a regression fails loudly (but
    // gracefully): the executed reduction cost grows with rank count under
    // ChronGear (one tree per iteration, each log₂ p deep), while P-CSI's
    // allreduce count stays fixed — its only reductions are the periodic
    // convergence checks, so its reduce time stays a small fraction of
    // ChronGear's no matter how many ranks the tree spans.
    match check_crossover(&rows, &["diag", "evp"]) {
        Ok(summaries) => {
            for s in summaries {
                println!("{s}");
            }
        }
        Err(msg) => fail(&msg),
    }

    let prov = Provenance::collect().with_fault_plan(sim_cfg.faults.describe());
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"scaling_ranksim\",");
    let _ = writeln!(j, "  \"provenance\": {},", prov.json());
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(
        j,
        "  \"grid\": {{\"nx\": {nx}, \"ny\": {ny}, \"bx\": {bx}, \"by\": {by}, \"blocks\": {}}},",
        layout.n_blocks()
    );
    let _ = writeln!(j, "  \"machine\": \"{}\",", machine.name);
    let _ = writeln!(
        j,
        "  \"network\": {{\"model\": \"{}\", \"alpha\": {:e}, \"beta_per_byte\": {:e}, \"alpha_reduce\": {:e}}},",
        net.name(),
        net.alpha,
        net.beta_per_byte,
        net.alpha_reduce
    );
    let _ = writeln!(
        j,
        "  \"compute_per_point\": {:e},",
        sim_cfg.compute_per_point
    );
    let _ = writeln!(j, "  \"iterations_per_solve\": {iters},");
    // Every solve in the sweep fed the same live obs sink; its counters
    // (per-solver/per-phase comm totals, residual histogram, simulated-time
    // spans) ride along in the provenance blob.
    let _ = writeln!(j, "  \"metrics\": {},", obs.metrics_json());
    j.push_str("  \"results\": [\n");
    for (k, r) in rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"solver\": \"{}\", \"precond\": \"{}\", \"ranks\": {}, \"iterations\": {}, \
             \"max_blocks_per_rank\": {}, \"sim_time_s\": {}, \"compute_s\": {}, \"halo_s\": {}, \
             \"allreduce_s\": {}, \"allreduces_per_rank\": {}, \"halo_bytes_total\": {}}}",
            r.solver,
            r.precond,
            r.ranks,
            r.iterations,
            r.max_blocks_per_rank,
            json_f(r.sim_time_s),
            json_f(r.compute_s),
            json_f(r.halo_s),
            json_f(r.allreduce_s),
            r.allreduces_per_rank,
            r.halo_bytes_total
        );
        j.push_str(if k + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");

    let out = "BENCH_ranksim.json";
    std::fs::write(out, &j).expect("write BENCH_ranksim.json");
    println!("\n[wrote {out}]");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(solver: &'static str, ranks: usize, allreduce_s: f64, reduces: u64) -> Row {
        Row {
            solver,
            precond: "diag",
            ranks,
            iterations: 50,
            max_blocks_per_rank: 4,
            sim_time_s: 1.0,
            compute_s: 0.5,
            halo_s: 0.1,
            allreduce_s,
            allreduces_per_rank: reduces,
            halo_bytes_total: 1024,
        }
    }

    /// Regression: an empty sweep used to hit `.first().unwrap()` and panic
    /// with an opaque backtrace; it must now surface a diagnostic `Err` so
    /// `main` can exit non-zero with a real message.
    #[test]
    fn empty_sweep_is_an_error_not_a_panic() {
        let err = check_crossover(&[], &["diag", "evp"]).unwrap_err();
        assert!(err.contains("no ChronGear rows"), "got: {err}");
        // Rows for one precond only: the other must still be reported, not
        // unwrapped past.
        let rows = vec![row("chrongear", 4, 1e-3, 101), row("pcsi", 4, 1e-5, 6)];
        let err = check_crossover(&rows, &["evp"]).unwrap_err();
        assert!(err.contains("evp"), "got: {err}");
    }

    #[test]
    fn crossover_facts_accepted_on_paper_shaped_data() {
        let rows = vec![
            row("chrongear", 4, 1.0e-3, 101),
            row("chrongear", 256, 8.0e-3, 101),
            row("pcsi", 4, 1.0e-5, 6),
            row("pcsi", 256, 1.2e-5, 6),
        ];
        let lines = check_crossover(&rows, &["diag"]).expect("healthy sweep");
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("chrongear"));
    }

    #[test]
    fn flat_chrongear_reduce_time_is_flagged() {
        // ChronGear's reduce time *not* growing with ranks contradicts the
        // log2(p) tree model — the check must say so.
        let rows = vec![
            row("chrongear", 4, 1.0e-3, 101),
            row("chrongear", 256, 1.0e-3, 101),
            row("pcsi", 4, 1.0e-5, 6),
            row("pcsi", 256, 1.0e-5, 6),
        ];
        let err = check_crossover(&rows, &["diag"]).unwrap_err();
        assert!(err.contains("grow with ranks"), "got: {err}");
    }
}

//! Rank-count scaling of the barotropic solvers on the message-passing
//! runtime — the paper's Fig. 7/8 story, *executed*, pushed to 16384 ranks.
//!
//! Sweeps 4 → 16384 simulated MPI ranks over a gx1v6-like 1° grid for
//! {ChronGear, P-CSI} × {diagonal, block-EVP} × every collective algorithm
//! ([`ReduceAlgo`]: binomial, recursive doubling, Rabenseifner, node-aware
//! hierarchical) × {eager, split-phase overlap} halo exchange. Every solve
//! runs through `pop-ranksim` on a node-aware Yellowstone network model
//! (16 ranks per node, cheap intra-node links, calibrated inter-node
//! fabric); the per-rank simulated clocks then decompose into compute /
//! halo / allreduce time on the critical rank:
//!
//! - **ChronGear** pays one allreduce per iteration, so its reduction share
//!   grows with the exchange schedule's depth while compute shrinks as
//!   `1/p` — the scaling wall of paper Fig. 2/7.
//! - **P-CSI** reduces only at the periodic convergence check, so its
//!   allreduce count is independent of rank count — Fig. 7/8's crossover.
//! - **Hierarchical** folds on-node first and crosses the fabric only
//!   `log₂(p/m)` times, so it strictly beats the flat binomial tree at
//!   extreme scale (asserted at every p ≥ 4096).
//! - **Split-phase overlap** hides interior-stencil compute under halo
//!   flight, so P-CSI's per-iteration time strictly drops at every
//!   p ≥ 1024 (asserted).
//!
//! Every configuration is also checked *bitwise* against a shared-memory
//! baseline solve — the exchange schedule and the overlap choreography are
//! timing models, never allowed to move the numbers.
//!
//! Writes `BENCH_ranksim.json` (with provenance, node topology, and
//! per-row collective wire counters) plus a Chrome trace of one mid-size
//! configuration. `--quick`/`--smoke` runs a 4 → 1024 sweep on a smaller
//! grid for CI.

use pop_bench::args::BenchArgs;
use pop_bench::provenance::Provenance;
use pop_comm::{CommWorld, DistLayout, DistVec};
use pop_core::lanczos::{estimate_bounds, LanczosConfig};
use pop_core::precond::{BlockEvp, Diagonal, Preconditioner};
use pop_core::solvers::{SolverConfig, SolverWorkspace};
use pop_grid::Grid;
use pop_obs::ObsSink;
use pop_perfmodel::machine::{MachineModel, NodeTopology};
use pop_ranksim::{
    solve_on_ranks, write_chrome_trace, HierarchicalNet, NetworkModel, RankSimConfig, RankWorld,
    ReduceAlgo, SolverKind, SpanKind,
};
use pop_stencil::NinePoint;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

struct Row {
    solver: &'static str,
    precond: &'static str,
    algo: &'static str,
    overlap: bool,
    ranks: usize,
    iterations: usize,
    max_blocks_per_rank: usize,
    sim_time_s: f64,
    compute_s: f64,
    halo_s: f64,
    allreduce_s: f64,
    allreduces_per_rank: u64,
    /// Collective messages across all ranks (Σ `allreduce_steps`).
    allreduce_steps_total: u64,
    /// Modelled collective payload bytes across all ranks.
    allreduce_wire_bytes_total: u64,
    halo_bytes_total: u64,
}

impl Row {
    fn mode(&self) -> &'static str {
        if self.overlap {
            "overlap"
        } else {
            "eager"
        }
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_string()
    }
}

/// The distinct `(precond, algo, overlap)` series present in the sweep, in
/// first-appearance order.
fn series_keys(rows: &[Row]) -> Vec<(&'static str, &'static str, bool)> {
    let mut keys = Vec::new();
    for r in rows {
        let k = (r.precond, r.algo, r.overlap);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    keys
}

/// The acceptance facts of the sweep (paper Fig. 7/8), checked per
/// `(precond, algorithm, overlap)` series: ChronGear's reduction time must
/// grow with rank count while P-CSI's allreduce count stays fixed and its
/// reduce time stays a small fraction of ChronGear's — whatever exchange
/// schedule carries the collectives. Returns `Err` with a structured
/// diagnostic instead of panicking — an empty or partial sweep (empty rank
/// list, a solver erroring out) is reported gracefully and the binary
/// exits non-zero.
fn check_crossover(rows: &[Row]) -> Result<Vec<String>, String> {
    let keys = series_keys(rows);
    if keys.is_empty() {
        return Err("no rows collected — empty rank sweep or solver failure".to_string());
    }
    let mut summaries = Vec::new();
    for (pname, algo, overlap) in keys {
        let mode = if overlap { "overlap" } else { "eager" };
        let label = format!("{pname}/{algo}/{mode}");
        let series = |solver: &str| -> Vec<&Row> {
            rows.iter()
                .filter(|r| {
                    r.solver == solver
                        && r.precond == pname
                        && r.algo == algo
                        && r.overlap == overlap
                })
                .collect()
        };
        let cg = series("chrongear");
        let csi = series("pcsi");
        let (Some(cg_lo), Some(cg_hi)) = (cg.first(), cg.last()) else {
            return Err(format!(
                "[{label}] no ChronGear rows collected — empty rank sweep or solver failure"
            ));
        };
        let (Some(csi_lo), Some(csi_hi)) = (csi.first(), csi.last()) else {
            return Err(format!(
                "[{label}] no P-CSI rows collected — empty rank sweep or solver failure"
            ));
        };
        if cg_hi.allreduce_s <= cg_lo.allreduce_s * 1.5 {
            return Err(format!(
                "[{label}] ChronGear reduction time must grow with ranks \
                 ({:.3e}s at p={} vs {:.3e}s at p={})",
                cg_lo.allreduce_s, cg_lo.ranks, cg_hi.allreduce_s, cg_hi.ranks
            ));
        }
        if csi_hi.allreduce_s >= cg_hi.allreduce_s / 4.0 {
            return Err(format!(
                "[{label}] P-CSI must avoid most of ChronGear's reduction cost at scale \
                 ({:.3e}s vs {:.3e}s at p={})",
                csi_hi.allreduce_s, cg_hi.allreduce_s, cg_hi.ranks
            ));
        }
        if !csi
            .iter()
            .all(|r| r.allreduces_per_rank == csi_lo.allreduces_per_rank)
        {
            return Err(format!(
                "[{label}] P-CSI's allreduce count must not depend on rank count"
            ));
        }
        if csi_lo.allreduces_per_rank * 5 > cg_lo.allreduces_per_rank {
            return Err(format!(
                "[{label}] P-CSI must issue far fewer allreduces than ChronGear ({} vs {})",
                csi_lo.allreduces_per_rank, cg_lo.allreduces_per_rank
            ));
        }
        summaries.push(format!(
            "[{label}] reduce time p={}→{}: chrongear {:.3}ms→{:.3}ms, pcsi {:.3}ms→{:.3}ms",
            cg_lo.ranks,
            cg_hi.ranks,
            cg_lo.allreduce_s * 1e3,
            cg_hi.allreduce_s * 1e3,
            csi_lo.allreduce_s * 1e3,
            csi_hi.allreduce_s * 1e3
        ));
    }
    Ok(summaries)
}

/// Extreme-scale acceptance: wherever the sweep reaches p ≥ 4096, the
/// hierarchical schedule's reduction time must *strictly* beat the flat
/// binomial tree's for the reduction-bound solver (ChronGear), on every
/// precond/overlap series that ran both algorithms.
fn check_hierarchy_wins(rows: &[Row]) -> Result<Vec<String>, String> {
    let mut summaries = Vec::new();
    let mut compared = false;
    for r in rows {
        if r.solver != "chrongear" || r.algo != "hierarchical" || r.ranks < 4096 {
            continue;
        }
        let Some(bin) = rows.iter().find(|b| {
            b.solver == r.solver
                && b.precond == r.precond
                && b.overlap == r.overlap
                && b.ranks == r.ranks
                && b.algo == "binomial"
        }) else {
            continue;
        };
        compared = true;
        if r.allreduce_s >= bin.allreduce_s {
            return Err(format!(
                "[{}/{}] hierarchical must strictly beat binomial at p={}: \
                 {:.3e}s vs {:.3e}s reduce time",
                r.precond,
                r.mode(),
                r.ranks,
                r.allreduce_s,
                bin.allreduce_s
            ));
        }
        summaries.push(format!(
            "[{}/{}] p={}: hierarchical reduce {:.3}ms vs binomial {:.3}ms ({:.2}x)",
            r.precond,
            r.mode(),
            r.ranks,
            r.allreduce_s * 1e3,
            bin.allreduce_s * 1e3,
            bin.allreduce_s / r.allreduce_s
        ));
    }
    let max_p = rows.iter().map(|r| r.ranks).max().unwrap_or(0);
    if max_p >= 4096 && !compared {
        return Err(format!(
            "sweep reaches p={max_p} but no hierarchical-vs-binomial ChronGear pair was \
             collected at p >= 4096"
        ));
    }
    Ok(summaries)
}

/// Overlap acceptance: wherever the sweep reaches p ≥ 1024, split-phase
/// halo/compute overlap must *strictly* reduce P-CSI's simulated solve
/// time (same precond, same algorithm, same rank count).
fn check_overlap_wins(rows: &[Row]) -> Result<Vec<String>, String> {
    let mut summaries = Vec::new();
    let mut compared = false;
    for r in rows {
        if r.solver != "pcsi" || !r.overlap || r.ranks < 1024 {
            continue;
        }
        let Some(eager) = rows.iter().find(|e| {
            e.solver == r.solver
                && e.precond == r.precond
                && e.algo == r.algo
                && e.ranks == r.ranks
                && !e.overlap
        }) else {
            continue;
        };
        compared = true;
        if r.sim_time_s >= eager.sim_time_s {
            return Err(format!(
                "[{}/{}] split-phase overlap must reduce P-CSI time at p={}: \
                 {:.3e}s overlap vs {:.3e}s eager",
                r.precond, r.algo, r.ranks, r.sim_time_s, eager.sim_time_s
            ));
        }
        summaries.push(format!(
            "[{}/{}] p={}: pcsi {:.3}ms eager → {:.3}ms overlapped (-{:.1}%)",
            r.precond,
            r.algo,
            r.ranks,
            eager.sim_time_s * 1e3,
            r.sim_time_s * 1e3,
            (1.0 - r.sim_time_s / eager.sim_time_s) * 100.0
        ));
    }
    let max_p = rows.iter().map(|r| r.ranks).max().unwrap_or(0);
    if max_p >= 1024 && !compared {
        return Err(format!(
            "sweep reaches p={max_p} but no overlap-vs-eager P-CSI pair was collected \
             at p >= 1024"
        ));
    }
    Ok(summaries)
}

/// Exit with a diagnostic instead of a panic backtrace.
fn fail(msg: &str) -> ! {
    eprintln!("scaling_ranksim: error: {msg}");
    std::process::exit(1);
}

/// The collective schedules under test. The diagonal preconditioner runs
/// the full algorithm × overlap matrix; block-EVP rides with the binomial
/// baseline in both halo modes (the precond changes the numerics, not the
/// exchange pattern — one precond carrying the full matrix is enough).
const ALGOS: [ReduceAlgo; 4] = [
    ReduceAlgo::Binomial,
    ReduceAlgo::RecursiveDoubling,
    ReduceAlgo::Rabenseifner,
    ReduceAlgo::Hierarchical,
];

fn main() {
    let quick = BenchArgs::parse().quick;
    let (nx, ny, bx, by, iters, rank_counts): (_, _, _, _, _, &[usize]) = if quick {
        (320usize, 240usize, 8usize, 6usize, 20usize, &[
            4, 16, 64, 256, 1024,
        ])
    } else {
        (1152, 864, 6, 6, 20, &[4, 16, 64, 256, 1024, 4096, 16384])
    };

    let Some(&max_ranks) = rank_counts.last() else {
        fail("rank sweep is empty — nothing to run");
    };
    let g = Grid::gx1_scaled(11, nx, ny);
    let layout = DistLayout::build(&g, bx, by);
    if layout.n_blocks() < max_ranks {
        fail(&format!(
            "grid has {} active blocks; need at least {max_ranks} so no rank idles",
            layout.n_blocks()
        ));
    }
    let serial = CommWorld::serial();
    let op = NinePoint::assemble(&g, &layout, &serial, 2700.0);

    let mut x_true = DistVec::zeros(&layout);
    x_true.fill_with(|i, j| {
        let xf = i as f64 / nx as f64 * std::f64::consts::TAU;
        let yf = j as f64 / ny as f64 * std::f64::consts::PI;
        (3.0 * xf).sin() * yf.sin() + 0.4 * (2.0 * xf).cos() * (4.0 * yf).sin()
    });
    serial.halo_update(&mut x_true);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&serial, &x_true, &mut rhs);
    let x0 = DistVec::zeros(&layout);

    // Fixed-iteration runs (tol = 0 never converges): the sweep compares
    // communication structure, so every configuration must do identical
    // iteration counts at every rank count. The live obs sink collects
    // every solve's telemetry; its metrics land in the BENCH provenance.
    let obs = ObsSink::enabled();
    let cfg = SolverConfig {
        tol: 0.0,
        max_iters: iters,
        check_every: 10,
        obs: obs.clone(),
        ..SolverConfig::default()
    };
    let lanczos = LanczosConfig {
        tol: 0.01,
        max_steps: 300,
        ..Default::default()
    };

    let machine = MachineModel::yellowstone();
    let topo = NodeTopology::yellowstone();
    let hnet = HierarchicalNet::from_machine(&machine, &topo);
    let net: Arc<dyn NetworkModel> = Arc::new(hnet);
    let base_sim_cfg = RankSimConfig {
        record_trace: true,
        ..RankSimConfig::modeled(&machine)
    };

    let diag = Diagonal::new(&op);
    let evp = BlockEvp::with_defaults(&op);
    let preconds: [(&'static str, &dyn Preconditioner); 2] = [("diag", &diag), ("evp", &evp)];

    let mut rows: Vec<Row> = Vec::new();
    let mut traced = false;
    // Per-(solver, precond) shared-memory baseline: residual bits + the
    // assembled solution, the reference every ranksim combination must
    // reproduce exactly.
    let mut baselines: HashMap<(&'static str, &'static str), (u64, Vec<f64>)> = HashMap::new();

    for (pname, pre) in preconds {
        let (bounds, _) = estimate_bounds(&op, pre, &serial, &lanczos);
        let solvers: [(&'static str, SolverKind); 2] = [
            ("chrongear", SolverKind::ChronGear),
            ("pcsi", SolverKind::Pcsi(bounds)),
        ];
        // The exchange-schedule matrix this precond carries (see ALGOS).
        let algos: &[ReduceAlgo] = if pname == "diag" {
            &ALGOS
        } else {
            &ALGOS[..1]
        };
        for (sname, kind) in solvers {
            let mut x_shared = DistVec::zeros(&layout);
            let mut ws = SolverWorkspace::new();
            let st_shared = kind.solve(&op, pre, &serial, &rhs, &mut x_shared, &cfg, &mut ws);
            baselines.insert(
                (sname, pname),
                (
                    st_shared.final_relative_residual.to_bits(),
                    x_shared.to_global(),
                ),
            );
            for &algo in algos {
                for overlap in [false, true] {
                    for &p in rank_counts {
                        let sim_cfg = base_sim_cfg.with_reduce_algo(algo).with_overlap(overlap);
                        let world = RankWorld::new(&layout, p, net.clone(), sim_cfg);
                        let out = solve_on_ranks(&world, &op, pre, kind, &rhs, &x0, &cfg);
                        let st = out.stats();
                        let label = format!(
                            "{sname}+{pname} algo={} {} p={p}",
                            algo.name(),
                            if overlap { "overlap" } else { "eager" }
                        );
                        if st.iterations != iters {
                            fail(&format!("{label}: ran short ({} iters)", st.iterations));
                        }

                        // Bitwise against shared memory: the schedule and
                        // the overlap choreography are timing models only.
                        let (ref_bits, ref_x) = &baselines[&(sname, pname)];
                        if st.final_relative_residual.to_bits() != *ref_bits {
                            fail(&format!(
                                "{label}: residual diverged bitwise from shared memory \
                                 ({:e} vs {:e})",
                                st.final_relative_residual,
                                f64::from_bits(*ref_bits)
                            ));
                        }
                        let gx = out.x.to_global();
                        if let Some(k) = (0..gx.len())
                            .find(|&k| gx[k].to_bits() != ref_x[k].to_bits())
                        {
                            fail(&format!(
                                "{label}: solution diverged bitwise from shared memory at \
                                 point {k}: {:e} vs {:e}",
                                gx[k], ref_x[k]
                            ));
                        }

                        // Decompose the critical (slowest) rank's timeline.
                        let crit = out
                            .per_rank
                            .iter()
                            .max_by(|a, b| a.clock.total_cmp(&b.clock))
                            .expect("ranks");
                        let by_kind = |k: SpanKind| -> f64 {
                            crit.spans
                                .iter()
                                .filter(|s| s.kind == k)
                                .map(|s| s.t1 - s.t0)
                                .sum()
                        };
                        let halo_bytes_total: u64 =
                            out.per_rank.iter().map(|r| r.stats.halo_bytes).sum();
                        let steps_total: u64 =
                            out.per_rank.iter().map(|r| r.stats.allreduce_steps).sum();
                        let wire_total: u64 = out
                            .per_rank
                            .iter()
                            .map(|r| r.stats.allreduce_bytes_on_wire)
                            .sum();

                        // Dump one mid-size ChronGear timeline as a Chrome
                        // trace: the per-iteration allreduce bars are the
                        // figure.
                        if !traced && sname == "chrongear" && pname == "diag" && p >= 16 {
                            let path = std::path::Path::new("BENCH_ranksim_trace.json");
                            write_chrome_trace(&out.per_rank, path).expect("write trace");
                            println!(
                                "[wrote {} (p={p} chrongear+diag timeline)]",
                                path.display()
                            );
                            traced = true;
                        }

                        // Progress heartbeat on stderr — full sweeps run
                        // for many minutes and stdout is the final table.
                        eprintln!(
                            "[{label}] sim {:.4}s ({} of {} rank counts)",
                            out.sim_time,
                            rank_counts.iter().position(|&q| q == p).map_or(0, |i| i + 1),
                            rank_counts.len()
                        );

                        rows.push(Row {
                            solver: sname,
                            precond: pname,
                            algo: algo.name(),
                            overlap,
                            ranks: p,
                            iterations: st.iterations,
                            max_blocks_per_rank: world.assignment().max_blocks_per_rank(),
                            sim_time_s: out.sim_time,
                            compute_s: by_kind(SpanKind::Compute),
                            halo_s: by_kind(SpanKind::Halo),
                            allreduce_s: by_kind(SpanKind::Allreduce),
                            allreduces_per_rank: crit.stats.allreduces,
                            allreduce_steps_total: steps_total,
                            allreduce_wire_bytes_total: wire_total,
                            halo_bytes_total,
                        });
                    }
                }
            }
        }
    }

    println!(
        "\n== simulated {}-iteration solves, {nx}x{ny} gx1-like grid, {} blocks, {} machine, \
         {} ranks/node ==",
        iters,
        layout.n_blocks(),
        machine.name,
        topo.ranks_per_node
    );
    println!(
        "{:>10} {:>7} {:>18} {:>8} {:>6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>10}",
        "solver",
        "precond",
        "algo",
        "halo",
        "ranks",
        "sim ms",
        "compute ms",
        "halo ms",
        "reduce ms",
        "reduces",
        "steps"
    );
    for r in &rows {
        println!(
            "{:>10} {:>7} {:>18} {:>8} {:>6} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>8} {:>10}",
            r.solver,
            r.precond,
            r.algo,
            r.mode(),
            r.ranks,
            r.sim_time_s * 1e3,
            r.compute_s * 1e3,
            r.halo_s * 1e3,
            r.allreduce_s * 1e3,
            r.allreduces_per_rank,
            r.allreduce_steps_total
        );
    }

    // The acceptance facts, checked so a regression fails loudly (but
    // gracefully): the paper's crossover on every series, the hierarchical
    // schedule's win over the flat tree at extreme scale, and the overlap
    // win for the halo-bound solver.
    match check_crossover(&rows) {
        Ok(summaries) => {
            for s in summaries {
                println!("{s}");
            }
        }
        Err(msg) => fail(&msg),
    }
    match check_hierarchy_wins(&rows) {
        Ok(summaries) => {
            for s in summaries {
                println!("{s}");
            }
        }
        Err(msg) => fail(&msg),
    }
    match check_overlap_wins(&rows) {
        Ok(summaries) => {
            for s in summaries {
                println!("{s}");
            }
        }
        Err(msg) => fail(&msg),
    }

    let prov = Provenance::collect().with_fault_plan(base_sim_cfg.faults.describe());
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"scaling_ranksim\",");
    let _ = writeln!(j, "  \"provenance\": {},", prov.json());
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(
        j,
        "  \"grid\": {{\"nx\": {nx}, \"ny\": {ny}, \"bx\": {bx}, \"by\": {by}, \"blocks\": {}}},",
        layout.n_blocks()
    );
    let _ = writeln!(j, "  \"machine\": \"{}\",", machine.name);
    let _ = writeln!(
        j,
        "  \"network\": {{\"model\": \"{}\", \"ranks_per_node\": {}, \
         \"intra\": {{\"alpha\": {:e}, \"beta_per_byte\": {:e}, \"alpha_reduce\": {:e}}}, \
         \"inter\": {{\"alpha\": {:e}, \"beta_per_byte\": {:e}, \"alpha_reduce\": {:e}}}}},",
        net.name(),
        hnet.ranks_per_node,
        hnet.intra.alpha,
        hnet.intra.beta_per_byte,
        hnet.intra.alpha_reduce,
        hnet.inter.alpha,
        hnet.inter.beta_per_byte,
        hnet.inter.alpha_reduce
    );
    let algo_names: Vec<String> = ALGOS.iter().map(|a| format!("\"{}\"", a.name())).collect();
    let _ = writeln!(j, "  \"reduce_algos\": [{}],", algo_names.join(", "));
    let _ = writeln!(j, "  \"overlap_modes\": [\"eager\", \"overlap\"],");
    let _ = writeln!(
        j,
        "  \"compute_per_point\": {:e},",
        base_sim_cfg.compute_per_point
    );
    let _ = writeln!(j, "  \"iterations_per_solve\": {iters},");
    // Every solve in the sweep fed the same live obs sink; its counters
    // (per-solver/per-phase comm totals, per-algorithm collective wire
    // counters, simulated-time spans) ride along in the provenance blob.
    let _ = writeln!(j, "  \"metrics\": {},", obs.metrics_json());
    j.push_str("  \"results\": [\n");
    for (k, r) in rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"solver\": \"{}\", \"precond\": \"{}\", \"reduce_algo\": \"{}\", \
             \"overlap\": {}, \"ranks\": {}, \"iterations\": {}, \
             \"max_blocks_per_rank\": {}, \"sim_time_s\": {}, \"compute_s\": {}, \"halo_s\": {}, \
             \"allreduce_s\": {}, \"allreduces_per_rank\": {}, \"allreduce_steps_total\": {}, \
             \"allreduce_wire_bytes_total\": {}, \"halo_bytes_total\": {}}}",
            r.solver,
            r.precond,
            r.algo,
            r.overlap,
            r.ranks,
            r.iterations,
            r.max_blocks_per_rank,
            json_f(r.sim_time_s),
            json_f(r.compute_s),
            json_f(r.halo_s),
            json_f(r.allreduce_s),
            r.allreduces_per_rank,
            r.allreduce_steps_total,
            r.allreduce_wire_bytes_total,
            r.halo_bytes_total
        );
        j.push_str(if k + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");

    let out = "BENCH_ranksim.json";
    std::fs::write(out, &j).expect("write BENCH_ranksim.json");
    println!("\n[wrote {out}]");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn row_full(
        solver: &'static str,
        algo: &'static str,
        overlap: bool,
        ranks: usize,
        sim_time_s: f64,
        allreduce_s: f64,
        reduces: u64,
    ) -> Row {
        Row {
            solver,
            precond: "diag",
            algo,
            overlap,
            ranks,
            iterations: 20,
            max_blocks_per_rank: 4,
            sim_time_s,
            compute_s: 0.5,
            halo_s: 0.1,
            allreduce_s,
            allreduces_per_rank: reduces,
            allreduce_steps_total: 64,
            allreduce_wire_bytes_total: 4096,
            halo_bytes_total: 1024,
        }
    }

    fn row(solver: &'static str, ranks: usize, allreduce_s: f64, reduces: u64) -> Row {
        row_full(solver, "binomial", false, ranks, 1.0, allreduce_s, reduces)
    }

    /// Regression: an empty sweep used to hit `.first().unwrap()` and panic
    /// with an opaque backtrace; it must now surface a diagnostic `Err` so
    /// `main` can exit non-zero with a real message.
    #[test]
    fn empty_sweep_is_an_error_not_a_panic() {
        let err = check_crossover(&[]).unwrap_err();
        assert!(err.contains("no rows collected"), "got: {err}");
        // A series with only one solver must be reported, not unwrapped
        // past.
        let rows = vec![row("chrongear", 4, 1e-3, 101)];
        let err = check_crossover(&rows).unwrap_err();
        assert!(err.contains("no P-CSI rows"), "got: {err}");
    }

    #[test]
    fn crossover_facts_accepted_per_series() {
        // Two series (binomial eager, hierarchical eager): each must be
        // checked independently and produce its own summary line.
        let rows = vec![
            row("chrongear", 4, 1.0e-3, 101),
            row("chrongear", 256, 8.0e-3, 101),
            row("pcsi", 4, 1.0e-5, 6),
            row("pcsi", 256, 1.2e-5, 6),
            row_full("chrongear", "hierarchical", false, 4, 1.0, 1.0e-3, 101),
            row_full("chrongear", "hierarchical", false, 256, 1.0, 4.0e-3, 101),
            row_full("pcsi", "hierarchical", false, 4, 1.0, 1.0e-5, 6),
            row_full("pcsi", "hierarchical", false, 256, 1.0, 1.1e-5, 6),
        ];
        let lines = check_crossover(&rows).expect("healthy sweep");
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("diag/binomial/eager"));
        assert!(lines[1].contains("diag/hierarchical/eager"));
    }

    #[test]
    fn flat_chrongear_reduce_time_is_flagged() {
        // ChronGear's reduce time *not* growing with ranks contradicts the
        // tree model — the check must name the offending series.
        let rows = vec![
            row("chrongear", 4, 1.0e-3, 101),
            row("chrongear", 256, 1.0e-3, 101),
            row("pcsi", 4, 1.0e-5, 6),
            row("pcsi", 256, 1.0e-5, 6),
        ];
        let err = check_crossover(&rows).unwrap_err();
        assert!(err.contains("grow with ranks"), "got: {err}");
        assert!(err.contains("diag/binomial/eager"), "got: {err}");
    }

    #[test]
    fn hierarchy_must_win_at_extreme_scale() {
        let healthy = vec![
            row_full("chrongear", "binomial", false, 4096, 1.0, 8.0e-3, 101),
            row_full("chrongear", "hierarchical", false, 4096, 1.0, 3.0e-3, 101),
        ];
        let lines = check_hierarchy_wins(&healthy).expect("hierarchy wins");
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("p=4096"));

        // A loss (or tie) at p >= 4096 is an error naming the scale.
        let tied = vec![
            row_full("chrongear", "binomial", false, 4096, 1.0, 3.0e-3, 101),
            row_full("chrongear", "hierarchical", false, 4096, 1.0, 3.0e-3, 101),
        ];
        let err = check_hierarchy_wins(&tied).unwrap_err();
        assert!(err.contains("strictly beat binomial"), "got: {err}");

        // Reaching extreme scale without the comparison pair is itself an
        // error — the acceptance fact must not silently vanish.
        let missing = vec![row_full("chrongear", "binomial", false, 4096, 1.0, 8.0e-3, 101)];
        let err = check_hierarchy_wins(&missing).unwrap_err();
        assert!(err.contains("no hierarchical-vs-binomial"), "got: {err}");

        // A small sweep has nothing to prove.
        let small = vec![row_full("chrongear", "binomial", false, 256, 1.0, 1.0e-3, 101)];
        assert!(check_hierarchy_wins(&small).expect("small sweep ok").is_empty());
    }

    #[test]
    fn overlap_must_win_at_scale() {
        let healthy = vec![
            row_full("pcsi", "binomial", false, 1024, 2.0e-3, 1.0e-5, 6),
            row_full("pcsi", "binomial", true, 1024, 1.5e-3, 1.0e-5, 6),
        ];
        let lines = check_overlap_wins(&healthy).expect("overlap wins");
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("p=1024"));

        let tied = vec![
            row_full("pcsi", "binomial", false, 1024, 2.0e-3, 1.0e-5, 6),
            row_full("pcsi", "binomial", true, 1024, 2.0e-3, 1.0e-5, 6),
        ];
        let err = check_overlap_wins(&tied).unwrap_err();
        assert!(err.contains("must reduce P-CSI time"), "got: {err}");

        let missing = vec![row_full("pcsi", "binomial", false, 1024, 2.0e-3, 1.0e-5, 6)];
        let err = check_overlap_wins(&missing).unwrap_err();
        assert!(err.contains("no overlap-vs-eager"), "got: {err}");

        let small = vec![
            row_full("pcsi", "binomial", false, 256, 2.0e-3, 1.0e-5, 6),
            row_full("pcsi", "binomial", true, 256, 1.5e-3, 1.0e-5, 6),
        ];
        assert!(check_overlap_wins(&small).expect("small sweep ok").is_empty());
    }
}

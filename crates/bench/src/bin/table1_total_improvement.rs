//! Table 1: percent improvement of the *total* 1° POP execution time for
//! each new solver configuration relative to ChronGear + diagonal.

use pop_bench::*;
use pop_ocean::SolverChoice;
use pop_perfmodel::paper::yellowstone_1 as paper;
use pop_perfmodel::{PopConfig, PopModel};

fn main() {
    let opts = RunOptions::from_args();
    let eg = gx1(&opts);
    let cfg = production_solver_config();
    let wl = Workload::new(&eg);
    println!("Table 1 reproduction: measuring on the 1deg grid...");
    let measured = wl.measure_paper_set(&cfg);
    let model = PopModel::new(PopConfig::gx1_yellowstone());

    let idx_of = |c: SolverChoice| {
        measured
            .iter()
            .position(|m| m.choice == c)
            .expect("measured")
    };
    let baseline = idx_of(SolverChoice::ChronGearDiag);

    let variants = [
        (
            "ChronGear+EVP",
            SolverChoice::ChronGearEvp,
            paper::TABLE1_CG_EVP,
        ),
        (
            "P-CSI+Diagonal",
            SolverChoice::PcsiDiag,
            paper::TABLE1_PCSI_DIAG,
        ),
        ("P-CSI+EVP", SolverChoice::PcsiEvp, paper::TABLE1_PCSI_EVP),
    ];

    let mut rows = Vec::new();
    for (name, choice, paper_vals) in variants {
        let mi = idx_of(choice);
        let mut ours = vec![format!("{name} (ours)")];
        let mut theirs = vec![format!("{name} (paper)")];
        for (k, &p) in paper::CORE_COUNTS.iter().enumerate() {
            let base = model
                .day(p, &measured[baseline].profile(cfg.check_every), opts.seed)
                .total;
            let new = model
                .day(p, &measured[mi].profile(cfg.check_every), opts.seed)
                .total;
            ours.push(format!("{:+.1}", 100.0 * (base - new) / base));
            theirs.push(format!("{:+.1}", paper_vals[k]));
        }
        rows.push(ours);
        rows.push(theirs);
    }

    print_table(
        "percent improvement of total 1deg POP time vs ChronGear+diagonal",
        &["config", "48", "96", "192", "384", "768"],
        &rows,
    );
    println!("paper headline: P-CSI+EVP reaches 16.7% at 768 cores.");
    write_csv(
        "table1_total_improvement",
        &["config", "p48", "p96", "p192", "p384", "p768"],
        &rows,
    );
}

//! Figure 9: with the EVP-preconditioned P-CSI solver, the barotropic mode
//! falls from ~50% of 0.1° POP time (Fig 1) to ~16% at 16,875 cores.

use pop_bench::*;
use pop_ocean::SolverChoice;
use pop_perfmodel::paper::yellowstone_01 as paper;
use pop_perfmodel::{PopConfig, PopModel};

fn main() {
    let opts = RunOptions::from_args();
    let eg = gx01(&opts);
    let cfg = production_solver_config();
    let wl = Workload::new(&eg);
    let measured = wl.measure(SolverChoice::PcsiEvp, &cfg);
    println!(
        "Fig 9 reproduction: P-CSI+EVP, K = {} (measured)",
        measured.stats.iterations
    );

    let model = PopModel::new(PopConfig::gx01_yellowstone());
    let profile = measured.profile(cfg.check_every);
    let mut rows = Vec::new();
    for &p in &paper::CORE_COUNTS {
        let t = model.day(p, &profile, opts.seed);
        rows.push(vec![
            p.to_string(),
            format!("{:.1}", 100.0 * t.barotropic_fraction),
            format!("{:.1}", 100.0 * t.baroclinic / t.total),
            fmt_s(t.total),
        ]);
    }
    print_table(
        "barotropic share with P-CSI + EVP (modelled)",
        &["cores", "barotropic %", "baroclinic %", "total s/day"],
        &rows,
    );
    println!(
        "paper: ~{:.0}% at 16,875 cores (vs ~{:.0}% for ChronGear+diagonal)",
        100.0 * paper::PCSI_EVP_FRACTION,
        100.0 * paper::CG_FRACTION
    );
    write_csv(
        "fig09_pcsi_fraction",
        &[
            "cores",
            "barotropic_pct",
            "baroclinic_pct",
            "total_s_per_day",
        ],
        &rows,
    );
}

//! Figure 7: execution time of the barotropic mode in 1° POP for one
//! simulated day, 48–768 cores, all four solver configurations. P-CSI
//! outperforms ChronGear at every core count; EVP helps both.

use pop_bench::*;
use pop_perfmodel::paper::yellowstone_1 as paper;
use pop_perfmodel::{PopConfig, PopModel};

fn main() {
    let opts = RunOptions::from_args();
    let eg = gx1(&opts);
    let cfg = production_solver_config();
    let wl = Workload::new(&eg);
    println!("Fig 7 reproduction: measuring the four configurations on the 1deg grid...");
    let measured = wl.measure_paper_set(&cfg);
    for m in &measured {
        println!("  {}: K = {}", m.choice.label(), m.stats.iterations);
    }

    let model = PopModel::new(PopConfig::gx1_yellowstone());
    let mut rows = Vec::new();
    for &p in &paper::CORE_COUNTS {
        let mut row = vec![p.to_string()];
        for m in &measured {
            let t = model.day(p, &m.profile(cfg.check_every), opts.seed);
            row.push(fmt_s(t.barotropic.total()));
        }
        rows.push(row);
    }
    print_table(
        "1deg barotropic seconds per simulated day (modelled)",
        &["cores", "cg+diag", "cg+evp", "pcsi+diag", "pcsi+evp"],
        &rows,
    );
    println!(
        "paper @768 cores: cg+diag {:.2}s, pcsi+diag {:.2}s (1.4x), pcsi+evp {:.2}s (1.6x)",
        paper::CG_DIAG_DAY_S_768,
        paper::PCSI_DIAG_DAY_S_768,
        paper::PCSI_EVP_DAY_S_768
    );
    let last = rows.last().expect("rows");
    let cg: f64 = last[1].parse().expect("num");
    let pcsi_evp: f64 = last[4].parse().expect("num");
    println!(
        "ours  @768 cores: cg+diag {}s, pcsi+evp {}s ({:.1}x)",
        last[1],
        last[4],
        cg / pcsi_evp
    );
    write_csv(
        "fig07_lowres_scaling",
        &[
            "cores",
            "cg_diag_s",
            "cg_evp_s",
            "pcsi_diag_s",
            "pcsi_evp_s",
        ],
        &rows,
    );
}

//! Figure 2: global-reduction vs halo-update time of the ChronGear solver in
//! 0.1° POP for one simulated day. The reduction component grows with core
//! count and dominates beyond a couple thousand cores; halo time shrinks.

use pop_bench::*;
use pop_ocean::SolverChoice;
use pop_perfmodel::cost::day_cost;
use pop_perfmodel::paper::yellowstone_01 as paper;
use pop_perfmodel::MachineModel;

fn main() {
    let opts = RunOptions::from_args();
    let eg = gx01(&opts);
    let cfg = production_solver_config();
    let wl = Workload::new(&eg);
    let m = wl.measure(SolverChoice::ChronGearDiag, &cfg);
    println!(
        "Fig 2 reproduction: ChronGear comm components, K = {} (measured)",
        m.stats.iterations
    );
    println!(
        "measured comm events for one solve: {} reductions, {} halo updates, {:.1} MB halo traffic",
        m.stats.comm.allreduces,
        m.stats.comm.halo_updates,
        m.stats.comm.halo_bytes as f64 / 1e6
    );

    let machine = MachineModel::yellowstone();
    let profile = m.profile(cfg.check_every);
    let n_global = 3600.0 * 2400.0;
    let mut rows = Vec::new();
    for &p in &paper::CORE_COUNTS {
        let day = day_cost(&machine, &profile, n_global, p, paper::DT_COUNT, 1, 0);
        rows.push(vec![
            p.to_string(),
            fmt_s(day.reduction),
            fmt_s(day.halo),
            fmt_s(day.compute),
        ]);
    }
    print_table(
        "ChronGear+diagonal component seconds per simulated day (modelled)",
        &["cores", "global reduction", "halo update", "computation"],
        &rows,
    );
    println!("paper shape: reduction grows and dominates past ~2,000 cores; halo shrinks.");
    // Sanity statement for the reader:
    let r_lo: f64 = rows[0][1].parse().expect("number");
    let r_hi: f64 = rows.last().expect("rows")[1].parse().expect("number");
    println!(
        "reduction time {}s @ {} cores -> {}s @ {} cores ({}x)",
        r_lo,
        paper::CORE_COUNTS[0],
        r_hi,
        paper::CORE_COUNTS.last().expect("cores"),
        fmt_s(r_hi / r_lo)
    );
    write_csv(
        "fig02_comm_breakdown",
        &["cores", "reduction_s", "halo_s", "compute_s"],
        &rows,
    );
}

//! Figure 4: the nine-diagonal *block* structure of the coefficient matrix
//! when the domain is reordered block-by-block. Each block row couples to at
//! most nine block columns: itself, its E/W/N/S neighbours (thin bands), and
//! its four diagonal neighbours (single corner entries).

use pop_bench::*;
use pop_comm::DistLayout;
use pop_grid::{Decomposition, Grid};
use pop_stencil::NinePoint;

#[allow(clippy::needless_range_loop)] // dense block-count matrix walk
fn main() {
    let _opts = RunOptions::from_args();
    // A small all-ocean basin split 3×3, as in the paper's illustration.
    let n = 18;
    let g = Grid::idealized_basin(n, n, 1000.0, 5.0e4);
    let d = Decomposition::new(&g, n / 3, n / 3);
    let world = pop_comm::CommWorld::serial();
    let layout = DistLayout::new(&g, d, 2);
    let op = NinePoint::assemble(&g, &layout, &world, 1800.0);

    // Count couplings between every pair of blocks by walking each ocean
    // point's nine stencil legs.
    let nb = layout.decomp.blocks.len();
    let mut counts = vec![vec![0usize; nb]; nb];
    let block_of = |gi: isize, gj: isize| -> Option<usize> {
        if gi < 0 || gj < 0 || gi >= g.nx as isize || gj >= g.ny as isize {
            return None;
        }
        let bi = gi as usize / layout.decomp.block_nx;
        let bj = gj as usize / layout.decomp.block_ny;
        layout.decomp.block_at[bj * layout.decomp.mx + bi]
    };
    for (b, info) in layout.decomp.blocks.iter().enumerate() {
        for j in 0..info.ny as isize {
            for i in 0..info.nx as isize {
                if layout.masks[b][j as usize * info.nx + i as usize] == 0 {
                    continue;
                }
                let (gi, gj) = (info.i0 as isize + i, info.j0 as isize + j);
                let legs = [
                    (0, 0, op.a0.blocks[b].at(i, j)),
                    (0, 1, op.an.blocks[b].at(i, j)),
                    (0, -1, op.an.blocks[b].at(i, j - 1)),
                    (1, 0, op.ae.blocks[b].at(i, j)),
                    (-1, 0, op.ae.blocks[b].at(i - 1, j)),
                    (1, 1, op.ane.blocks[b].at(i, j)),
                    (1, -1, op.ane.blocks[b].at(i, j - 1)),
                    (-1, 1, op.ane.blocks[b].at(i - 1, j)),
                    (-1, -1, op.ane.blocks[b].at(i - 1, j - 1)),
                ];
                for (di, dj, c) in legs {
                    if c != 0.0 {
                        if let Some(ob) = block_of(gi + di, gj + dj) {
                            counts[b][ob] += 1;
                        }
                    }
                }
            }
        }
    }

    println!("Fig 4 reproduction: couplings between 3x3 domain blocks");
    println!("(row = block, columns = blocks it couples to; B=dense in-block,");
    println!(" b=boundary band to an axis neighbour, c=corner entry, .=none)\n");
    print!("     ");
    for c in 0..nb {
        print!("B{c}   ");
    }
    println!();
    let mut rows = Vec::new();
    for r in 0..nb {
        print!("B{r}   ");
        let mut row = vec![format!("B{r}")];
        for c in 0..nb {
            let v = counts[r][c];
            let sym = if r == c {
                "B"
            } else if v == 0 {
                "."
            } else if v <= 2 {
                "c" // corner coupling: a single stencil leg (×2 symmetric)
            } else {
                "b" // boundary band
            };
            print!("{sym:<5}");
            row.push(v.to_string());
        }
        println!();
        rows.push(row);
    }

    // Structural assertions matching the paper's description.
    let mut max_offdiag_blocks = 0;
    for r in 0..nb {
        let nonzero = (0..nb).filter(|&c| counts[r][c] > 0).count();
        max_offdiag_blocks = max_offdiag_blocks.max(nonzero);
    }
    println!(
        "\neach block row couples to at most {max_offdiag_blocks} blocks (paper: nine-diagonal block matrix)"
    );
    assert!(max_offdiag_blocks <= 9);
    write_csv(
        "fig04_sparsity",
        &[
            "block", "c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8",
        ],
        &rows,
    );
}

//! Figure 8: 0.1° POP on Yellowstone — barotropic seconds per simulated day
//! (left) and core simulation rate in simulated years per day (right),
//! 470–16,875 cores. The paper's headline: P-CSI+EVP speeds the barotropic
//! mode up 5.2× at 16,875 cores, lifting POP from 6.2 to 10.5 SYPD.

use pop_bench::*;
use pop_perfmodel::paper::yellowstone_01 as paper;
use pop_perfmodel::{PopConfig, PopModel};

fn main() {
    let opts = RunOptions::from_args();
    let eg = gx01(&opts);
    let cfg = production_solver_config();
    let wl = Workload::new(&eg);
    println!(
        "Fig 8 reproduction: measuring the four configurations on {}x{}...",
        eg.grid.nx, eg.grid.ny
    );
    let measured = wl.measure_paper_set(&cfg);
    for m in &measured {
        println!("  {}: K = {}", m.choice.label(), m.stats.iterations);
    }

    let model = PopModel::new(PopConfig::gx01_yellowstone());
    let mut time_rows = Vec::new();
    let mut rate_rows = Vec::new();
    for &p in &paper::CORE_COUNTS {
        let mut trow = vec![p.to_string()];
        let mut rrow = vec![p.to_string()];
        for m in &measured {
            let t = model.day(p, &m.profile(cfg.check_every), opts.seed);
            trow.push(fmt_s(t.barotropic.total()));
            rrow.push(format!("{:.1}", t.sypd));
        }
        time_rows.push(trow);
        rate_rows.push(rrow);
    }
    print_table(
        "0.1deg barotropic seconds per simulated day (modelled, Yellowstone)",
        &["cores", "cg+diag", "cg+evp", "pcsi+diag", "pcsi+evp"],
        &time_rows,
    );
    print_table(
        "0.1deg core simulation rate, simulated years per day",
        &["cores", "cg+diag", "cg+evp", "pcsi+diag", "pcsi+evp"],
        &rate_rows,
    );

    let last = time_rows.last().expect("rows");
    let cg: f64 = last[1].parse().expect("num");
    let pcsi_diag: f64 = last[3].parse().expect("num");
    let pcsi_evp: f64 = last[4].parse().expect("num");
    let rates = rate_rows.last().expect("rows");
    println!("\nheadline comparison at 16,875 cores:");
    println!(
        "  barotropic: ours cg {}s -> pcsi+diag {}s ({:.1}x) -> pcsi+evp {}s ({:.1}x)",
        last[1],
        last[3],
        cg / pcsi_diag,
        last[4],
        cg / pcsi_evp
    );
    println!(
        "  paper:      cg {}s -> pcsi+diag {}s (4.3x) -> pcsi+evp ({}x)",
        paper::CG_DIAG_DAY_S,
        paper::PCSI_DIAG_DAY_S,
        paper::PCSI_EVP_SPEEDUP
    );
    println!(
        "  SYPD: ours {} -> {} | paper {} -> {}",
        rates[1],
        rates[4],
        paper::CG_SYPD,
        paper::PCSI_EVP_SYPD
    );
    write_csv(
        "fig08_highres_yellowstone_time",
        &[
            "cores",
            "cg_diag_s",
            "cg_evp_s",
            "pcsi_diag_s",
            "pcsi_evp_s",
        ],
        &time_rows,
    );
    write_csv(
        "fig08_highres_yellowstone_sypd",
        &["cores", "cg_diag", "cg_evp", "pcsi_diag", "pcsi_evp"],
        &rate_rows,
    );
}

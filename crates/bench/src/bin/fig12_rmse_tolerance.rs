//! Figure 12: the *failure* of the plain RMSE test. Runs of the mini ocean
//! with solver tolerances from 1e-10 to 1e-16 are compared (RMSE of monthly
//! temperature) against the strictest run. Once chaotic divergence has
//! saturated, the RMSE is set by the model's natural variability, not by
//! the solver error — so the loose tolerances are *not* distinguishable,
//! and can even score smallest in some months, exactly the paper's finding.
//!
//! Chaotic saturation takes real simulated time; the default settings run
//! tens of thousands of steps and take on the order of 15–25 minutes.
//! `--quick` runs a shorter horizon (pre-saturation: RMSE then still orders
//! by tolerance — printed for contrast, and a useful negative control).

use pop_bench::*;
use pop_comm::CommWorld;
use pop_grid::Grid;
use pop_ocean::{MiniPopConfig, SolverChoice};
use pop_perfmodel::paper::verification as paper;
use pop_verif::{rmse, EnsembleConfig, VerificationLab};

fn main() {
    let opts = RunOptions::from_args();
    // --full here means "the longer saturated horizon" is the default; the
    // quick mode is selected by *not* reaching saturation settings.
    let quick = !opts.full;
    let grid = Grid::idealized_basin(64, 48, 500.0, 2.0e4);
    let mut base = MiniPopConfig::eddying_for(&grid);
    base.nlev = 3;
    base.solver = SolverChoice::ChronGearDiag;

    let (months, steps_per_month, spinup, tolerances): (usize, usize, usize, Vec<f64>) = if quick {
        (8, 600, 2000, vec![1e-10, 1e-11, 1e-13, 1e-16])
    } else {
        (12, 2500, 4000, paper::TOLERANCES.to_vec())
    };
    println!(
        "Fig 12 reproduction: tolerance sweep, {months} months x {steps_per_month} steps{}",
        if quick {
            " (QUICK: pre-saturation horizon; pass --full for the paper-shaped result)"
        } else {
            ""
        }
    );

    let cfg = EnsembleConfig {
        members: 0, // unused here
        perturbation: paper::PERTURBATION,
        months,
        steps_per_month,
        spinup_steps: spinup,
    };
    let world = CommWorld::serial();
    let lab = VerificationLab::new(grid, base, cfg, &world);

    // Reference: the strictest tolerance.
    let strict = *tolerances
        .iter()
        .min_by(|a, b| a.partial_cmp(b).expect("finite"))
        .expect("tolerances");
    println!("running reference at tol {strict:e}...");
    let reference = lab.run_trajectory(&world, None, SolverChoice::ChronGearDiag, strict);

    let mut rows = Vec::new();
    let mut table: Vec<(f64, Vec<f64>)> = Vec::new();
    for &tol in &tolerances {
        if tol == strict {
            continue;
        }
        println!("running candidate at tol {tol:e}...");
        let cand = lab.run_trajectory(&world, None, SolverChoice::ChronGearDiag, tol);
        let series: Vec<f64> = cand
            .iter()
            .zip(&reference)
            .map(|(c, r)| rmse(c, r))
            .collect();
        let mut row = vec![format!("{tol:.0e}")];
        row.extend(series.iter().map(|v| format!("{v:.2e}")));
        rows.push(row);
        table.push((tol, series));
    }

    let mut headers: Vec<String> = vec!["tolerance".to_string()];
    headers.extend((1..=months).map(|m| format!("m{m}")));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        &format!("monthly temperature RMSE vs the tol={strict:.0e} reference"),
        &hdr_refs,
        &rows,
    );

    // The paper's observation, quantified: in the final month, is the RMSE
    // ordering still the tolerance ordering? After saturation it is not.
    let last_month = months - 1;
    let mut final_rmse: Vec<(f64, f64)> =
        table.iter().map(|(tol, s)| (*tol, s[last_month])).collect();
    final_rmse.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let ordered_by_tol = final_rmse.windows(2).all(|w| w[0].1 <= w[1].1);
    let spread = final_rmse
        .iter()
        .map(|x| x.1)
        .fold(f64::NEG_INFINITY, f64::max)
        / final_rmse
            .iter()
            .map(|x| x.1)
            .fold(f64::INFINITY, f64::min)
            .max(1e-300);
    println!(
        "\nfinal-month RMSE max/min ratio across tolerances: {spread:.1} \
         (paper: O(1) — indistinguishable)"
    );
    println!(
        "final-month RMSE {} by tolerance{}",
        if ordered_by_tol {
            "IS ordered"
        } else {
            "is NOT ordered"
        },
        if quick {
            " — expected pre-saturation; run with --full"
        } else {
            " (paper: not ordered; even 1e-10 is sometimes smallest)"
        }
    );
    write_csv("fig12_rmse_tolerance", &hdr_refs, &rows);
}

//! Per-iteration solver timings, fused vs unfused, as machine-readable JSON.
//!
//! Times the ChronGear and P-CSI inner loops (diagonal and block-EVP
//! preconditioning, serial and threaded backends) over a fixed iteration
//! count, for both the fused block-sweep path (`LinearSolver::solve_ws`)
//! and the pre-fusion whole-vector baseline (`solve_unfused`). Writes
//! `BENCH_solvers.json` in the working directory — run from the repo root —
//! so perf trajectories can be tracked across commits.
//!
//! `--quick` shrinks the grid and sample counts for CI smoke runs.

use pop_bench::args::BenchArgs;
use pop_bench::provenance::Provenance;
use pop_comm::{CommWorld, DistLayout, DistVec};
use pop_core::fingerprint::operator_fingerprint;
use pop_core::lanczos::{estimate_bounds, LanczosConfig};
use pop_core::precond::{BlockEvp, BlockMg, Diagonal, Preconditioner};
use pop_core::selector::{PrecondSelector, Selection, SelectorConfig};
use pop_core::setup::PrecondSpec;
use pop_core::solvers::{
    BatchCommSolver, BatchWorkspace, ChronGear, LinearSolver, Pcsi, SolveStats, SolverConfig,
    SolverWorkspace,
};
use pop_grid::Grid;
use pop_obs::{ObsSink, SolveHistory};
use pop_stencil::NinePoint;
use std::fmt::Write as _;
use std::time::Instant;

enum Solver {
    Pcsi(Pcsi),
    ChronGear(ChronGear),
}

impl Solver {
    #[allow(clippy::too_many_arguments)]
    fn solve_fused(
        &self,
        op: &NinePoint,
        pre: &dyn Preconditioner,
        world: &CommWorld,
        b: &DistVec,
        x: &mut DistVec,
        cfg: &SolverConfig,
        ws: &mut SolverWorkspace,
    ) -> SolveStats {
        match self {
            Solver::Pcsi(s) => s.solve_ws(op, pre, world, b, x, cfg, ws),
            Solver::ChronGear(s) => s.solve_ws(op, pre, world, b, x, cfg, ws),
        }
    }

    fn solve_unfused(
        &self,
        op: &NinePoint,
        pre: &dyn Preconditioner,
        world: &CommWorld,
        b: &DistVec,
        x: &mut DistVec,
        cfg: &SolverConfig,
    ) -> SolveStats {
        match self {
            Solver::Pcsi(s) => s.solve_unfused(op, pre, world, b, x, cfg),
            Solver::ChronGear(s) => s.solve_unfused(op, pre, world, b, x, cfg),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_batched(
        &self,
        op: &NinePoint,
        pre: &dyn Preconditioner,
        world: &CommWorld,
        bs: &[&DistVec],
        xs: &mut [&mut DistVec],
        cfg: &SolverConfig,
        ws: &mut BatchWorkspace<CommWorld>,
    ) -> Vec<SolveStats> {
        match self {
            Solver::Pcsi(s) => s.solve_batch_comm(op, pre, world, bs, xs, cfg, ws),
            Solver::ChronGear(s) => s.solve_batch_comm(op, pre, world, bs, xs, cfg, ws),
        }
    }
}

/// An independent right-hand side for lane `lane` of the multi-RHS axis:
/// the base field with seeded multiplicative noise, so batched lanes do
/// distinct work (with `tol = 0` the iteration count is fixed either way).
fn perturbed_rhs(rhs: &DistVec, lane: u64, seed: u64) -> DistVec {
    let mut b = rhs.clone();
    let mut state = seed ^ lane.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for blk in &mut b.blocks {
        for j in 0..blk.ny {
            for v in blk.interior_row_mut(j) {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let n = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                if *v != 0.0 {
                    *v *= 1.0 + 0.25 * n;
                }
            }
        }
    }
    b
}

struct BatchRow {
    solver: &'static str,
    precond: &'static str,
    backend: &'static str,
    rhs_batch: usize,
    per_solve_us_median: f64,
    per_solve_us_min: f64,
    allreduces_per_iter: f64,
    samples_us: Vec<f64>,
}

struct Row {
    solver: &'static str,
    precond: &'static str,
    backend: &'static str,
    path: &'static str,
    per_iter_us_median: f64,
    per_iter_us_min: f64,
    samples_us: Vec<f64>,
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let prov = Provenance::collect();
    prov.warn_if_single_threaded("bench_solvers_json");
    let args = BenchArgs::parse();
    let quick = args.quick;
    let (nx, ny, bx, by, iters, samples) = if quick {
        (180usize, 120usize, 36usize, 24usize, 30usize, 3usize)
    } else {
        (360, 240, 36, 24, 60, 9)
    };

    let g = Grid::gx01_scaled(7, nx, ny);
    let layout = DistLayout::build(&g, bx, by);
    let serial = CommWorld::serial();
    let op = NinePoint::assemble(&g, &layout, &serial, 345.6);
    let mut x_true = DistVec::zeros(&layout);
    x_true.fill_with(|i, j| {
        let xf = i as f64 / nx as f64 * std::f64::consts::TAU;
        let yf = j as f64 / ny as f64 * std::f64::consts::PI;
        (2.0 * xf).sin() * yf.sin() + 0.3 * (5.0 * xf).cos() * (3.0 * yf).sin()
    });
    serial.halo_update(&mut x_true);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&serial, &x_true, &mut rhs);

    // Fixed-iteration timing: tol = 0 never converges, so every solve runs
    // exactly `iters` iterations and per-iteration time is elapsed / iters.
    // The live obs sink accumulates every timed solve's counters; they are
    // embedded in the BENCH artifact so a perf regression comes with the
    // telemetry (allreduce counts per phase, residual histogram) attached.
    let obs = ObsSink::enabled();
    let cfg = SolverConfig {
        tol: 0.0,
        max_iters: iters,
        check_every: 10,
        obs: obs.clone(),
        ..SolverConfig::default()
    };
    let lanczos = LanczosConfig {
        tol: 0.01,
        max_steps: 300,
        ..Default::default()
    };

    let diag = Diagonal::new(&op);
    let evp = BlockEvp::with_defaults(&op);
    let mg = BlockMg::with_defaults(&op);
    // MG hierarchy geometry (per-level extents and active points) goes into
    // the obs registry, so the BENCH artifact records what the V-cycle
    // actually coarsened to on this grid.
    obs.record_mg_levels(&mg.level_geometry());
    let preconds: [(&'static str, &dyn Preconditioner); 3] =
        [("diag", &diag), ("evp", &evp), ("mg", &mg)];
    let threaded = CommWorld::threaded();
    let backends: [(&'static str, &CommWorld); 2] = [("serial", &serial), ("threaded", &threaded)];

    let mut rows: Vec<Row> = Vec::new();
    for (pname, pre) in preconds {
        let (bounds, _) = estimate_bounds(&op, pre, &serial, &lanczos);
        let solvers: [(&'static str, Solver); 2] = [
            ("chrongear", Solver::ChronGear(ChronGear)),
            ("pcsi", Solver::Pcsi(Pcsi::new(bounds))),
        ];
        for (sname, solver) in &solvers {
            for (bname, world) in backends {
                let mut ws = SolverWorkspace::new();
                // Warm-up solves: populate the workspace (fused) and fault
                // in every page before timing starts.
                for path in ["fused", "unfused"] {
                    let mut x = DistVec::zeros(&layout);
                    let st = if path == "fused" {
                        solver.solve_fused(&op, pre, world, &rhs, &mut x, &cfg, &mut ws)
                    } else {
                        solver.solve_unfused(&op, pre, world, &rhs, &mut x, &cfg)
                    };
                    assert_eq!(st.iterations, iters, "{sname}+{pname} ran short");
                    assert!(st.final_relative_residual.is_finite());
                }

                // Interleave fused/unfused samples pairwise, so slow system
                // drift on a shared machine hits both paths equally.
                let mut fused_us = Vec::with_capacity(samples);
                let mut unfused_us = Vec::with_capacity(samples);
                for _ in 0..samples {
                    for path in ["fused", "unfused"] {
                        let mut x = DistVec::zeros(&layout);
                        let t = Instant::now();
                        let st = if path == "fused" {
                            solver.solve_fused(&op, pre, world, &rhs, &mut x, &cfg, &mut ws)
                        } else {
                            solver.solve_unfused(&op, pre, world, &rhs, &mut x, &cfg)
                        };
                        let el = t.elapsed().as_secs_f64();
                        assert_eq!(st.iterations, iters);
                        let us = el * 1e6 / iters as f64;
                        if path == "fused" {
                            fused_us.push(us);
                        } else {
                            unfused_us.push(us);
                        }
                    }
                }
                for (path, samples_us) in [("fused", fused_us), ("unfused", unfused_us)] {
                    let mut sorted = samples_us.clone();
                    sorted.sort_by(f64::total_cmp);
                    rows.push(Row {
                        solver: sname,
                        precond: pname,
                        backend: bname,
                        path,
                        per_iter_us_median: sorted[sorted.len() / 2],
                        per_iter_us_min: sorted[0],
                        samples_us,
                    });
                }
            }
        }
    }

    // Fused-over-unfused speedups per configuration. The headline statistic
    // is the median of *paired* ratios: sample k of the fused path ran
    // back-to-back with sample k of the unfused path, so slow machine drift
    // cancels inside each ratio instead of skewing the two medians apart.
    struct Speedup {
        solver: &'static str,
        precond: &'static str,
        backend: &'static str,
        paired_median: f64,
        min: f64,
    }
    let mut speedups: Vec<Speedup> = Vec::new();
    for r in rows.iter().filter(|r| r.path == "fused") {
        if let Some(u) = rows.iter().find(|u| {
            u.path == "unfused"
                && u.solver == r.solver
                && u.precond == r.precond
                && u.backend == r.backend
        }) {
            let mut ratios: Vec<f64> = r
                .samples_us
                .iter()
                .zip(&u.samples_us)
                .map(|(&f, &uf)| uf / f)
                .collect();
            ratios.sort_by(f64::total_cmp);
            speedups.push(Speedup {
                solver: r.solver,
                precond: r.precond,
                backend: r.backend,
                paired_median: ratios[ratios.len() / 2],
                min: u.per_iter_us_min / r.per_iter_us_min,
            });
        }
    }

    // ---- batched multi-RHS axis (rhs_batch ∈ {1, 4, 16}) ------------------
    //
    // rhs_batch = 1 times the plain single-RHS fused solve; wider batches
    // run the k-RHS engine, whose SIMD lanes amortise operator coefficients
    // and EVP influence matrices across right-hand sides and carry all k
    // residuals in each reduction. Per-solve time is elapsed / k — the
    // amortised cost of one RHS. With `tol = 0` every lane runs exactly
    // `iters` iterations, so allreduce counts are deterministic and the
    // batched engine must match the single-RHS solve exactly (flat in k).
    let batch_ks: [usize; 3] = [1, 4, 16];
    let max_k = *batch_ks.iter().max().expect("non-empty");
    let batch_bs: Vec<DistVec> = (0..max_k)
        .map(|l| perturbed_rhs(&rhs, l as u64, args.seed))
        .collect();
    let mut batch_rows: Vec<BatchRow> = Vec::new();
    for (pname, pre) in preconds {
        let (bounds, _) = estimate_bounds(&op, pre, &serial, &lanczos);
        let solvers: [(&'static str, Solver); 2] = [
            ("chrongear", Solver::ChronGear(ChronGear)),
            ("pcsi", Solver::Pcsi(Pcsi::new(bounds))),
        ];
        for (sname, solver) in &solvers {
            for (bname, world) in backends {
                let mut ws = SolverWorkspace::new();
                let mut bws = BatchWorkspace::new();
                let mut single_allreduces = None;
                for &k in &batch_ks {
                    let mut run = |timed: bool| -> (f64, u64) {
                        let bs_ref: Vec<&DistVec> = batch_bs[..k].iter().collect();
                        let mut xs_own: Vec<DistVec> =
                            (0..k).map(|_| DistVec::zeros(&layout)).collect();
                        let t = Instant::now();
                        let allreduces = if k == 1 {
                            let st = solver.solve_fused(
                                &op,
                                pre,
                                world,
                                bs_ref[0],
                                &mut xs_own[0],
                                &cfg,
                                &mut ws,
                            );
                            assert_eq!(st.iterations, iters, "{sname}+{pname} ran short");
                            st.comm.allreduces
                        } else {
                            let mut xs_ref: Vec<&mut DistVec> = xs_own.iter_mut().collect();
                            let stats = solver.solve_batched(
                                &op,
                                pre,
                                world,
                                &bs_ref,
                                &mut xs_ref,
                                &cfg,
                                &mut bws,
                            );
                            assert!(
                                stats.iter().all(|st| st.iterations == iters),
                                "{sname}+{pname} batch ran short"
                            );
                            stats[0].comm.allreduces
                        };
                        let el = t.elapsed().as_secs_f64();
                        (if timed { el * 1e6 / k as f64 } else { 0.0 }, allreduces)
                    };
                    // Warm-up: populate the workspaces outside the timings
                    // and pin the allreduce accounting.
                    let (_, allreduces) = run(false);
                    match single_allreduces {
                        None => single_allreduces = Some(allreduces),
                        Some(base) => assert_eq!(
                            allreduces, base,
                            "{sname}+{pname}+{bname}: allreduce count must stay flat in k \
                             (rhs_batch={k}: {allreduces} vs single-RHS {base})"
                        ),
                    }
                    let mut samples_us = Vec::with_capacity(samples);
                    for _ in 0..samples {
                        samples_us.push(run(true).0);
                    }
                    let mut sorted = samples_us.clone();
                    sorted.sort_by(f64::total_cmp);
                    batch_rows.push(BatchRow {
                        solver: sname,
                        precond: pname,
                        backend: bname,
                        rhs_batch: k,
                        per_solve_us_median: sorted[sorted.len() / 2],
                        per_solve_us_min: sorted[0],
                        allreduces_per_iter: allreduces as f64 / iters as f64,
                        samples_us,
                    });
                }
            }
        }
    }

    // Per-solve scaling vs the single-RHS reference of the same config.
    struct BatchScaling {
        solver: &'static str,
        precond: &'static str,
        backend: &'static str,
        rhs_batch: usize,
        per_solve_ratio_vs_single: f64,
    }
    let mut batch_scaling: Vec<BatchScaling> = Vec::new();
    for r in batch_rows.iter().filter(|r| r.rhs_batch > 1) {
        if let Some(single) = batch_rows.iter().find(|s| {
            s.rhs_batch == 1
                && s.solver == r.solver
                && s.precond == r.precond
                && s.backend == r.backend
        }) {
            batch_scaling.push(BatchScaling {
                solver: r.solver,
                precond: r.precond,
                backend: r.backend,
                rhs_batch: r.rhs_batch,
                per_solve_ratio_vs_single: r.per_solve_us_median / single.per_solve_us_median,
            });
        }
    }

    // ---- iterations-to-convergence per preconditioner -----------------------
    //
    // The timing loops above hold the iteration count fixed to isolate
    // per-iteration cost; this section measures the other factor — how many
    // P-CSI iterations each preconditioner actually needs on the bench
    // operator — and feeds the measurements into a SolveHistory so the
    // auto-selector below can rank candidates from real data.
    struct IterRow {
        precond: &'static str,
        iterations: usize,
        sqrt_condition: f64,
        lanczos_steps: usize,
    }
    // check_every = 1: exact counts, not rounded up to the check cadence.
    let conv_cfg = SolverConfig {
        tol: 1e-10,
        max_iters: 50_000,
        check_every: 1,
        obs: obs.clone(),
        ..SolverConfig::default()
    };
    let history = SolveHistory::new();
    let bench_fp = operator_fingerprint(&op);
    let mut iter_rows: Vec<IterRow> = Vec::new();
    for (pname, pre) in preconds {
        let (bounds, steps) = estimate_bounds(&op, pre, &serial, &lanczos);
        let solver = Pcsi::new(bounds);
        let mut ws = SolverWorkspace::new();
        let mut x = DistVec::zeros(&layout);
        let st = solver.solve_ws(&op, pre, &serial, &rhs, &mut x, &conv_cfg, &mut ws);
        assert!(st.converged, "pcsi+{pname} did not converge: {st:?}");
        history.record(bench_fp, pname, st.iterations);
        iter_rows.push(IterRow {
            precond: pname,
            iterations: st.iterations,
            sqrt_condition: bounds.condition().sqrt(),
            lanczos_steps: steps,
        });
    }
    let iters_of = |name: &str| {
        iter_rows
            .iter()
            .find(|r| r.precond == name)
            .map(|r| r.iterations)
            .expect("row exists")
    };
    let (diag_iters, mg_iters) = (iters_of("diag"), iters_of("mg"));
    assert!(
        mg_iters < diag_iters,
        "MG-preconditioned P-CSI must need strictly fewer iterations than \
         diagonal on the bench operator (mg {mg_iters} vs diag {diag_iters})"
    );

    // ---- auto-tuned preconditioner selection --------------------------------
    //
    // Four operators exercise both selector signals (DESIGN.md §15.3): the
    // bench operator with its measured history (history mode); a stiff
    // single-block basin where φ = 1/(gτ²) fades, the Laplacian dominates,
    // and the MG hierarchy spans the whole domain (condition mode must pick
    // MG — √κ ≈ 2 against EVP's ≈ 700); the same stiffness on a multi-block
    // topography layout, where the block-Dirichlet truncation caps what any
    // block-local preconditioner can do and EVP's cheapness wins; and a
    // short-timestep φ-dominated operator (condition mode must keep a cheap
    // preconditioner).
    struct SelectorRow {
        operator: &'static str,
        tau: f64,
        selection: Selection,
    }
    let selector = PrecondSelector::new(SelectorConfig {
        candidates: vec![PrecondSpec::Diagonal, PrecondSpec::Evp, PrecondSpec::Mg],
        lanczos,
    });
    let mut selector_rows: Vec<SelectorRow> = Vec::new();
    selector_rows.push(SelectorRow {
        operator: "bench",
        tau: 345.6,
        selection: selector.select(&op, &serial, Some(&history)),
    });
    assert!(
        selector_rows[0].selection.used_history,
        "bench-operator selection must use the recorded history"
    );
    let basin = Grid::idealized_basin(120, 96, 4000.0, 100_000.0);
    let basin_layout = DistLayout::build(&basin, 120, 96);
    let coarse_layout = DistLayout::build(&g, 90, 60);
    for (name, tau, grid, lay) in [
        ("stiff_basin", 345_600.0, &basin, &basin_layout),
        ("stiff_topography", 34_560.0, &g, &coarse_layout),
        ("short_timestep", 30.0, &g, &layout),
    ] {
        let sel_op = NinePoint::assemble(grid, lay, &serial, tau);
        selector_rows.push(SelectorRow {
            operator: name,
            tau,
            selection: selector.select(&sel_op, &serial, None),
        });
    }
    let winner_of = |name: &str| {
        selector_rows
            .iter()
            .find(|r| r.operator == name)
            .map(|r| r.selection.spec)
            .expect("row exists")
    };
    assert_eq!(
        winner_of("stiff_basin"),
        PrecondSpec::Mg,
        "the stiff whole-domain basin operator must go to multigrid"
    );
    assert_ne!(
        winner_of("short_timestep"),
        PrecondSpec::Mg,
        "the φ-dominated operator should keep a cheap preconditioner"
    );

    println!(
        "\n== per-iteration times, {nx}x{ny} grid, {} blocks, {iters} iters ==",
        layout.n_blocks()
    );
    println!(
        "{:>10} {:>7} {:>9} {:>8} {:>14} {:>14}",
        "solver", "precond", "backend", "path", "median µs/it", "min µs/it"
    );
    for r in &rows {
        println!(
            "{:>10} {:>7} {:>9} {:>8} {:>14.2} {:>14.2}",
            r.solver, r.precond, r.backend, r.path, r.per_iter_us_median, r.per_iter_us_min
        );
    }
    println!("\n== fused-over-unfused speedups ==");
    for s in &speedups {
        println!(
            "{:>10} {:>7} {:>9}  {:.2}x (paired median), {:.2}x (min)",
            s.solver, s.precond, s.backend, s.paired_median, s.min
        );
    }

    println!("\n== batched multi-RHS: per-solve times by rhs_batch ==");
    println!(
        "{:>10} {:>7} {:>9} {:>9} {:>15} {:>13} {:>12}",
        "solver", "precond", "backend", "rhs_batch", "median µs/slv", "min µs/slv", "allred/iter"
    );
    for r in &batch_rows {
        println!(
            "{:>10} {:>7} {:>9} {:>9} {:>15.2} {:>13.2} {:>12.2}",
            r.solver,
            r.precond,
            r.backend,
            r.rhs_batch,
            r.per_solve_us_median,
            r.per_solve_us_min,
            r.allreduces_per_iter
        );
    }
    println!("\n== batched per-solve cost vs rhs_batch = 1 (lower is better) ==");
    for s in &batch_scaling {
        println!(
            "{:>10} {:>7} {:>9}  rhs_batch={:>2}: {:.2}x",
            s.solver, s.precond, s.backend, s.rhs_batch, s.per_solve_ratio_vs_single
        );
    }

    println!("\n== P-CSI iterations to tol = 1e-10 by preconditioner ==");
    println!(
        "{:>7} {:>11} {:>9} {:>14}",
        "precond", "iterations", "sqrt(κ)", "lanczos steps"
    );
    for r in &iter_rows {
        println!(
            "{:>7} {:>11} {:>9.2} {:>14}",
            r.precond, r.iterations, r.sqrt_condition, r.lanczos_steps
        );
    }

    println!("\n== auto-tuned preconditioner selection ==");
    for r in &selector_rows {
        let sel = &r.selection;
        let mode = if sel.used_history {
            "history"
        } else {
            "condition"
        };
        let scores: Vec<String> = sel
            .scores
            .iter()
            .map(|s| match s.cost {
                Some(c) => format!("{}={c:.1}", s.spec.label()),
                None => format!("{}=n/a", s.spec.label()),
            })
            .collect();
        println!(
            "{:>15} (tau={:>7.1}): {} [{} mode; {}]",
            r.operator,
            r.tau,
            sel.spec.label(),
            mode,
            scores.join(", ")
        );
    }

    prov.warn_if_single_threaded("bench_solvers_json");
    // The worker count the threaded backend actually used, not the env
    // request — PR2-era artifacts recorded the latter and could silently
    // label 1-worker runs as threaded.
    let threads = prov.pool_threads;

    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"bench_solvers_json\",");
    let _ = writeln!(j, "  \"provenance\": {},", prov.json());
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(
        j,
        "  \"grid\": {{\"nx\": {nx}, \"ny\": {ny}, \"bx\": {bx}, \"by\": {by}, \"blocks\": {}}},",
        layout.n_blocks()
    );
    let _ = writeln!(j, "  \"iterations_per_solve\": {iters},");
    let _ = writeln!(j, "  \"samples\": {samples},");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"metrics\": {},", obs.metrics_json());
    j.push_str("  \"results\": [\n");
    for (k, r) in rows.iter().enumerate() {
        let samp: Vec<String> = r.samples_us.iter().map(|&v| json_f(v)).collect();
        let _ = write!(
            j,
            "    {{\"solver\": \"{}\", \"precond\": \"{}\", \"backend\": \"{}\", \"path\": \"{}\", \
             \"per_iter_us_median\": {}, \"per_iter_us_min\": {}, \"samples_us\": [{}]}}",
            r.solver,
            r.precond,
            r.backend,
            r.path,
            json_f(r.per_iter_us_median),
            json_f(r.per_iter_us_min),
            samp.join(", ")
        );
        j.push_str(if k + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");
    j.push_str("  \"speedups\": [\n");
    for (k, s) in speedups.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"solver\": \"{}\", \"precond\": \"{}\", \"backend\": \"{}\", \
             \"fused_over_unfused_paired_median\": {}, \"fused_over_unfused_min\": {}}}",
            s.solver,
            s.precond,
            s.backend,
            json_f(s.paired_median),
            json_f(s.min)
        );
        j.push_str(if k + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");
    j.push_str("  \"rhs_batch_results\": [\n");
    for (k, r) in batch_rows.iter().enumerate() {
        let samp: Vec<String> = r.samples_us.iter().map(|&v| json_f(v)).collect();
        let _ = write!(
            j,
            "    {{\"solver\": \"{}\", \"precond\": \"{}\", \"backend\": \"{}\", \
             \"rhs_batch\": {}, \"per_solve_us_median\": {}, \"per_solve_us_min\": {}, \
             \"allreduces_per_iter\": {}, \"samples_us\": [{}]}}",
            r.solver,
            r.precond,
            r.backend,
            r.rhs_batch,
            json_f(r.per_solve_us_median),
            json_f(r.per_solve_us_min),
            json_f(r.allreduces_per_iter),
            samp.join(", ")
        );
        j.push_str(if k + 1 < batch_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    j.push_str("  ],\n");
    j.push_str("  \"rhs_batch_scaling\": [\n");
    for (k, s) in batch_scaling.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"solver\": \"{}\", \"precond\": \"{}\", \"backend\": \"{}\", \
             \"rhs_batch\": {}, \"per_solve_ratio_vs_single\": {}}}",
            s.solver,
            s.precond,
            s.backend,
            s.rhs_batch,
            json_f(s.per_solve_ratio_vs_single)
        );
        j.push_str(if k + 1 < batch_scaling.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    j.push_str("  ],\n");
    j.push_str("  \"preconditioner_iterations\": [\n");
    for (k, r) in iter_rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"solver\": \"pcsi\", \"precond\": \"{}\", \"iterations\": {}, \
             \"sqrt_condition\": {}, \"lanczos_steps\": {}}}",
            r.precond,
            r.iterations,
            json_f(r.sqrt_condition),
            r.lanczos_steps
        );
        j.push_str(if k + 1 < iter_rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");
    j.push_str("  \"selector\": [\n");
    for (k, r) in selector_rows.iter().enumerate() {
        let sel = &r.selection;
        let scores: Vec<String> = sel
            .scores
            .iter()
            .map(|s| {
                format!(
                    "{{\"precond\": \"{}\", \"mean_iterations\": {}, \
                     \"sqrt_condition\": {}, \"cost\": {}}}",
                    s.spec.label(),
                    s.mean_iterations.map_or("null".into(), json_f),
                    s.sqrt_condition.map_or("null".into(), json_f),
                    s.cost.map_or("null".into(), json_f)
                )
            })
            .collect();
        let _ = write!(
            j,
            "    {{\"operator\": \"{}\", \"tau\": {}, \"fingerprint\": \"{:016x}\", \
             \"used_history\": {}, \"selected\": \"{}\", \"scores\": [{}]}}",
            r.operator,
            json_f(r.tau),
            sel.fingerprint,
            sel.used_history,
            sel.spec.label(),
            scores.join(", ")
        );
        j.push_str(if k + 1 < selector_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    j.push_str("  ]\n}\n");

    let out = "BENCH_solvers.json";
    std::fs::write(out, &j).expect("write BENCH_solvers.json");
    println!("\n[wrote {out}]");
}

//! Figure 1: percentage of 0.1° POP execution time spent in the barotropic
//! solver (ChronGear + diagonal) as core counts grow — the motivating
//! problem: ~5% at 470 cores, ~50% at 16,875.

use pop_bench::*;
use pop_ocean::SolverChoice;
use pop_perfmodel::paper::yellowstone_01 as paper;
use pop_perfmodel::{PopConfig, PopModel};

fn main() {
    let opts = RunOptions::from_args();
    let eg = gx01(&opts);
    println!(
        "Fig 1 reproduction: barotropic share of 0.1deg POP ({}x{} measurement grid)",
        eg.grid.nx, eg.grid.ny
    );
    let cfg = production_solver_config();
    let wl = Workload::new(&eg);
    let measured = wl.measure(SolverChoice::ChronGearDiag, &cfg);
    println!(
        "measured ChronGear+diagonal: K = {} iterations at tol {:e}",
        measured.stats.iterations, cfg.tol
    );

    let model = PopModel::new(PopConfig::gx01_yellowstone());
    let profile = measured.profile(cfg.check_every);
    let mut rows = Vec::new();
    for &p in &paper::CORE_COUNTS {
        let t = model.day(p, &profile, opts.seed);
        rows.push(vec![
            p.to_string(),
            format!("{:.1}", 100.0 * t.barotropic_fraction),
            format!("{:.1}", 100.0 * t.baroclinic / t.total),
            fmt_s(t.total),
        ]);
    }
    print_table(
        "barotropic share of total POP time (modelled at production scale)",
        &["cores", "barotropic %", "baroclinic %", "total s/day"],
        &rows,
    );
    println!(
        "paper: ~{:.0}% at 470 cores, ~{:.0}% at 16,875 cores",
        100.0 * paper::CG_FRACTION_470,
        100.0 * paper::CG_FRACTION
    );
    write_csv(
        "fig01_barotropic_fraction",
        &[
            "cores",
            "barotropic_pct",
            "baroclinic_pct",
            "total_s_per_day",
        ],
        &rows,
    );
}

//! Figure 3: effect of the number of Lanczos steps on the P-CSI iteration
//! count in 1° POP. A handful of steps already gives near-optimal
//! convergence; the paper's ε = 0.15 settles there automatically.

use pop_bench::*;
use pop_comm::DistVec;
use pop_core::lanczos::{estimate_bounds, estimate_bounds_fixed_steps, LanczosConfig};
use pop_core::precond::{BlockEvp, Diagonal, Preconditioner};
use pop_core::solvers::{LinearSolver, Pcsi};
use pop_perfmodel::paper::lanczos as paper;

fn main() {
    let opts = RunOptions::from_args();
    let eg = gx1(&opts);
    let cfg = production_solver_config();
    let wl = Workload::new(&eg);
    println!(
        "Fig 3 reproduction: P-CSI iterations vs Lanczos steps on the {}x{} 1deg grid",
        eg.grid.nx, eg.grid.ny
    );

    let diag = Diagonal::new(&wl.op);
    let evp = BlockEvp::with_defaults(&wl.op);
    let pres: [(&str, &dyn Preconditioner); 2] = [("diagonal", &diag), ("evp", &evp)];

    let mut rows = Vec::new();
    for steps in [2usize, 3, 4, 6, 8, 12, 16, 24, 40] {
        let mut row = vec![steps.to_string()];
        for (_, pre) in &pres {
            let bounds = estimate_bounds_fixed_steps(&wl.op, *pre, &wl.world, steps, opts.seed);
            let mut x = DistVec::zeros(&wl.layout);
            let st = Pcsi::new(bounds).solve(&wl.op, *pre, &wl.world, &wl.rhs, &mut x, &cfg);
            row.push(if st.converged {
                st.iterations.to_string()
            } else {
                "diverged".to_string()
            });
        }
        rows.push(row);
    }
    // The adaptive (paper-default ε = 0.15) row.
    let mut adaptive = vec!["eps=0.15".to_string()];
    for (_, pre) in &pres {
        let (bounds, steps) = estimate_bounds(&wl.op, *pre, &wl.world, &LanczosConfig::default());
        let mut x = DistVec::zeros(&wl.layout);
        let st = Pcsi::new(bounds).solve(&wl.op, *pre, &wl.world, &wl.rhs, &mut x, &cfg);
        adaptive.push(format!("{} ({} steps)", st.iterations, steps));
    }
    rows.push(adaptive);

    print_table(
        "P-CSI iterations vs Lanczos steps",
        &["lanczos steps", "pcsi+diag iters", "pcsi+evp iters"],
        &rows,
    );
    println!(
        "paper: a small number of Lanczos steps yields near-optimal P-CSI convergence; \
         tolerance eps = {} 'works efficiently' for both preconditioners.",
        paper::TOLERANCE
    );
    write_csv(
        "fig03_lanczos_steps",
        &["lanczos_steps", "pcsi_diag_iters", "pcsi_evp_iters"],
        &rows,
    );
}

//! Figure 10: component breakdown of the 0.1° barotropic solvers on
//! Yellowstone — global-reduction time (left) and boundary-communication
//! time (right) per simulated day. P-CSI wins primarily by eliminating
//! reductions; EVP shrinks halo time by cutting iteration counts.

use pop_bench::*;
use pop_perfmodel::cost::day_cost;
use pop_perfmodel::paper::yellowstone_01 as paper;
use pop_perfmodel::MachineModel;

fn main() {
    let opts = RunOptions::from_args();
    let eg = gx01(&opts);
    let cfg = production_solver_config();
    let wl = Workload::new(&eg);
    println!("Fig 10 reproduction: measuring the four configurations...");
    let measured = wl.measure_paper_set(&cfg);

    let machine = MachineModel::yellowstone();
    let n_global = 3600.0 * 2400.0;
    let mut red_rows = Vec::new();
    let mut halo_rows = Vec::new();
    for &p in &paper::CORE_COUNTS {
        let mut rrow = vec![p.to_string()];
        let mut hrow = vec![p.to_string()];
        for m in &measured {
            let day = day_cost(
                &machine,
                &m.profile(cfg.check_every),
                n_global,
                p,
                paper::DT_COUNT,
                1,
                0,
            );
            rrow.push(fmt_s(day.reduction));
            hrow.push(fmt_s(day.halo));
        }
        red_rows.push(rrow);
        halo_rows.push(hrow);
    }
    print_table(
        "global-reduction seconds per simulated day",
        &["cores", "cg+diag", "cg+evp", "pcsi+diag", "pcsi+evp"],
        &red_rows,
    );
    print_table(
        "boundary-communication seconds per simulated day",
        &["cores", "cg+diag", "cg+evp", "pcsi+diag", "pcsi+evp"],
        &halo_rows,
    );
    println!(
        "paper shape: P-CSI's reductions are negligible (checks only); \
         EVP roughly 3x-reduces both components via the iteration count; \
         ChronGear's reduction time decreases below ~1,200 cores then grows \
         (consistent with Eqs. 2-3)."
    );
    write_csv(
        "fig10_reduction",
        &["cores", "cg_diag", "cg_evp", "pcsi_diag", "pcsi_evp"],
        &red_rows,
    );
    write_csv(
        "fig10_halo",
        &["cores", "cg_diag", "cg_evp", "pcsi_diag", "pcsi_evp"],
        &halo_rows,
    );
}

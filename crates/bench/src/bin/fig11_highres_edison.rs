//! Figure 11: the 0.1° experiment repeated on Edison. Same shape as
//! Yellowstone, but reductions are slower and *noisy* (Dragonfly network
//! contention), so ChronGear times vary run to run; like the paper we run
//! several trials and average the best three. Paper: P-CSI+diag 3.7×,
//! P-CSI+EVP 5.6× at 16,875 cores.

use pop_bench::*;
use pop_perfmodel::paper::{edison_01 as paper, yellowstone_01};
use pop_perfmodel::{PopConfig, PopModel};

fn main() {
    let opts = RunOptions::from_args();
    let eg = gx01(&opts);
    let cfg = production_solver_config();
    let wl = Workload::new(&eg);
    println!("Fig 11 reproduction (Edison): measuring the four configurations...");
    let measured = wl.measure_paper_set(&cfg);

    let model = PopModel::new(PopConfig::gx01_edison());
    let mut time_rows = Vec::new();
    let mut rate_rows = Vec::new();
    for &p in &yellowstone_01::CORE_COUNTS {
        let mut trow = vec![p.to_string()];
        let mut rrow = vec![p.to_string()];
        for m in &measured {
            let t = model.day(
                p,
                &m.profile(cfg.check_every),
                opts.seed.wrapping_add(p as u64),
            );
            trow.push(fmt_s(t.barotropic.total()));
            rrow.push(format!("{:.1}", t.sypd));
        }
        time_rows.push(trow);
        rate_rows.push(rrow);
    }
    print_table(
        "0.1deg barotropic seconds per simulated day (modelled, Edison, best 3 of 5 trials)",
        &["cores", "cg+diag", "cg+evp", "pcsi+diag", "pcsi+evp"],
        &time_rows,
    );
    print_table(
        "0.1deg core simulation rate on Edison",
        &["cores", "cg+diag", "cg+evp", "pcsi+diag", "pcsi+evp"],
        &rate_rows,
    );

    let last = time_rows.last().expect("rows");
    let cg: f64 = last[1].parse().expect("num");
    let pcsi_diag: f64 = last[3].parse().expect("num");
    let pcsi_evp: f64 = last[4].parse().expect("num");
    println!("\nheadline comparison at 16,875 cores:");
    println!(
        "  ours:  cg {}s -> pcsi+diag {}s ({:.1}x) -> pcsi+evp {}s ({:.1}x)",
        last[1],
        last[3],
        cg / pcsi_diag,
        last[4],
        cg / pcsi_evp
    );
    println!(
        "  paper: cg {}s -> pcsi+diag {}s (3.7x) -> pcsi+evp ({}x)",
        paper::CG_DIAG_DAY_S,
        paper::PCSI_DIAG_DAY_S,
        paper::PCSI_EVP_SPEEDUP
    );

    // Variability: sample several independent trials of each config at the
    // top core count and report the spread (the paper's reported ChronGear
    // noisiness vs P-CSI's steadiness).
    let p = 16875;
    for (label, idx) in [("cg+diag", 0usize), ("pcsi+diag", 2)] {
        let ts: Vec<f64> = (0..12u64)
            .map(|s| {
                let mut one_trial = PopConfig::gx01_edison();
                one_trial.trials = 1;
                PopModel::new(one_trial)
                    .day(p, &measured[idx].profile(cfg.check_every), s * 977 + 13)
                    .barotropic
                    .total()
            })
            .collect();
        let mean = ts.iter().sum::<f64>() / ts.len() as f64;
        let max = ts.iter().fold(0.0f64, |a, &b| a.max(b));
        let min = ts.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        println!(
            "  {label} single-trial spread at {p} cores: {:.1}..{:.1}s around {:.1}s",
            min, max, mean
        );
    }
    write_csv(
        "fig11_highres_edison_time",
        &[
            "cores",
            "cg_diag_s",
            "cg_evp_s",
            "pcsi_diag_s",
            "pcsi_evp_s",
        ],
        &time_rows,
    );
}

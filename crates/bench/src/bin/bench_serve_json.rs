//! Load generator for the `pop-serve` solve service → `BENCH_serve.json`.
//!
//! Four traffic phases over one solver stack (P-CSI + block-EVP — the
//! expensive-setup path the operator-state cache exists for):
//!
//! - **cold**: distinct operators cycle through a capacity-1 cache, so
//!   every request pays the full EVP + Lanczos setup before its solve.
//! - **warm**: the same request stream against a cache sized to hold
//!   every operator — setup amortized away, solves alone remain.
//! - **burst**: a staged burst on one operator, showing multi-RHS
//!   coalescing (batch widths read back from the service's responses).
//! - **overload**: open-loop arrivals at ~2× the measured service rate
//!   into a small queue with deadlines — structured sheds while the
//!   accepted-request p99 stays bounded.
//! - **workers**: the same warm multi-operator mix staged as a burst
//!   through dispatch pools of 1, 2, and 4 workers — independent batch
//!   groups solve concurrently, and on a ≥4-core host the 4-worker
//!   throughput must reach ≥1.8× the single worker's at no worse p99
//!   (the assert is recorded but not enforced on smaller hosts, where
//!   the pool cannot physically scale).
//!
//! Every served result from every phase is verified bit-identical to a
//! standalone solve of the same request before the artifact is written;
//! any mismatch fails the run with a non-zero exit. The artifact embeds
//! run provenance, per-phase client-side percentiles, the obs-layer SLO
//! export (`pop_obs::export::slo_json`), and an `acceptance` block that
//! CI greps: `warm_ge_3x_cold`, `overload_sheds_structured`,
//! `accepted_p99_bounded`, `bitwise_all_match`.

use pop_bench::args::BenchArgs;
use pop_bench::provenance::Provenance;
use pop_comm::{CommWorld, DistLayout, DistVec};
use pop_core::lanczos::LanczosConfig;
use pop_core::setup::{OperatorState, PrecondSpec};
use pop_core::solvers::{BatchCommSolver, BatchWorkspace, Pcsi, SolveStats, SolverConfig};
use pop_grid::Grid;
use pop_obs::export::slo_json;
use pop_obs::ObsSink;
use pop_serve::{
    CacheStats, ServiceConfig, SolveRequest, SolveResponse, SolverService, SolverSpec,
};
use pop_stencil::NinePoint;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOL: f64 = 1e-11;
const SPEC: SolverSpec = SolverSpec::Pcsi;
const PRECOND: PrecondSpec = PrecondSpec::Evp;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn noise(seed: u64, i: usize, j: usize) -> f64 {
    let mut s = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ ((j as u64) << 32);
    let bits = splitmix64(&mut s);
    (bits >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

struct Operator {
    layout: Arc<DistLayout>,
    op: Arc<NinePoint>,
}

fn operator(grid_seed: u64, nx: usize, ny: usize, bx: usize, by: usize, tau: f64) -> Operator {
    let grid = Grid::gx1_scaled(grid_seed, nx, ny);
    let layout = DistLayout::build(&grid, bx, by);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, tau);
    Operator {
        layout,
        op: Arc::new(op),
    }
}

/// An RHS in the operator's range, so every solve converges crisply.
fn rhs(o: &Operator, seed: u64) -> DistVec {
    let world = CommWorld::serial();
    let mut field = DistVec::zeros(&o.layout);
    field.fill_with(|i, j| noise(seed, i, j));
    world.halo_update(&mut field);
    let mut b = DistVec::zeros(&o.layout);
    o.op.apply(&world, &field, &mut b);
    b
}

fn lanczos() -> LanczosConfig {
    // Serving-regime eigenbounds: the paper's loose ε = 0.15 suits a
    // solve-once context, but a served operator amortizes its setup over
    // thousands of solves, so we run Lanczos deep (tol 0 = never settle
    // early) for the sharpest Chebyshev interval the step budget buys.
    // This is exactly the kind of expensive, reusable state the cache
    // exists for. Must match the `ServiceConfig.lanczos` handed to every
    // service below — equal inputs keep the cache-vs-cold bitwise.
    LanczosConfig {
        tol: 0.0,
        max_steps: 300,
        ..Default::default()
    }
}

fn solver_cfg() -> SolverConfig {
    SolverConfig {
        tol: TOL,
        max_iters: 20_000,
        ..SolverConfig::default()
    }
}

/// The standalone-reference harness: one deterministic `OperatorState`
/// per operator (reused across right-hand sides — the build is
/// deterministic, so one build carries the same bits as any number of
/// rebuilds), width-1 solves through the same batched engine the service
/// dispatches into.
struct Referee {
    states: HashMap<usize, Arc<OperatorState>>,
    world: CommWorld,
    /// (operator index, rhs seed) → reference solution + stats.
    solutions: HashMap<(usize, u64), (DistVec, SolveStats)>,
    mismatches: Vec<String>,
    verified: usize,
}

impl Referee {
    fn new() -> Referee {
        Referee {
            states: HashMap::new(),
            world: CommWorld::serial(),
            solutions: HashMap::new(),
            mismatches: Vec::new(),
            verified: 0,
        }
    }

    fn reference(&mut self, ops: &[Operator], o: usize, seed: u64) -> &(DistVec, SolveStats) {
        if !self.solutions.contains_key(&(o, seed)) {
            let state = self
                .states
                .entry(o)
                .or_insert_with(|| {
                    OperatorState::build(&ops[o].op, PRECOND, Some(&lanczos()), &self.world)
                })
                .clone();
            let b = rhs(&ops[o], seed);
            let cfg = solver_cfg();
            let mut x = DistVec::zeros(&ops[o].layout);
            let mut ws = BatchWorkspace::new();
            let stats = Pcsi::new(state.bounds.expect("P-CSI reference state carries bounds"))
                .solve_batch_comm(
                    &ops[o].op,
                    state.precond.as_ref(),
                    &self.world,
                    &[&b],
                    &mut [&mut x],
                    &cfg,
                    &mut ws,
                );
            let st = stats.into_iter().next().unwrap();
            assert!(
                st.converged,
                "reference solve (op {o}, seed {seed:#x}) diverged"
            );
            self.solutions.insert((o, seed), (x, st));
        }
        &self.solutions[&(o, seed)]
    }

    /// Served result vs standalone reference: solution bits and solve
    /// stats must agree exactly.
    fn verify(&mut self, ops: &[Operator], o: usize, seed: u64, phase: &str, resp: &SolveResponse) {
        let (x_ref, st_ref) = self.reference(ops, o, seed);
        let mut ok = resp.stats.iterations == st_ref.iterations
            && resp.stats.converged == st_ref.converged
            && resp.stats.restarts == st_ref.restarts
            && resp.stats.final_relative_residual.to_bits()
                == st_ref.final_relative_residual.to_bits();
        'blocks: for (ba, bb) in resp.x.blocks.iter().zip(x_ref.blocks.iter()) {
            for j in 0..ba.ny {
                for (va, vb) in ba.interior_row(j).iter().zip(bb.interior_row(j)) {
                    if va.to_bits() != vb.to_bits() {
                        ok = false;
                        break 'blocks;
                    }
                }
            }
        }
        self.verified += 1;
        if !ok {
            self.mismatches.push(format!(
                "{phase}: op {o} seed {seed:#x} (width {}, cache_hit {})",
                resp.batch_width, resp.cache_hit
            ));
        }
    }
}

/// Nearest-rank percentile of an unsorted latency sample, in seconds.
fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty());
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * s.len() as f64).ceil() as usize).clamp(1, s.len());
    s[rank - 1]
}

struct PhaseResult {
    requests: usize,
    elapsed_secs: f64,
    latencies: Vec<f64>,
    cache: CacheStats,
}

impl PhaseResult {
    fn solves_per_sec(&self) -> f64 {
        self.requests as f64 / self.elapsed_secs
    }

    fn json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"elapsed_secs\": {}, \"solves_per_sec\": {}, \
             \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \
             \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}}}}",
            self.requests,
            self.elapsed_secs,
            self.solves_per_sec(),
            percentile(&self.latencies, 0.50) * 1e3,
            percentile(&self.latencies, 0.90) * 1e3,
            percentile(&self.latencies, 0.99) * 1e3,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
        )
    }
}

fn request(ops: &[Operator], o: usize, seed: u64) -> SolveRequest {
    SolveRequest::new(
        (o % 4) as u32,
        Arc::clone(&ops[o].op),
        SPEC,
        PRECOND,
        rhs(&ops[o], seed),
    )
    .with_tol(TOL)
}

/// Closed-loop traffic (concurrency 1): submit, wait, verify, repeat.
/// The RHS vectors are prebuilt so the timed loop is service + solve only.
fn closed_loop(
    svc: &SolverService,
    ops: &[Operator],
    pairs: &[(usize, u64)],
    referee: &mut Referee,
    phase: &str,
) -> (f64, Vec<f64>) {
    let reqs: Vec<SolveRequest> = pairs.iter().map(|&(o, s)| request(ops, o, s)).collect();
    let mut latencies = Vec::with_capacity(pairs.len());
    let t0 = Instant::now();
    let mut responses = Vec::with_capacity(pairs.len());
    for req in reqs {
        let resp = svc
            .submit(req)
            .expect("closed loop never overflows")
            .wait()
            .unwrap();
        latencies.push(resp.latency.as_secs_f64());
        responses.push(resp);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    for (&(o, s), resp) in pairs.iter().zip(&responses) {
        referee.verify(ops, o, s, phase, resp);
    }
    (elapsed, latencies)
}

#[derive(Default)]
struct ShedTally {
    queue_full: usize,
    tenant_quota: usize,
    deadline_unmeetable: usize,
    deadline_expired: usize,
    other: usize,
}

impl ShedTally {
    fn count(&mut self, reason: &str) {
        match reason {
            "queue_full" => self.queue_full += 1,
            "tenant_quota" => self.tenant_quota += 1,
            "deadline_unmeetable" => self.deadline_unmeetable += 1,
            "deadline_expired" => self.deadline_expired += 1,
            _ => self.other += 1,
        }
    }

    fn total(&self) -> usize {
        self.queue_full
            + self.tenant_quota
            + self.deadline_unmeetable
            + self.deadline_expired
            + self.other
    }
}

fn main() {
    let args = BenchArgs::parse();
    let prov = Provenance::collect();
    let quick = args.quick;

    // Smoke sizing keeps CI under a minute; the full run uses the same
    // shape with more operators, larger blocks, and more traffic.
    // Few large blocks rather than many small ones: the per-block EVP
    // influence matrices cost ~O(cells³) to build but only O(cells²) to
    // apply, so big blocks are the regime where cached setup state pays —
    // exactly the contrast the cold/warm phases measure.
    let (nx, ny, bx, by, n_ops, reqs_per_op, burst, offered) = if quick {
        (48, 40, 4, 4, 3, 4, 6, 20)
    } else {
        (96, 80, 8, 8, 5, 6, 8, 32)
    };

    eprintln!(
        "bench_serve_json: {n_ops} operators on {nx}x{ny} ({}), {} requests/phase",
        if quick { "smoke" } else { "full" },
        n_ops * reqs_per_op
    );

    let ops: Vec<Operator> = (0..n_ops)
        .map(|o| {
            operator(
                args.seed ^ (o as u64),
                nx,
                ny,
                bx,
                by,
                4000.0 + 1500.0 * o as f64,
            )
        })
        .collect();

    // One (operator, rhs-seed) stream reused by the cold and warm phases,
    // cycling operators so the capacity-1 cold cache never hits.
    let pairs: Vec<(usize, u64)> = (0..reqs_per_op)
        .flat_map(|r| (0..n_ops).map(move |o| (o, 0x5EED_0000 + (o as u64) * 64 + r as u64)))
        .collect();

    let mut referee = Referee::new();
    let obs = ObsSink::enabled();
    let base = solver_cfg();

    // --- Phase 1: cold cache. Every request pays EVP + Lanczos setup. ---
    // Phases 1-4 pin `workers: 1` so their numbers stay comparable across
    // runs and hosts; the workers phase below owns the pool-scaling axis.
    let svc = SolverService::start(ServiceConfig {
        cache_capacity: 1,
        workers: 1,
        lanczos: lanczos(),
        base: base.clone(),
        obs: obs.clone(),
        ..ServiceConfig::default()
    });
    let (cold_secs, cold_lat) = closed_loop(&svc, &ops, &pairs, &mut referee, "cold");
    let cold = PhaseResult {
        requests: pairs.len(),
        elapsed_secs: cold_secs,
        latencies: cold_lat,
        cache: svc.shutdown(),
    };
    assert_eq!(
        cold.cache.hits, 0,
        "cycling a capacity-1 cache must never hit"
    );
    eprintln!(
        "  cold: {:.2} solves/s, p99 {:.1} ms",
        cold.solves_per_sec(),
        percentile(&cold.latencies, 0.99) * 1e3
    );

    // --- Phase 2: warm cache. Same stream, cache holds every operator. ---
    let svc = SolverService::start(ServiceConfig {
        cache_capacity: n_ops,
        workers: 1,
        lanczos: lanczos(),
        base: base.clone(),
        obs: obs.clone(),
        ..ServiceConfig::default()
    });
    for &(o, seed) in pairs.iter().take(n_ops) {
        // Untimed warm-up pass builds each operator's state once (the
        // first `n_ops` pairs cycle the operators exactly once).
        let resp = svc.submit(request(&ops, o, seed)).unwrap().wait().unwrap();
        referee.verify(&ops, o, seed, "warmup", &resp);
    }
    let (warm_secs, warm_lat) = closed_loop(&svc, &ops, &pairs, &mut referee, "warm");
    let warm = PhaseResult {
        requests: pairs.len(),
        elapsed_secs: warm_secs,
        latencies: warm_lat,
        cache: svc.shutdown(),
    };
    assert_eq!(
        warm.cache.hits,
        pairs.len() as u64,
        "the timed warm stream must be all cache hits"
    );
    eprintln!(
        "  warm: {:.2} solves/s, p99 {:.1} ms",
        warm.solves_per_sec(),
        percentile(&warm.latencies, 0.99) * 1e3
    );

    // --- Phase 3: staged burst — multi-RHS coalescing in one round. ---
    let svc = SolverService::start(ServiceConfig {
        start_paused: true,
        workers: 1,
        lanczos: lanczos(),
        base: base.clone(),
        obs: obs.clone(),
        ..ServiceConfig::default()
    });
    let burst_pairs: Vec<(usize, u64)> = (0..burst).map(|i| (0, 0xB0057_u64 + i as u64)).collect();
    let tickets: Vec<_> = burst_pairs
        .iter()
        .map(|&(o, s)| svc.submit(request(&ops, o, s)).unwrap())
        .collect();
    svc.resume();
    let mut widths = Vec::with_capacity(burst);
    for (&(o, s), t) in burst_pairs.iter().zip(tickets) {
        let resp = t.wait().unwrap();
        widths.push(resp.batch_width);
        referee.verify(&ops, o, s, "burst", &resp);
    }
    drop(svc);
    let max_width = widths.iter().copied().max().unwrap_or(0);
    eprintln!("  burst: widths {widths:?}");

    // --- Phase 4: overload — 2× the measured service rate, open loop. ---
    // max_batch 1 pins the service rate to one solve per round so the
    // offered 2× rate is a true overload that coalescing cannot absorb.
    let svc = SolverService::start(ServiceConfig {
        queue_capacity: 6,
        tenant_quota: 64,
        max_batch: 1,
        cache_capacity: 2,
        workers: 1,
        lanczos: lanczos(),
        base: base.clone(),
        obs: obs.clone(),
        ..ServiceConfig::default()
    });
    for i in 0..2u64 {
        // Prime the cache and the service-time EWMA.
        let seed = 0x0DD_0000 + i;
        let resp = svc.submit(request(&ops, 0, seed)).unwrap().wait().unwrap();
        referee.verify(&ops, 0, seed, "overload-prime", &resp);
    }
    let service_secs = svc.ema_service_secs();
    assert!(service_secs > 0.0, "EWMA must be primed before overload");
    let deadline = Duration::from_secs_f64((4.0 * service_secs).max(0.005));
    let interval = Duration::from_secs_f64(service_secs / 2.0);
    let overload_pairs: Vec<(usize, u64)> =
        (0..offered).map(|i| (0, 0x10AD_0000 + i as u64)).collect();
    let overload_reqs: Vec<SolveRequest> = overload_pairs
        .iter()
        .map(|&(o, s)| request(&ops, o, s).with_deadline(deadline))
        .collect();
    let mut sheds = ShedTally::default();
    let mut accepted = Vec::new();
    for (&(o, s), req) in overload_pairs.iter().zip(overload_reqs) {
        match svc.submit(req) {
            Ok(t) => accepted.push((o, s, t)),
            Err(r) => sheds.count(r.reason()),
        }
        std::thread::sleep(interval);
    }
    let mut accepted_lat = Vec::new();
    let mut served = 0usize;
    for (o, s, t) in accepted {
        match t.wait() {
            Ok(resp) => {
                accepted_lat.push(resp.latency.as_secs_f64());
                served += 1;
                referee.verify(&ops, o, s, "overload", &resp);
            }
            Err(r) => sheds.count(r.reason()),
        }
    }
    let overload_cache = svc.shutdown();
    // Admission bounds queue wait to ~deadline and service adds one solve;
    // 2× headroom absorbs scheduler jitter on loaded CI machines.
    let p99_bound_secs = 2.0 * (deadline.as_secs_f64() + service_secs);
    let accepted_p99 = percentile(&accepted_lat, 0.99);
    eprintln!(
        "  overload: {served}/{offered} served, {} shed, accepted p99 {:.1} ms (bound {:.1} ms)",
        sheds.total(),
        accepted_p99 * 1e3,
        p99_bound_secs * 1e3
    );

    // --- Phase 5: dispatch-pool scaling on the warm multi-operator mix. ---
    // Every operator's requests split into max_batch-2 groups, so the
    // queue holds many independent (operator, solver, precond, tol)
    // groups and the worker pool has real parallelism to find. The burst
    // is staged paused so arrival timing is out of the measurement.
    let sweep_per_op = 8;
    let sweep_counts = [1usize, 2, 4];
    let mut sweep_results: Vec<(usize, usize, f64, Vec<f64>)> = Vec::new();
    for &workers in &sweep_counts {
        let svc = SolverService::start(ServiceConfig {
            workers,
            max_batch: 2,
            cache_capacity: n_ops,
            tenant_quota: 256,
            queue_capacity: n_ops * sweep_per_op + 8,
            lanczos: lanczos(),
            base: base.clone(),
            obs: obs.clone(),
            ..ServiceConfig::default()
        });
        // Untimed warm-up: build every operator's state once.
        for o in 0..n_ops {
            let seed = 0x0003_CA1E_0000 + o as u64;
            let resp = svc.submit(request(&ops, o, seed)).unwrap().wait().unwrap();
            referee.verify(&ops, o, seed, "workers-warmup", &resp);
        }
        let sweep_pairs: Vec<(usize, u64)> = (0..sweep_per_op)
            .flat_map(|r| (0..n_ops).map(move |o| (o, 0x0003_CA1E_1000 + (o as u64) * 64 + r as u64)))
            .collect();
        let reqs: Vec<SolveRequest> = sweep_pairs
            .iter()
            .map(|&(o, s)| request(&ops, o, s))
            .collect();
        // Burst everything in while dispatch chews: measure makespan.
        let t0 = Instant::now();
        let tickets: Vec<_> = reqs
            .into_iter()
            .map(|r| svc.submit(r).expect("sweep queue sized for the burst"))
            .collect();
        let responses: Vec<SolveResponse> =
            tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let elapsed = t0.elapsed().as_secs_f64();
        let lat: Vec<f64> = responses.iter().map(|r| r.latency.as_secs_f64()).collect();
        for (&(o, s), resp) in sweep_pairs.iter().zip(&responses) {
            assert!(resp.cache_hit, "sweep traffic must run warm");
            referee.verify(&ops, o, s, "workers", resp);
        }
        assert_eq!(svc.worker_count(), workers);
        drop(svc);
        eprintln!(
            "  workers={workers}: {:.2} solves/s, p99 {:.1} ms",
            sweep_pairs.len() as f64 / elapsed,
            percentile(&lat, 0.99) * 1e3
        );
        sweep_results.push((workers, sweep_pairs.len(), elapsed, lat));
    }
    let sweep_rate = |i: usize| sweep_results[i].1 as f64 / sweep_results[i].2;
    let workers_speedup = sweep_rate(2) / sweep_rate(0);
    let p99_w1 = percentile(&sweep_results[0].3, 0.99);
    let p99_w4 = percentile(&sweep_results[2].3, 0.99);
    // A staged burst drains faster with more workers, so p99 latency must
    // not regress; 10% slack absorbs scheduler jitter on loaded runners.
    let workers_p99_ok = p99_w4 <= p99_w1 * 1.10;
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The ≥1.8× gate only means something where 4 workers can actually
    // run in parallel; on smaller hosts the axis is recorded, not
    // enforced (CI runs on ≥4 vCPUs and enforces).
    let workers_enforced = host_cores >= 4;

    // --- Acceptance + artifact. ---
    let ratio = warm.solves_per_sec() / cold.solves_per_sec();
    let warm_p99 = percentile(&warm.latencies, 0.99);
    let cold_p99 = percentile(&cold.latencies, 0.99);
    let bitwise_ok = referee.mismatches.is_empty();

    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"bench_serve_json\",");
    let _ = writeln!(j, "  \"provenance\": {},", prov.json());
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"seed\": {},", args.seed);
    let _ = writeln!(
        j,
        "  \"workload\": {{\"nx\": {nx}, \"ny\": {ny}, \"blocks\": [{bx}, {by}], \
         \"operators\": {n_ops}, \"requests_per_operator\": {reqs_per_op}, \
         \"solver\": \"{}\", \"precond\": \"{}\", \"tol\": {TOL}}},",
        SPEC.label(),
        PRECOND.label()
    );
    let _ = writeln!(j, "  \"phases\": {{");
    let _ = writeln!(j, "    \"cold\": {},", cold.json());
    let _ = writeln!(j, "    \"warm\": {},", warm.json());
    let _ = writeln!(
        j,
        "    \"burst\": {{\"requests\": {burst}, \"widths\": {widths:?}, \"max_batch_width\": {max_width}}},"
    );
    let _ = writeln!(
        j,
        "    \"overload\": {{\"offered\": {offered}, \"served\": {served}, \"shed\": {}, \
         \"shed_reasons\": {{\"queue_full\": {}, \"tenant_quota\": {}, \
         \"deadline_unmeetable\": {}, \"deadline_expired\": {}, \"other\": {}}}, \
         \"service_secs_est\": {}, \"deadline_ms\": {}, \"accepted_p99_ms\": {}, \
         \"p99_bound_ms\": {}, \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}}}},",
        sheds.total(),
        sheds.queue_full,
        sheds.tenant_quota,
        sheds.deadline_unmeetable,
        sheds.deadline_expired,
        sheds.other,
        service_secs,
        deadline.as_secs_f64() * 1e3,
        accepted_p99 * 1e3,
        p99_bound_secs * 1e3,
        overload_cache.hits,
        overload_cache.misses,
        overload_cache.evictions,
    );
    let sweep_rows: Vec<String> = sweep_results
        .iter()
        .map(|(w, n, secs, lat)| {
            format!(
                "{{\"workers\": {w}, \"requests\": {n}, \"elapsed_secs\": {secs}, \
                 \"solves_per_sec\": {}, \"p50_ms\": {}, \"p99_ms\": {}}}",
                *n as f64 / secs,
                percentile(lat, 0.50) * 1e3,
                percentile(lat, 0.99) * 1e3,
            )
        })
        .collect();
    let _ = writeln!(
        j,
        "    \"workers\": {{\"host_cores\": {host_cores}, \"max_batch\": 2, \
         \"sweep\": [{}]}}",
        sweep_rows.join(", ")
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"acceptance\": {{");
    let _ = writeln!(j, "    \"warm_over_cold_ratio\": {ratio},");
    let _ = writeln!(j, "    \"warm_ge_3x_cold\": {},", ratio >= 3.0);
    let _ = writeln!(j, "    \"warm_p99_le_cold_p99\": {},", warm_p99 <= cold_p99);
    let _ = writeln!(
        j,
        "    \"overload_sheds_structured\": {},",
        sheds.total() > 0
    );
    let _ = writeln!(
        j,
        "    \"accepted_p99_bounded\": {},",
        accepted_p99 <= p99_bound_secs
    );
    let _ = writeln!(j, "    \"workers_speedup_4x\": {workers_speedup},");
    let _ = writeln!(
        j,
        "    \"workers_scaling_ge_1p8\": {},",
        workers_speedup >= 1.8
    );
    let _ = writeln!(j, "    \"workers_p99_no_worse\": {workers_p99_ok},");
    let _ = writeln!(
        j,
        "    \"workers_scaling_enforced\": {workers_enforced},"
    );
    let _ = writeln!(j, "    \"bitwise_all_match\": {bitwise_ok},");
    let _ = writeln!(j, "    \"verified_requests\": {}", referee.verified);
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"slo\": {},", slo_json(&obs.metrics()).trim_end());
    let _ = writeln!(j, "  \"metrics\": {}", obs.metrics_json());
    let _ = writeln!(j, "}}");
    std::fs::write("BENCH_serve.json", &j).expect("write BENCH_serve.json");

    eprintln!(
        "  warm/cold throughput ratio {ratio:.2} (>=3 expected), {} results verified bitwise",
        referee.verified
    );
    eprintln!(
        "  workers speedup 4x/1x: {workers_speedup:.2} (>=1.8 {}), p99 no worse: {workers_p99_ok}",
        if workers_enforced {
            "enforced"
        } else {
            "recorded only — host has <4 cores"
        }
    );
    if !bitwise_ok {
        eprintln!("BITWISE MISMATCH — served results diverged from standalone solves:");
        for m in &referee.mismatches {
            eprintln!("  {m}");
        }
        std::process::exit(1);
    }
    if workers_enforced && (workers_speedup < 1.8 || !workers_p99_ok) {
        eprintln!(
            "WORKER SCALING FAILURE — 4-worker warm throughput {workers_speedup:.2}x \
             (need >=1.8x) or p99 regressed (no_worse = {workers_p99_ok})"
        );
        std::process::exit(1);
    }
    println!("BENCH_serve.json written");
}

//! Run provenance for the JSON benchmark artifacts.
//!
//! Perf trajectories are only comparable when each data point says what
//! produced it: the commit the binary was built from, whether the tree was
//! dirty, how many threads the run used, and what platform it ran on. Every
//! JSON-writing bench embeds one [`Provenance`] object.

use std::process::Command;

/// What produced a benchmark artifact.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// Abbreviated git commit hash of the working tree, `"unknown"` when
    /// not in a repository (or git is unavailable).
    pub git_commit: String,
    /// Whether the working tree had uncommitted changes.
    pub git_dirty: bool,
    /// Worker threads honoured by the threaded backend (`POP_BARO_THREADS`
    /// or the machine's available parallelism).
    pub threads: usize,
    /// Worker count the global thread pool *actually* created — the number
    /// the threaded backend really ran on (can differ from `threads` only
    /// if the pool was sized before the env was set).
    pub pool_threads: usize,
    /// Raw `POP_BARO_THREADS` value, if set (distinguishes an explicit
    /// request from machine-derived parallelism).
    pub threads_env: Option<String>,
    /// Kernel dispatch mode the run resolved to (`POP_BARO_SIMD` / CPU
    /// detection): "scalar", "portable", or "avx2".
    pub simd_mode: &'static str,
    /// Whether the CPU supports AVX2, regardless of the chosen mode.
    pub avx2_detected: bool,
    /// Whether the CPU supports scalar FMA (used by the mode-shared EVP
    /// chain pass, identically under every dispatch mode).
    pub fma_detected: bool,
    pub os: &'static str,
    pub arch: &'static str,
    /// One-line description of the active network fault plan
    /// (`FaultPlan::describe()`), `None` for a fault-free run. Chaos
    /// benchmarks are not comparable to clean ones; this field keeps them
    /// from being mixed silently.
    pub fault_plan: Option<String>,
}

fn git(args: &[&str]) -> Option<String> {
    let out = Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8(out.stdout).ok()
}

/// The thread count the run will use: `POP_BARO_THREADS` wins, otherwise
/// the machine's available parallelism (1 when undetectable).
pub fn effective_threads() -> usize {
    std::env::var("POP_BARO_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
}

impl Provenance {
    /// Collect provenance for the current process and working directory.
    pub fn collect() -> Self {
        let git_commit = git(&["rev-parse", "--short=12", "HEAD"])
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let git_dirty = git(&["status", "--porcelain"])
            .map(|s| !s.trim().is_empty())
            .unwrap_or(false);
        Provenance {
            git_commit,
            git_dirty,
            threads: effective_threads(),
            pool_threads: pop_comm::pool::global().n_threads(),
            threads_env: std::env::var("POP_BARO_THREADS").ok(),
            simd_mode: pop_simd::mode().name(),
            avx2_detected: pop_simd::detected_avx2(),
            fma_detected: pop_simd::detected_fma(),
            os: std::env::consts::OS,
            arch: std::env::consts::ARCH,
            fault_plan: None,
        }
    }

    /// Record the run's fault plan (pass `FaultPlan::describe()`); `None`
    /// marks the run fault-free.
    pub fn with_fault_plan(mut self, plan: Option<String>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// If the "threaded" backend is about to run on a single pool worker,
    /// say so loudly: its numbers would measure pool overhead, not
    /// parallelism, and are trivially mistaken for multi-thread results.
    pub fn warn_if_single_threaded(&self, bench: &str) {
        if self.pool_threads <= 1 {
            eprintln!(
                "WARNING [{bench}]: the \"threaded\" backend is running on a SINGLE pool \
                 worker (pool_threads = {}, POP_BARO_THREADS = {}). Its timings measure \
                 pool dispatch overhead, not parallel speedup — do not compare them \
                 against multi-threaded runs.",
                self.pool_threads,
                self.threads_env.as_deref().unwrap_or("<unset>"),
            );
        }
    }

    /// Render as a one-line JSON object.
    pub fn json(&self) -> String {
        let threads_env = match &self.threads_env {
            Some(v) => format!("\"{v}\""),
            None => "null".to_string(),
        };
        let fault_plan = match &self.fault_plan {
            Some(v) => format!("\"{v}\""),
            None => "null".to_string(),
        };
        format!(
            "{{\"git_commit\": \"{}\", \"git_dirty\": {}, \"threads\": {}, \"pool_threads\": {}, \
             \"threads_env\": {}, \"simd_mode\": \"{}\", \"avx2_detected\": {}, \
             \"fma_detected\": {}, \"os\": \"{}\", \"arch\": \"{}\", \"fault_plan\": {}}}",
            self.git_commit,
            self.git_dirty,
            self.threads,
            self.pool_threads,
            threads_env,
            self.simd_mode,
            self.avx2_detected,
            self.fma_detected,
            self.os,
            self.arch,
            fault_plan
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_and_render() {
        let p = Provenance::collect();
        assert!(!p.git_commit.is_empty());
        assert!(p.threads >= 1);
        let j = p.json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"git_commit\""));
        assert!(j.contains(&format!("\"os\": \"{}\"", std::env::consts::OS)));
        // Fault-free runs render an explicit null; a recorded plan is quoted.
        assert!(j.contains("\"fault_plan\": null"));
        let chaotic = Provenance::collect().with_fault_plan(Some("seed=7".into()));
        assert!(chaotic.json().contains("\"fault_plan\": \"seed=7\""));
        // Hash is hex or the "unknown" sentinel — never shell noise.
        assert!(
            p.git_commit == "unknown" || p.git_commit.chars().all(|c| c.is_ascii_hexdigit()),
            "suspicious commit field: {}",
            p.git_commit
        );
    }
}

//! Shared command-line parsing for the JSON bench binaries.
//!
//! `bench_solvers_json`, `bench_kernels_json`, and `scaling_ranksim` each
//! used to scan `std::env::args` on their own, so a typo like `--qiuck`
//! silently ran the full-size benchmark. This helper owns the common
//! flags in one place — strict about unknown options, with the same
//! `POP_BENCH_QUICK` environment fallback the old ad-hoc scans honoured.

/// Options shared by the JSON bench binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// `--quick` / `--smoke` (or `POP_BENCH_QUICK=1`): smaller grids,
    /// fewer samples, for CI smoke runs.
    pub quick: bool,
    /// `--seed N`: base seed for grid generation and seeded RHS batches.
    pub seed: u64,
}

impl BenchArgs {
    /// The year of the paper, as everywhere else in the harness.
    pub const DEFAULT_SEED: u64 = 2015;

    /// Parse from the process arguments, honouring `POP_BENCH_QUICK`.
    /// Unknown options abort with a message instead of being ignored.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(mut a) => {
                a.quick = a.quick || quick_env();
                a
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit argument list (no environment), for tests.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = BenchArgs {
            quick: false,
            seed: Self::DEFAULT_SEED,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" | "--smoke" => out.quick = true,
                "--seed" => {
                    out.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--seed needs an integer")?;
                }
                other => {
                    return Err(format!(
                        "unknown option {other} (supported: --quick | --smoke, --seed N)"
                    ))
                }
            }
        }
        Ok(out)
    }
}

/// `POP_BENCH_QUICK` set to anything but `0`/empty.
pub fn quick_env() -> bool {
    std::env::var("POP_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Lenient probe kept for the figure binaries that take other options:
/// true when the argument list contains `--quick`/`--smoke` or the
/// environment requests quick mode. New JSON benches should prefer
/// [`BenchArgs::parse`], which also rejects typos.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "--smoke") || quick_env()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<BenchArgs, String> {
        BenchArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert!(!a.quick);
        assert_eq!(a.seed, BenchArgs::DEFAULT_SEED);
    }

    #[test]
    fn quick_and_smoke_are_synonyms() {
        assert!(parse(&["--quick"]).unwrap().quick);
        assert!(parse(&["--smoke"]).unwrap().quick);
    }

    #[test]
    fn seed_parses() {
        assert_eq!(parse(&["--seed", "7"]).unwrap().seed, 7);
        assert_eq!(
            parse(&["--smoke", "--seed", "7"]).unwrap(),
            BenchArgs {
                quick: true,
                seed: 7
            }
        );
    }

    #[test]
    fn unknown_and_malformed_options_are_rejected() {
        assert!(parse(&["--qiuck"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
    }
}

//! Shared support for the per-figure experiment binaries.
//!
//! Every binary follows the same recipe:
//!
//! 1. build the relevant grid (full paper dimensions with `--full`, a
//!    proportionally scaled grid by default so the whole suite runs in
//!    minutes on a laptop);
//! 2. run the *real* solvers to measure iteration counts and communication
//!    events;
//! 3. where the figure reports wall time at production core counts, feed
//!    those measurements through the calibrated machine model
//!    (`pop-perfmodel`, substitution S2);
//! 4. print the series next to the paper's reported values and append a CSV
//!    under `results/`.

pub mod args;
pub mod provenance;
pub mod timing;

use pop_comm::{CommWorld, DistLayout, DistVec};
use pop_core::solvers::{SolveStats, SolverConfig};
use pop_grid::Grid;
use pop_ocean::{SolverChoice, SolverSetup};
use pop_perfmodel::cost::{PrecondKind, SolverKind, SolverProfile};
use pop_stencil::NinePoint;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Use the paper's full grid dimensions (3600×2400 for 0.1°).
    pub full: bool,
    /// Random seed for grid generation.
    pub seed: u64,
}

impl RunOptions {
    /// Parse from `std::env::args` (`--full`, `--seed N`).
    pub fn from_args() -> Self {
        let mut opts = RunOptions {
            full: false,
            seed: 2015, // the year of the paper
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => opts.full = true,
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                other => panic!("unknown option {other} (supported: --full, --seed N)"),
            }
        }
        opts
    }
}

/// The two production grids at either full or scaled dimensions, with
/// physically matched time steps.
pub struct ExperimentGrid {
    pub grid: Grid,
    pub label: &'static str,
    /// Barotropic time step matching the production stiffness.
    pub tau: f64,
    /// Process-block extents used when measuring solver statistics.
    pub bx: usize,
    pub by: usize,
    /// Solves per simulated day for the whole-POP model.
    pub solves_per_day: usize,
}

/// The 1°-like grid. Full size is cheap, so `--full` only affects 0.1°.
pub fn gx1(opts: &RunOptions) -> ExperimentGrid {
    let grid = Grid::gx1(opts.seed);
    ExperimentGrid {
        grid,
        label: "1deg",
        // Stiffness-calibrated: our synthetic bathymetry/metrics make the
        // operator somewhat harder than the real gx1 grid, so τ is chosen
        // where the measured ChronGear+diagonal iteration count lands in the
        // paper's regime (~180 at tol 1e-13) rather than at the nominal
        // one-hour coupling step. See DESIGN.md S4.
        tau: 1100.0,
        bx: 40,
        by: 48,
        solves_per_day: pop_perfmodel::paper::yellowstone_1::DT_COUNT,
    }
}

/// The 0.1°-like grid: 3600×2400 with `--full`, 900×600 otherwise.
/// The time step scales with the grid spacing so the gravity-wave stiffness
/// `gHτ²/dx²` (and hence the iteration count regime) matches production.
pub fn gx01(opts: &RunOptions) -> ExperimentGrid {
    // τ is stiffness-calibrated (measured K ≈ the paper's ~150 for
    // ChronGear+diagonal at tol 1e-13); the 4x-coarser quick grid keeps the
    // same gravity-wave CFL regime with 4x the τ. See DESIGN.md S4.
    let (nx, ny, tau) = if opts.full {
        (3600usize, 2400usize, 86.4)
    } else {
        (900, 600, 345.6)
    };
    let grid = Grid::gx01_scaled(opts.seed, nx, ny);
    ExperimentGrid {
        grid,
        label: "0.1deg",
        tau,
        bx: (nx / 20).max(8),
        by: (ny / 20).max(8),
        solves_per_day: pop_perfmodel::paper::yellowstone_01::DT_COUNT,
    }
}

/// Measured behaviour of one solver configuration on a real grid.
pub struct MeasuredConfig {
    pub choice: SolverChoice,
    pub stats: SolveStats,
    pub lanczos_steps: usize,
}

impl MeasuredConfig {
    /// Convert to the machine model's input.
    pub fn profile(&self, check_every: usize) -> SolverProfile {
        SolverProfile {
            solver: if self.choice.is_pcsi() {
                SolverKind::Pcsi
            } else {
                SolverKind::ChronGear
            },
            precond: if self.choice.uses_evp() {
                PrecondKind::Evp
            } else {
                PrecondKind::Diagonal
            },
            iterations: self.stats.iterations as f64,
            check_every,
        }
    }
}

/// A solvable system on the experiment grid: smooth right-hand side with a
/// gyre-like shape (what the barotropic mode sees after spin-up).
pub struct Workload {
    pub layout: Arc<DistLayout>,
    pub world: CommWorld,
    pub op: NinePoint,
    pub rhs: DistVec,
}

impl Workload {
    pub fn new(eg: &ExperimentGrid) -> Self {
        let layout = DistLayout::build(&eg.grid, eg.bx, eg.by);
        let world = CommWorld::serial();
        let op = NinePoint::assemble(&eg.grid, &layout, &world, eg.tau);
        // Smooth multi-scale surface-height tendency.
        let (nx, ny) = (eg.grid.nx as f64, eg.grid.ny as f64);
        let mut x_true = DistVec::zeros(&layout);
        x_true.fill_with(|i, j| {
            let xf = i as f64 / nx * std::f64::consts::TAU;
            let yf = j as f64 / ny * std::f64::consts::PI;
            (2.0 * xf).sin() * yf.sin() + 0.3 * (5.0 * xf).cos() * (3.0 * yf).sin()
        });
        world.halo_update(&mut x_true);
        let mut rhs = DistVec::zeros(&layout);
        op.apply(&world, &x_true, &mut rhs);
        Workload {
            layout,
            world,
            op,
            rhs,
        }
    }

    /// Measure one solver configuration the way POP experiences it: a cold
    /// spin-up solve (discarded), then a warm-started solve against a
    /// shifted right-hand side — each production time step starts from the
    /// previous surface height, which is what the paper's average iteration
    /// counts reflect.
    pub fn measure(&self, choice: SolverChoice, cfg: &SolverConfig) -> MeasuredConfig {
        let setup = SolverSetup::new(choice, &self.op, &self.world);
        let mut x = DistVec::zeros(&self.layout);
        let cold = setup.solve(&self.op, &self.world, &self.rhs, &mut x, cfg);
        assert!(
            cold.converged,
            "{} failed to converge (cold): {cold:?}",
            choice.label()
        );
        // Next step's tendency: the same large-scale field plus a ~5% change
        // in shape, the typical step-to-step evolution of ψ.
        let (nx, ny) = (
            self.layout.decomp.grid_nx as f64,
            self.layout.decomp.grid_ny as f64,
        );
        let mut delta = DistVec::zeros(&self.layout);
        delta.fill_with(|i, j| {
            let xf = i as f64 / nx * std::f64::consts::TAU;
            let yf = j as f64 / ny * std::f64::consts::PI;
            (3.0 * xf + 0.7).sin() * (2.0 * yf).sin()
        });
        let mut rhs2 = self.rhs.clone();
        let scale = 0.05 * self.world.norm2_sq(&self.rhs).sqrt()
            / self.world.norm2_sq(&delta).sqrt().max(1e-300);
        rhs2.axpy(scale, &delta);
        self.world.reset_stats();
        let stats = setup.solve(&self.op, &self.world, &rhs2, &mut x, cfg);
        assert!(
            stats.converged,
            "{} failed to converge (warm): {stats:?}",
            choice.label()
        );
        MeasuredConfig {
            choice,
            stats,
            lanczos_steps: setup.lanczos_steps,
        }
    }

    /// Measure all four paper configurations.
    pub fn measure_paper_set(&self, cfg: &SolverConfig) -> Vec<MeasuredConfig> {
        SolverChoice::PAPER_SET
            .iter()
            .map(|&c| self.measure(c, cfg))
            .collect()
    }
}

/// The solver config the experiments use (production tolerance, POP's
/// check-every-10 cadence).
pub fn production_solver_config() -> SolverConfig {
    SolverConfig {
        tol: 1e-13,
        max_iters: 100_000,
        check_every: 10,
        ..SolverConfig::default()
    }
}

/// Render an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Append a CSV file under `results/`.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        return; // results directory is best-effort
    }
    let path = dir.join(format!("{name}.csv"));
    let Ok(mut f) = std::fs::File::create(&path) else {
        return;
    };
    let _ = writeln!(f, "{}", headers.join(","));
    for row in rows {
        let _ = writeln!(f, "{}", row.join(","));
    }
    println!("[wrote {}]", path.display());
}

/// Two-significant-digit formatting helper for time columns.
pub fn fmt_s(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

//! Minimal wall-clock benchmark harness.
//!
//! The micro-benchmarks ran on criterion before the workspace went
//! dependency-free; this module keeps the same shape — named groups of
//! closures, auto-calibrated inner iteration counts, robust statistics —
//! with nothing but `std::time::Instant`. Medians over a fixed number of
//! samples are reported, so one preempted sample cannot skew a result.

use std::time::Instant;

/// Robust summary of one benchmark: per-call times in nanoseconds.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub name: String,
    pub median_ns: f64,
    pub min_ns: f64,
    pub mean_ns: f64,
    /// Inner calls per sample chosen by calibration.
    pub calls_per_sample: usize,
    pub samples: Vec<f64>,
}

impl Measurement {
    /// Human scale: ns → µs → ms → s.
    pub fn pretty(ns: f64) -> String {
        if ns < 1e3 {
            format!("{ns:.0} ns")
        } else if ns < 1e6 {
            format!("{:.2} µs", ns / 1e3)
        } else if ns < 1e9 {
            format!("{:.3} ms", ns / 1e6)
        } else {
            format!("{:.3} s", ns / 1e9)
        }
    }
}

/// Measure `f`, calibrating the inner loop so one sample lasts roughly
/// `target_sample_ms`, then timing `samples` such batches.
pub fn measure<F: FnMut()>(
    name: &str,
    samples: usize,
    target_sample_ms: f64,
    mut f: F,
) -> Measurement {
    // Warm-up + calibration: run once, scale up until the probe batch takes
    // at least a few milliseconds, then size the real batches from it.
    let mut calls = 1usize;
    let per_call_est;
    loop {
        let t = Instant::now();
        for _ in 0..calls {
            f();
        }
        let el = t.elapsed().as_secs_f64();
        if el > 2e-3 || calls >= 1 << 20 {
            per_call_est = el / calls as f64;
            break;
        }
        calls *= 4;
    }
    let calls_per_sample = ((target_sample_ms / 1e3 / per_call_est.max(1e-12)) as usize).max(1);

    let mut per_call: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..calls_per_sample {
            f();
        }
        per_call.push(t.elapsed().as_secs_f64() * 1e9 / calls_per_sample as f64);
    }
    let mut sorted = per_call.clone();
    sorted.sort_by(f64::total_cmp);
    let median_ns = sorted[sorted.len() / 2];
    let min_ns = sorted[0];
    let mean_ns = per_call.iter().sum::<f64>() / per_call.len() as f64;
    Measurement {
        name: name.to_string(),
        median_ns,
        min_ns,
        mean_ns,
        calls_per_sample,
        samples: per_call,
    }
}

/// A named group of benchmarks printed as one aligned table — the criterion
/// `benchmark_group` shape the benches were written against.
pub struct BenchGroup {
    title: String,
    samples: usize,
    target_sample_ms: f64,
    rows: Vec<Measurement>,
}

impl BenchGroup {
    pub fn new(title: &str) -> Self {
        BenchGroup {
            title: title.to_string(),
            samples: 7,
            target_sample_ms: 20.0,
            rows: Vec::new(),
        }
    }

    /// Fewer/cheaper samples (quick mode or expensive benches).
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples.max(3);
        self
    }

    pub fn target_sample_ms(mut self, ms: f64) -> Self {
        self.target_sample_ms = ms;
        self
    }

    pub fn bench<F: FnMut()>(&mut self, name: &str, f: F) -> &Measurement {
        let m = measure(name, self.samples, self.target_sample_ms, f);
        self.rows.push(m);
        self.rows.last().expect("just pushed")
    }

    /// Print the group table and hand back the measurements.
    pub fn finish(self) -> Vec<Measurement> {
        println!("\n== {} ==", self.title);
        let w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        println!(
            "{:>w$}  {:>12}  {:>12}  {:>12}",
            "name", "median", "min", "mean"
        );
        for r in &self.rows {
            println!(
                "{:>w$}  {:>12}  {:>12}  {:>12}",
                r.name,
                Measurement::pretty(r.median_ns),
                Measurement::pretty(r.min_ns),
                Measurement::pretty(r.mean_ns),
            );
        }
        self.rows
    }
}

/// `--quick` / `--smoke` (or `POP_BENCH_QUICK=1`): smaller grids, fewer
/// samples, for CI smoke runs. Re-exported from the shared argument
/// parser; JSON benches should use [`crate::args::BenchArgs::parse`].
pub use crate::args::quick_requested;

//! Benchmarks of complete barotropic solves, one per solver/preconditioner
//! configuration — the single-node ground truth behind the figures (the
//! distributed wall-time story lives in `pop-perfmodel`).

use pop_bench::timing::{quick_requested, BenchGroup};
use pop_comm::{CommWorld, DistLayout, DistVec};
use pop_core::solvers::SolverConfig;
use pop_grid::Grid;
use pop_ocean::{SolverChoice, SolverSetup};
use pop_stencil::NinePoint;
use std::hint::black_box;

fn main() {
    let quick = quick_requested();
    let (nx, ny, bx, by) = if quick {
        (150usize, 100usize, 30usize, 20usize)
    } else {
        (300, 200, 60, 40)
    };
    let g = Grid::gx01_scaled(7, nx, ny);
    let layout = DistLayout::build(&g, bx, by);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&g, &layout, &world, 1036.8);
    let mut x_true = DistVec::zeros(&layout);
    x_true.fill_with(|i, j| ((i as f64) * 0.07).sin() * ((j as f64) * 0.05).cos());
    world.halo_update(&mut x_true);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&world, &x_true, &mut rhs);
    let cfg = SolverConfig {
        tol: 1e-13,
        max_iters: 50_000,
        check_every: 10,
        ..SolverConfig::default()
    };

    let mut group = BenchGroup::new(&format!("full_solve_{nx}x{ny}"))
        .sample_size(if quick { 3 } else { 7 })
        .target_sample_ms(if quick { 30.0 } else { 120.0 });
    for choice in SolverChoice::PAPER_SET {
        // Setup (preconditioner + Lanczos) outside the timing loop, as in
        // production where it is amortized over dt_count solves per day.
        let setup = SolverSetup::new(choice, &op, &world);
        group.bench(choice.label(), || {
            let mut x = DistVec::zeros(&layout);
            let st = setup.solve(&op, &world, black_box(&rhs), &mut x, &cfg);
            assert!(st.converged);
            black_box(st.iterations);
        });
    }
    group.finish();
}

//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! - EVP sub-block (tile) size: setup and apply cost vs the paper's
//!   stability-bounded sizes.
//! - Reduced vs full stencil: the paper's §4.3 claim that dropping the small
//!   N/S/E/W couplings halves the preconditioner cost.
//! - EVP vs dense block-LU: the `O(n²)` vs `O(n⁴)` apply-cost separation
//!   that justifies EVP in the first place.
//! - Convergence-check cadence: the cost of checking every iteration vs
//!   every 10 (the paper's production choice).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pop_comm::{CommWorld, DistLayout, DistVec};
use pop_core::precond::{BlockEvp, BlockLu, Preconditioner};
use pop_core::solvers::{ChronGear, LinearSolver, SolverConfig};
use pop_core::precond::Diagonal;
use pop_grid::Grid;
use pop_stencil::NinePoint;
use std::hint::black_box;

struct Fixture {
    world: CommWorld,
    op: NinePoint,
    r: DistVec,
    z: DistVec,
}

fn fixture() -> Fixture {
    let g = Grid::gx01_scaled(7, 240, 160);
    let layout = DistLayout::build(&g, 48, 40);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&g, &layout, &world, 800.0);
    let mut r = DistVec::zeros(&layout);
    r.fill_with(|i, j| ((i * 13 + j * 5) as f64 * 0.02).sin());
    let z = DistVec::zeros(&layout);
    Fixture { world, op, r, z }
}

fn bench_tile_size(c: &mut Criterion) {
    let mut f = fixture();
    let mut group = c.benchmark_group("evp_tile_size_apply");
    for tile in [4usize, 6, 8, 10, 12] {
        let pre = BlockEvp::new(&f.op, tile, true);
        group.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |b, _| {
            b.iter(|| pre.apply(&f.world, black_box(&f.r), &mut f.z))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("evp_tile_size_setup");
    group.sample_size(10);
    for tile in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |b, _| {
            b.iter(|| black_box(BlockEvp::new(&f.op, tile, true)))
        });
    }
    group.finish();
}

fn bench_reduced_vs_full_vs_lu(c: &mut Criterion) {
    let mut f = fixture();
    let reduced = BlockEvp::new(&f.op, 8, true);
    let full = BlockEvp::new(&f.op, 8, false);
    let lu = BlockLu::new(&f.op, 8, true);
    let mut group = c.benchmark_group("evp_variants_apply");
    for (name, pre) in [
        ("reduced", &reduced as &dyn Preconditioner),
        ("full", &full),
        ("block_lu", &lu),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| pre.apply(&f.world, black_box(&f.r), &mut f.z))
        });
    }
    group.finish();
}

fn bench_check_cadence(c: &mut Criterion) {
    let f = fixture();
    let diag = Diagonal::new(&f.op);
    let mut x_true = DistVec::zeros(&f.r.layout);
    x_true.fill_with(|i, j| ((i as f64) * 0.04).cos() * ((j as f64) * 0.06).sin());
    f.world.halo_update(&mut x_true);
    let mut rhs = DistVec::zeros(&f.r.layout);
    f.op.apply(&f.world, &x_true, &mut rhs);

    let mut group = c.benchmark_group("check_cadence_chrongear");
    group.sample_size(10);
    for every in [1usize, 10, 50] {
        let cfg = SolverConfig {
            tol: 1e-12,
            max_iters: 50_000,
            check_every: every,
        };
        group.bench_with_input(BenchmarkId::from_parameter(every), &every, |b, _| {
            b.iter(|| {
                let mut x = DistVec::zeros(&rhs.layout);
                let st = ChronGear.solve(&f.op, &diag, &f.world, black_box(&rhs), &mut x, &cfg);
                assert!(st.converged);
                black_box(st.comm.allreduces)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tile_size, bench_reduced_vs_full_vs_lu, bench_check_cadence
}
criterion_main!(benches);

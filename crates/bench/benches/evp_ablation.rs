//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! - EVP sub-block (tile) size: setup and apply cost vs the paper's
//!   stability-bounded sizes.
//! - Reduced vs full stencil: the paper's §4.3 claim that dropping the small
//!   N/S/E/W couplings halves the preconditioner cost.
//! - EVP vs dense block-LU: the `O(n²)` vs `O(n⁴)` apply-cost separation
//!   that justifies EVP in the first place.
//! - Convergence-check cadence: the cost of checking every iteration vs
//!   every 10 (the paper's production choice).

use pop_bench::timing::{quick_requested, BenchGroup};
use pop_comm::{CommWorld, DistLayout, DistVec};
use pop_core::precond::Diagonal;
use pop_core::precond::{BlockEvp, BlockLu, Preconditioner};
use pop_core::solvers::{ChronGear, LinearSolver, SolverConfig};
use pop_grid::Grid;
use pop_stencil::NinePoint;
use std::hint::black_box;

struct Fixture {
    world: CommWorld,
    op: NinePoint,
    r: DistVec,
    z: DistVec,
}

fn fixture(quick: bool) -> Fixture {
    let (nx, ny, bx, by) = if quick {
        (120usize, 80usize, 24usize, 20usize)
    } else {
        (240, 160, 48, 40)
    };
    let g = Grid::gx01_scaled(7, nx, ny);
    let layout = DistLayout::build(&g, bx, by);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&g, &layout, &world, 800.0);
    let mut r = DistVec::zeros(&layout);
    r.fill_with(|i, j| ((i * 13 + j * 5) as f64 * 0.02).sin());
    let z = DistVec::zeros(&layout);
    Fixture { world, op, r, z }
}

fn bench_tile_size(quick: bool, samples: usize) {
    let mut f = fixture(quick);
    let mut group = BenchGroup::new("evp_tile_size_apply").sample_size(samples);
    for tile in [4usize, 6, 8, 10, 12] {
        let pre = BlockEvp::new(&f.op, tile, true);
        group.bench(&tile.to_string(), || {
            pre.apply(&f.world, black_box(&f.r), &mut f.z)
        });
    }
    group.finish();

    let mut group = BenchGroup::new("evp_tile_size_setup")
        .sample_size(samples.min(5))
        .target_sample_ms(40.0);
    for tile in [4usize, 8, 12] {
        group.bench(&tile.to_string(), || {
            black_box(BlockEvp::new(&f.op, tile, true));
        });
    }
    group.finish();
}

fn bench_reduced_vs_full_vs_lu(quick: bool, samples: usize) {
    let mut f = fixture(quick);
    let reduced = BlockEvp::new(&f.op, 8, true);
    let full = BlockEvp::new(&f.op, 8, false);
    let lu = BlockLu::new(&f.op, 8, true);
    let mut group = BenchGroup::new("evp_variants_apply").sample_size(samples);
    for (name, pre) in [
        ("reduced", &reduced as &dyn Preconditioner),
        ("full", &full),
        ("block_lu", &lu),
    ] {
        group.bench(name, || pre.apply(&f.world, black_box(&f.r), &mut f.z));
    }
    group.finish();
}

fn bench_check_cadence(quick: bool, samples: usize) {
    let f = fixture(quick);
    let diag = Diagonal::new(&f.op);
    let mut x_true = DistVec::zeros(&f.r.layout);
    x_true.fill_with(|i, j| ((i as f64) * 0.04).cos() * ((j as f64) * 0.06).sin());
    f.world.halo_update(&mut x_true);
    let mut rhs = DistVec::zeros(&f.r.layout);
    f.op.apply(&f.world, &x_true, &mut rhs);

    let mut group = BenchGroup::new("check_cadence_chrongear")
        .sample_size(samples.min(5))
        .target_sample_ms(60.0);
    for every in [1usize, 10, 50] {
        let cfg = SolverConfig {
            tol: 1e-12,
            max_iters: 50_000,
            check_every: every,
            ..SolverConfig::default()
        };
        group.bench(&every.to_string(), || {
            let mut x = DistVec::zeros(&rhs.layout);
            let st = ChronGear.solve(&f.op, &diag, &f.world, black_box(&rhs), &mut x, &cfg);
            assert!(st.converged);
            black_box(st.comm.allreduces);
        });
    }
    group.finish();
}

fn main() {
    let quick = quick_requested();
    let samples = if quick { 3 } else { 7 };
    bench_tile_size(quick, samples);
    bench_reduced_vs_full_vs_lu(quick, samples);
    bench_check_cadence(quick, samples);
}

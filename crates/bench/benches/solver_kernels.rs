//! Criterion micro-benchmarks of the kernels that make up one solver
//! iteration: matrix–vector product, halo update, plain and fused dot
//! products, and the preconditioner applications. These are the `θ`, `β`
//! and `T_p` ingredients of the paper's cost model, measured for real.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pop_comm::{CommWorld, DistLayout, DistVec};
use pop_core::precond::{BlockEvp, BlockLu, Diagonal, Preconditioner};
use pop_grid::Grid;
use pop_stencil::NinePoint;
use std::hint::black_box;

struct Fixture {
    world: CommWorld,
    op: NinePoint,
    x: DistVec,
    y: DistVec,
}

fn fixture(nx: usize, ny: usize) -> Fixture {
    let g = Grid::gx01_scaled(7, nx, ny);
    let layout = DistLayout::build(&g, nx / 5, ny / 5);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&g, &layout, &world, 400.0);
    let mut x = DistVec::zeros(&layout);
    x.fill_with(|i, j| ((i * 7 + j * 3) as f64 * 0.01).sin());
    world.halo_update(&mut x);
    let y = DistVec::zeros(&layout);
    Fixture { world, op, x, y }
}

fn bench_kernels(c: &mut Criterion) {
    let mut f = fixture(300, 200);
    let mut group = c.benchmark_group("kernels_300x200");

    group.bench_function("matvec", |b| {
        let x = f.x.clone();
        b.iter(|| {
            f.op.apply(&f.world, black_box(&x), &mut f.y);
        })
    });
    group.bench_function("halo_update", |b| {
        b.iter(|| {
            f.world.halo_update(black_box(&mut f.x));
        })
    });
    group.bench_function("dot", |b| {
        b.iter(|| black_box(f.world.dot(&f.x, &f.y)))
    });
    group.bench_function("fused_dot2", |b| {
        // ChronGear's single-reduction pair (steps 7-9 of Algorithm 1).
        b.iter(|| black_box(f.world.dot_many(&[(&f.x, &f.y), (&f.y, &f.y)])))
    });
    group.bench_function("axpy", |b| {
        let x = f.x.clone();
        b.iter(|| f.y.axpy(black_box(1.0e-9), &x))
    });
    group.finish();
}

fn bench_preconditioners(c: &mut Criterion) {
    let mut f = fixture(300, 200);
    let diag = Diagonal::new(&f.op);
    let evp = BlockEvp::with_defaults(&f.op);
    let evp_full = BlockEvp::new(&f.op, 8, false);
    let lu = BlockLu::new(&f.op, 8, true);
    let mut group = c.benchmark_group("precond_apply_300x200");
    for (name, pre) in [
        ("diagonal", &diag as &dyn Preconditioner),
        ("evp_reduced", &evp),
        ("evp_full", &evp_full),
        ("block_lu", &lu),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| pre.apply(&f.world, black_box(&f.x), &mut f.y))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels, bench_preconditioners
}
criterion_main!(benches);

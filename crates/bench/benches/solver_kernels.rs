//! Micro-benchmarks of the kernels that make up one solver iteration:
//! matrix–vector product, halo update, plain and fused dot products, fused
//! block sweeps, and the preconditioner applications. These are the `θ`, `β`
//! and `T_p` ingredients of the paper's cost model, measured for real.

use pop_bench::timing::{quick_requested, BenchGroup};
use pop_comm::{CommWorld, DistLayout, DistVec, MAX_SWEEP_PARTIALS};
use pop_core::precond::{BlockEvp, BlockLu, Diagonal, Preconditioner};
use pop_grid::Grid;
use pop_stencil::NinePoint;
use std::hint::black_box;

struct Fixture {
    world: CommWorld,
    op: NinePoint,
    x: DistVec,
    y: DistVec,
}

fn fixture(nx: usize, ny: usize) -> Fixture {
    let g = Grid::gx01_scaled(7, nx, ny);
    let layout = DistLayout::build(&g, nx / 5, ny / 5);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&g, &layout, &world, 400.0);
    let mut x = DistVec::zeros(&layout);
    x.fill_with(|i, j| ((i * 7 + j * 3) as f64 * 0.01).sin());
    world.halo_update(&mut x);
    let y = DistVec::zeros(&layout);
    Fixture { world, op, x, y }
}

fn bench_kernels(nx: usize, ny: usize, samples: usize) {
    let mut f = fixture(nx, ny);
    let mut group = BenchGroup::new(&format!("kernels_{nx}x{ny}")).sample_size(samples);

    {
        let x = f.x.clone();
        let (op, world, y) = (&f.op, &f.world, &mut f.y);
        group.bench("matvec", || {
            op.apply(world, black_box(&x), y);
        });
        group.bench("matvec_reference", || {
            op.apply_reference(world, black_box(&x), y);
        });
    }
    group.bench("halo_update", || {
        f.world.halo_update(black_box(&mut f.x));
    });
    group.bench("dot", || {
        black_box(f.world.dot(&f.x, &f.y));
    });
    group.bench("fused_dot2", || {
        // ChronGear's single-reduction pair (steps 7-9 of Algorithm 1).
        black_box(f.world.dot_many(&[(&f.x, &f.y), (&f.y, &f.y)]));
    });
    group.bench("axpy", || {
        let x = &f.x;
        f.y.axpy(black_box(1.0e-9), x);
    });
    {
        // One fused sweep doing matvec + dot partial in a single pass over
        // each block — the primitive the fused solver loops are built on.
        let x = f.x.clone();
        let layout = std::sync::Arc::clone(&x.layout);
        let (op, world, y) = (&f.op, &f.world, &mut f.y);
        group.bench("fused_matvec_dot", || {
            let d = world.for_each_block_fused([&mut *y], |bk, [yb]| {
                let mask = &layout.masks[bk];
                op.apply_block_into(bk, &x.blocks[bk], yb, mask);
                let nx = yb.nx;
                let mut acc = 0.0;
                for j in 0..yb.ny {
                    let xr = x.blocks[bk].interior_row(j);
                    let yr = yb.interior_row(j);
                    let mrow = &mask[j * nx..(j + 1) * nx];
                    for i in 0..nx {
                        if mrow[i] != 0 {
                            acc += xr[i] * yr[i];
                        }
                    }
                }
                let mut pt = [0.0; MAX_SWEEP_PARTIALS];
                pt[0] = acc;
                pt
            });
            black_box(d[0]);
        });
    }
    group.finish();
}

fn bench_preconditioners(nx: usize, ny: usize, samples: usize) {
    let mut f = fixture(nx, ny);
    let diag = Diagonal::new(&f.op);
    let evp = BlockEvp::with_defaults(&f.op);
    let evp_full = BlockEvp::new(&f.op, 8, false);
    let lu = BlockLu::new(&f.op, 8, true);
    let mut group = BenchGroup::new(&format!("precond_apply_{nx}x{ny}")).sample_size(samples);
    for (name, pre) in [
        ("diagonal", &diag as &dyn Preconditioner),
        ("evp_reduced", &evp),
        ("evp_full", &evp_full),
        ("block_lu", &lu),
    ] {
        group.bench(name, || pre.apply(&f.world, black_box(&f.x), &mut f.y));
    }
    group.finish();
}

fn main() {
    let (nx, ny, samples) = if quick_requested() {
        (150, 100, 3)
    } else {
        (300, 200, 7)
    };
    bench_kernels(nx, ny, samples);
    bench_preconditioners(nx, ny, samples);
}

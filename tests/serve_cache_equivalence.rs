//! Cache transparency: warm-cache solves are bitwise identical to
//! cold-setup solves, for every solver × {diag, EVP}, and cache eviction
//! never corrupts an in-flight batch.
//!
//! The serve layer's correctness contract (DESIGN.md §13) is that the
//! operator-state cache, the coalescing stage, and the dispatch worker
//! pool are *invisible* in the results: a request's solution must carry
//! the same bits whether its setup state was built cold, fetched warm, or
//! evicted mid-flight, whether it rode a width-1 or width-k batch, and
//! whether one worker or four dispatched it. The standalone reference
//! here is a direct `solve_batch_comm` call on a freshly built
//! `OperatorState` — no service, no cache, no queue.
//!
//! Tests that leave `ServiceConfig::workers` at 0 inherit the pool size
//! from `POP_SERVE_WORKERS` (CI runs the suite at 1 and 4); the explicit
//! sweep test pins `workers ∈ {1, 2, 4}` regardless of environment.

use pop_baro::prelude::*;
use pop_baro::serve::{ServiceConfig, SolveRequest, SolverService, SolverSpec, Ticket};
use pop_core::setup::{OperatorState, PrecondSpec};
use pop_core::solvers::{BatchCommSolver, BatchWorkspace, SolveStats};
use std::sync::Arc;
use std::time::Duration;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn noise(seed: u64, i: usize, j: usize) -> f64 {
    let mut s = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ ((j as u64) << 32);
    let bits = splitmix64(&mut s);
    (bits >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

struct Problem {
    layout: Arc<pop_baro::comm::DistLayout>,
    op: Arc<NinePoint>,
}

fn problem(grid_seed: u64, tau: f64) -> Problem {
    let grid = Grid::gx1_scaled(grid_seed, 48, 40);
    let layout = DistLayout::build(&grid, 12, 10);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, tau);
    Problem {
        layout,
        op: Arc::new(op),
    }
}

/// An RHS in the operator's range so every solver converges crisply.
fn rhs(p: &Problem, seed: u64) -> DistVec {
    let world = CommWorld::serial();
    let mut field = DistVec::zeros(&p.layout);
    field.fill_with(|i, j| noise(seed, i, j));
    world.halo_update(&mut field);
    let mut b = DistVec::zeros(&p.layout);
    p.op.apply(&world, &field, &mut b);
    b
}

const TOL: f64 = 1e-11;

fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        start_paused: true,
        base: SolverConfig {
            tol: TOL,
            max_iters: 20_000,
            ..SolverConfig::default()
        },
        ..ServiceConfig::default()
    }
}

/// Standalone reference: cold `OperatorState`, direct batched engine call
/// at width 1 — exactly what the service claims to be equivalent to.
fn standalone(
    p: &Problem,
    spec: SolverSpec,
    precond: PrecondSpec,
    b: &DistVec,
) -> (DistVec, SolveStats) {
    let world = CommWorld::serial();
    let lanczos = LanczosConfig {
        tol: 0.01,
        max_steps: 300,
        ..Default::default()
    };
    let state = OperatorState::build(
        &p.op,
        precond,
        spec.needs_bounds().then_some(&lanczos),
        &world,
    );
    let cfg = SolverConfig {
        tol: TOL,
        max_iters: 20_000,
        ..SolverConfig::default()
    };
    let mut x = DistVec::zeros(&p.layout);
    let mut ws = BatchWorkspace::new();
    let pre = state.precond.as_ref();
    let stats = match spec {
        SolverSpec::ClassicPcg => {
            ClassicPcg.solve_batch_comm(&p.op, pre, &world, &[b], &mut [&mut x], &cfg, &mut ws)
        }
        SolverSpec::ChronGear => {
            ChronGear.solve_batch_comm(&p.op, pre, &world, &[b], &mut [&mut x], &cfg, &mut ws)
        }
        SolverSpec::PipelinedCg => {
            PipelinedCg.solve_batch_comm(&p.op, pre, &world, &[b], &mut [&mut x], &cfg, &mut ws)
        }
        SolverSpec::Pcsi => Pcsi::new(state.bounds.unwrap()).solve_batch_comm(
            &p.op,
            pre,
            &world,
            &[b],
            &mut [&mut x],
            &cfg,
            &mut ws,
        ),
    };
    (x, stats.into_iter().next().unwrap())
}

fn assert_bits_equal(a: &DistVec, b: &DistVec, what: &str) {
    for (ba, bb) in a.blocks.iter().zip(b.blocks.iter()) {
        for j in 0..ba.ny {
            for (va, vb) in ba.interior_row(j).iter().zip(bb.interior_row(j)) {
                assert_eq!(va.to_bits(), vb.to_bits(), "{what}: solution bits differ");
            }
        }
    }
}

fn assert_stats_equal(a: &SolveStats, b: &SolveStats, what: &str) {
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.converged, b.converged, "{what}: converged");
    assert_eq!(a.restarts, b.restarts, "{what}: restarts");
    assert_eq!(
        a.final_relative_residual.to_bits(),
        b.final_relative_residual.to_bits(),
        "{what}: final residual bits"
    );
}

const ALL: [(SolverSpec, PrecondSpec); 10] = [
    (SolverSpec::ChronGear, PrecondSpec::Diagonal),
    (SolverSpec::ChronGear, PrecondSpec::Evp),
    (SolverSpec::ChronGear, PrecondSpec::Mg),
    (SolverSpec::Pcsi, PrecondSpec::Diagonal),
    (SolverSpec::Pcsi, PrecondSpec::Evp),
    (SolverSpec::Pcsi, PrecondSpec::Mg),
    (SolverSpec::ClassicPcg, PrecondSpec::Diagonal),
    (SolverSpec::ClassicPcg, PrecondSpec::Evp),
    (SolverSpec::PipelinedCg, PrecondSpec::Diagonal),
    (SolverSpec::PipelinedCg, PrecondSpec::Evp),
];

/// For all four solvers × {diag, EVP} (+ MG on the production pair): a
/// cold-cache serve, a warm-cache
/// serve, and the standalone solve all produce identical bits and stats.
#[test]
fn warm_cache_solves_bitwise_identical_to_cold_setup() {
    let p = problem(41, 6000.0);
    let b = rhs(&p, 0xCAFE);
    for (spec, precond) in ALL {
        let what = format!("{}+{}", spec.label(), precond.label());
        let (x_ref, st_ref) = standalone(&p, spec, precond, &b);
        assert!(st_ref.converged, "{what}: reference did not converge");

        let svc = SolverService::start(ServiceConfig {
            start_paused: false,
            ..service_cfg()
        });
        let req = |tenant| {
            SolveRequest::new(tenant, Arc::clone(&p.op), spec, precond, b.clone()).with_tol(TOL)
        };
        let cold = svc.submit(req(0)).unwrap().wait().unwrap();
        let warm = svc.submit(req(0)).unwrap().wait().unwrap();
        assert!(!cold.cache_hit, "{what}: first serve must build cold");
        assert!(warm.cache_hit, "{what}: second serve must hit the cache");
        assert_bits_equal(&cold.x, &x_ref, &format!("{what} cold vs standalone"));
        assert_bits_equal(&warm.x, &x_ref, &format!("{what} warm vs standalone"));
        assert_stats_equal(&cold.stats, &st_ref, &format!("{what} cold vs standalone"));
        assert_stats_equal(&warm.stats, &st_ref, &format!("{what} warm vs standalone"));
    }
}

/// Coalesced warm batches: distinct RHS against one warm operator ride one
/// multi-RHS batch, and each lane still matches its standalone solve.
#[test]
fn warm_batched_lanes_match_standalone_solves() {
    let p = problem(42, 7000.0);
    for (spec, precond) in [
        (SolverSpec::Pcsi, PrecondSpec::Evp),
        (SolverSpec::ChronGear, PrecondSpec::Diagonal),
    ] {
        let what = format!("{}+{}", spec.label(), precond.label());
        let bs: Vec<DistVec> = (0..3).map(|i| rhs(&p, 0xB00 + i)).collect();
        let svc = SolverService::start(service_cfg());
        // Warm the cache first (paused service: warming submit runs after
        // resume; use a separate unpaused warmup service round instead).
        svc.resume();
        let _ = svc
            .submit(
                SolveRequest::new(0, Arc::clone(&p.op), spec, precond, bs[0].clone()).with_tol(TOL),
            )
            .unwrap()
            .wait()
            .unwrap();
        // Re-pause is not supported; stage the burst through a fresh
        // paused service sharing nothing — instead verify batching via
        // rapid submission while the scheduler is busy with a decoy.
        let decoy = svc
            .submit(
                SolveRequest::new(9, Arc::clone(&p.op), spec, precond, bs[0].clone()).with_tol(TOL),
            )
            .unwrap();
        let tickets: Vec<Ticket> = bs
            .iter()
            .map(|b| {
                svc.submit(
                    SolveRequest::new(0, Arc::clone(&p.op), spec, precond, b.clone()).with_tol(TOL),
                )
                .unwrap()
            })
            .collect();
        let _ = decoy.wait().unwrap();
        for (b, t) in bs.iter().zip(tickets) {
            let resp = t.wait().unwrap();
            assert!(resp.cache_hit, "{what}: warm traffic must hit");
            let (x_ref, st_ref) = standalone(&p, spec, precond, b);
            assert_bits_equal(&resp.x, &x_ref, &format!("{what} lane vs standalone"));
            assert_stats_equal(&resp.stats, &st_ref, &format!("{what} lane vs standalone"));
        }
    }
}

/// Eviction during flight: a capacity-1 cache thrashed by alternating
/// operators keeps producing correct, bit-identical results — the `Arc`'d
/// state stays alive for whatever batch holds it.
#[test]
fn eviction_never_corrupts_in_flight_batches() {
    let p1 = problem(43, 5000.0);
    let p2 = problem(44, 9000.0);
    let spec = SolverSpec::Pcsi;
    let precond = PrecondSpec::Evp;
    let svc = SolverService::start(ServiceConfig {
        cache_capacity: 1,
        ..service_cfg()
    });
    let mut tickets = Vec::new();
    let mut refs = Vec::new();
    for (i, p) in [&p1, &p2, &p1, &p2, &p1].iter().enumerate() {
        let b = rhs(p, 0xE0 + i as u64);
        refs.push(standalone(p, spec, precond, &b));
        tickets.push(
            svc.submit(
                SolveRequest::new(i as u32, Arc::clone(&p.op), spec, precond, b).with_tol(TOL),
            )
            .unwrap(),
        );
    }
    svc.resume();
    for (t, (x_ref, st_ref)) in tickets.into_iter().zip(refs) {
        let resp = t.wait().unwrap();
        assert_bits_equal(&resp.x, &x_ref, "evicting cache vs standalone");
        assert_stats_equal(&resp.stats, &st_ref, "evicting cache vs standalone");
    }
    let cache = svc.shutdown();
    assert!(
        cache.evictions >= 1,
        "capacity-1 cache under two operators must evict"
    );
}

/// Arrival order is invisible: the same request set served in different
/// orders (and therefore potentially different batch compositions) yields
/// the same per-request bits.
#[test]
fn arrival_order_does_not_change_results() {
    let p = problem(45, 6500.0);
    let spec = SolverSpec::ChronGear;
    let precond = PrecondSpec::Evp;
    let bs: Vec<DistVec> = (0..4).map(|i| rhs(&p, 0xAA + i)).collect();

    let serve_in_order = |order: &[usize]| -> Vec<DistVec> {
        let svc = SolverService::start(service_cfg());
        let tickets: Vec<(usize, Ticket)> = order
            .iter()
            .map(|&i| {
                (
                    i,
                    svc.submit(
                        SolveRequest::new(0, Arc::clone(&p.op), spec, precond, bs[i].clone())
                            .with_tol(TOL),
                    )
                    .unwrap(),
                )
            })
            .collect();
        svc.resume();
        let mut out: Vec<Option<DistVec>> = (0..bs.len()).map(|_| None).collect();
        for (i, t) in tickets {
            out[i] = Some(t.wait().unwrap().x);
        }
        out.into_iter().map(|x| x.unwrap()).collect()
    };

    let forward = serve_in_order(&[0, 1, 2, 3]);
    let shuffled = serve_in_order(&[2, 0, 3, 1]);
    for (i, (a, b)) in forward.iter().zip(&shuffled).enumerate() {
        assert_bits_equal(a, b, &format!("request {i} under different arrival orders"));
    }
}

/// Worker count is invisible: the same staged multi-operator,
/// multi-class burst served by 1, 2, and 4 dispatch workers yields the
/// same per-request bits — which also all match the standalone solves.
/// Parallel dispatch may change batch compositions and completion order;
/// it must never change a single result bit.
#[test]
fn worker_counts_are_bitwise_invisible() {
    use pop_baro::serve::Priority;
    let probs = [problem(47, 5500.0), problem(48, 8000.0)];
    let spec = SolverSpec::Pcsi;
    let precond = PrecondSpec::Evp;
    let bs: Vec<(usize, DistVec)> = (0..6).map(|i| (i % 2, rhs(&probs[i % 2], 0xD0 + i as u64))).collect();
    let refs: Vec<DistVec> = bs
        .iter()
        .map(|(pi, b)| standalone(&probs[*pi], spec, precond, b).0)
        .collect();

    for workers in [1usize, 2, 4] {
        let svc = SolverService::start(ServiceConfig {
            workers,
            ..service_cfg()
        });
        let tickets: Vec<Ticket> = bs
            .iter()
            .enumerate()
            .map(|(i, (pi, b))| {
                let class = if i % 3 == 0 {
                    Priority::Batch
                } else {
                    Priority::Interactive
                };
                svc.submit(
                    SolveRequest::new(i as u32, Arc::clone(&probs[*pi].op), spec, precond, b.clone())
                        .with_tol(TOL)
                        .with_priority(class),
                )
                .unwrap()
            })
            .collect();
        svc.resume();
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t.wait().unwrap();
            assert!(resp.stats.converged);
            assert_bits_equal(
                &resp.x,
                &refs[i],
                &format!("request {i} at {workers} workers vs standalone"),
            );
        }
    }
}

/// Deadline shedding under a stalled scheduler leaves correctness intact:
/// survivors still match standalone solves bit-for-bit.
#[test]
fn shed_and_served_mix_preserves_correctness() {
    let p = problem(46, 4500.0);
    let spec = SolverSpec::ChronGear;
    let precond = PrecondSpec::Diagonal;
    let svc = SolverService::start(service_cfg());
    let b_doomed = rhs(&p, 1);
    let b_ok = rhs(&p, 2);
    let doomed = svc
        .submit(
            SolveRequest::new(0, Arc::clone(&p.op), spec, precond, b_doomed)
                .with_tol(TOL)
                .with_deadline(Duration::from_millis(1)),
        )
        .unwrap();
    let ok = svc
        .submit(SolveRequest::new(1, Arc::clone(&p.op), spec, precond, b_ok.clone()).with_tol(TOL))
        .unwrap();
    std::thread::sleep(Duration::from_millis(15));
    svc.resume();
    assert!(doomed.wait().is_err(), "expired deadline must shed");
    let resp = ok.wait().unwrap();
    let (x_ref, _) = standalone(&p, spec, precond, &b_ok);
    assert_bits_equal(&resp.x, &x_ref, "survivor after shedding vs standalone");
}

//! The auto-tuned preconditioner selection is a pure function.
//!
//! DESIGN.md §15.3 promises that a [`PrecondSelector`] decision depends on
//! exactly three inputs — the operator fingerprint, the Lanczos condition
//! estimates, and the recorded history for that fingerprint — and on
//! nothing else: not wall time, not allocation addresses, not iteration
//! order of any map. This suite treats that as a property and checks it
//! over a seeded family of operators: identical inputs give identical
//! selections (down to the score bits), an empty history store behaves
//! exactly like no store at all (the condition-estimate fallback), and
//! history entries only ever influence the fingerprint they were recorded
//! under.

use pop_baro::prelude::*;
use pop_core::fingerprint::operator_fingerprint;

mod common;
use common::{problem_on, splitmix64};

/// Everything a `Selection` exposes, flattened to exactly comparable bits.
fn flatten(sel: &Selection) -> (u64, PrecondSpec, bool, Vec<(u64, u64, u64)>) {
    let scores = sel
        .scores
        .iter()
        .map(|s| {
            (
                s.mean_iterations.unwrap_or(-1.0).to_bits(),
                s.sqrt_condition.unwrap_or(-1.0).to_bits(),
                s.cost.unwrap_or(-1.0).to_bits(),
            )
        })
        .collect();
    (sel.fingerprint, sel.spec, sel.used_history, scores)
}

/// The seeded operator family: three grids × three timesteps, spanning the
/// φ-dominated, mixed, and Laplacian-dominated regimes.
fn operators() -> Vec<(String, Grid, usize, usize, f64)> {
    let mut ops = Vec::new();
    for (gname, grid, bx, by) in [
        ("gx01", Grid::gx01_scaled(11, 90, 60), 18usize, 20usize),
        ("gx1", Grid::gx1_scaled(23, 40, 32), 10, 8),
        ("basin", Grid::idealized_basin(48, 48, 4000.0, 100_000.0), 48, 48),
    ] {
        for tau in [30.0, 1800.0, 34560.0] {
            ops.push((format!("{gname} tau={tau}"), grid.clone(), bx, by, tau));
        }
    }
    ops
}

/// Identical `(fingerprint, bounds, history)` inputs must yield identical
/// selections — across repeated calls, across a freshly built selector, and
/// across a freshly assembled (but equal) operator.
#[test]
fn identical_inputs_give_identical_selections() {
    for (name, grid, bx, by, tau) in operators() {
        let world = CommWorld::serial();
        let p = problem_on(&grid, bx, by, tau, 7);
        let fp = operator_fingerprint(&p.op);

        // A seeded history: MG measured best on half the fingerprints,
        // diagonal on the rest, plus noise records for other fingerprints.
        let history = SolveHistory::new();
        let mut s = fp;
        for label in ["diag", "evp", "mg"] {
            let its = 10 + (splitmix64(&mut s) % 400) as usize;
            history.record(fp, label, its);
            history.record(fp ^ 0xDEAD_BEEF, label, 1);
        }

        for hist in [None, Some(&history)] {
            let selector = PrecondSelector::default();
            let base = selector.select(&p.op, &world, hist);
            assert_eq!(base.fingerprint, fp, "{name}: fingerprint mismatch");
            assert_eq!(
                base.used_history,
                hist.is_some(),
                "{name}: history mode mismatch"
            );
            // Repeat with the same selector, a new selector, and a freshly
            // assembled operator: all bit-identical.
            let again = selector.select(&p.op, &world, hist);
            let fresh_selector = PrecondSelector::default().select(&p.op, &world, hist);
            let p2 = problem_on(&grid, bx, by, tau, 7);
            let fresh_op = PrecondSelector::default().select(&p2.op, &world, hist);
            for (arm, got) in [
                ("repeat", again),
                ("fresh selector", fresh_selector),
                ("fresh operator", fresh_op),
            ] {
                assert_eq!(
                    flatten(&got),
                    flatten(&base),
                    "{name}: {arm} selection diverged"
                );
            }
        }
    }
}

/// An empty history store is indistinguishable from no store: both take the
/// condition-estimate fallback and land on the same spec with the same
/// √κ-based scores.
#[test]
fn empty_history_falls_back_to_condition_estimates() {
    for (name, grid, bx, by, tau) in operators() {
        let world = CommWorld::serial();
        let p = problem_on(&grid, bx, by, tau, 7);
        let selector = PrecondSelector::default();
        let empty = SolveHistory::new();
        let with_empty = selector.select(&p.op, &world, Some(&empty));
        let without = selector.select(&p.op, &world, None);
        assert!(!with_empty.used_history, "{name}: empty store counted as history");
        assert_eq!(
            flatten(&with_empty),
            flatten(&without),
            "{name}: empty store diverged from no store"
        );
        for s in &with_empty.scores {
            assert!(
                s.sqrt_condition.is_some() && s.mean_iterations.is_none(),
                "{name}: fallback must rank by condition estimates only"
            );
        }
    }
}

/// History recorded under other fingerprints never leaks into a selection:
/// adding foreign records leaves the decision bit-identical to no history.
#[test]
fn foreign_fingerprint_history_is_inert() {
    let (_, grid, bx, by, tau) = &operators()[4];
    let world = CommWorld::serial();
    let p = problem_on(grid, *bx, *by, *tau, 7);
    let fp = operator_fingerprint(&p.op);
    let selector = PrecondSelector::default();
    let foreign = SolveHistory::new();
    for k in 1..=16u64 {
        foreign.record(fp.wrapping_add(k), "mg", 1);
        foreign.record(fp.wrapping_mul(0x9e37_79b9).wrapping_add(k), "diag", 90_000);
    }
    let with_foreign = selector.select(&p.op, &world, Some(&foreign));
    let without = selector.select(&p.op, &world, None);
    assert!(!with_foreign.used_history);
    assert_eq!(flatten(&with_foreign), flatten(&without));
}

/// In history mode the ranking is `mean iterations × per-iteration cost`
/// over recorded candidates only: a measured-cheap MG must win even when
/// the condition estimate would have gone elsewhere, and unrecorded
/// candidates must never be ranked.
#[test]
fn measured_history_overrides_condition_estimates_deterministically() {
    let (_, grid, bx, by, tau) = &operators()[1];
    let world = CommWorld::serial();
    let p = problem_on(grid, *bx, *by, *tau, 7);
    let fp = operator_fingerprint(&p.op);
    let selector = PrecondSelector::default();
    let history = SolveHistory::new();
    history.record(fp, "diag", 50_000);
    history.record(fp, "mg", 2);
    let sel = selector.select(&p.op, &world, Some(&history));
    assert!(sel.used_history);
    assert_eq!(sel.spec, PrecondSpec::Mg, "measured-cheap MG must win");
    let evp = sel
        .scores
        .iter()
        .find(|s| s.spec == PrecondSpec::Evp)
        .expect("evp is a default candidate");
    assert!(evp.cost.is_none(), "unrecorded candidate must not be ranked");
    // Same store contents rebuilt from scratch → same decision.
    let rebuilt = SolveHistory::new();
    rebuilt.record(fp, "diag", 50_000);
    rebuilt.record(fp, "mg", 2);
    let again = selector.select(&p.op, &world, Some(&rebuilt));
    assert_eq!(flatten(&again), flatten(&sel));
}

//! Cross-crate integration tests: solvers × preconditioners × grids ×
//! decompositions, exercised through the public `pop-baro` API exactly as a
//! downstream user would.

use pop_baro::prelude::*;

/// A manufactured problem on any grid.
struct Problem {
    layout: std::sync::Arc<pop_baro::comm::DistLayout>,
    world: CommWorld,
    op: NinePoint,
    rhs: DistVec,
    truth: DistVec,
}

fn problem(grid: &Grid, bx: usize, by: usize, tau: f64) -> Problem {
    let layout = DistLayout::build(grid, bx, by);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(grid, &layout, &world, tau);
    let mut truth = DistVec::zeros(&layout);
    truth.fill_with(|i, j| ((i as f64) * 0.13).sin() * ((j as f64) * 0.09).cos() + 0.2);
    world.halo_update(&mut truth);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&world, &truth, &mut rhs);
    Problem {
        layout,
        world,
        op,
        rhs,
        truth,
    }
}

fn rel_err(p: &Problem, x: &DistVec) -> f64 {
    let mut e = x.clone();
    e.axpy(-1.0, &p.truth);
    (p.world.norm2_sq(&e) / p.world.norm2_sq(&p.truth)).sqrt()
}

#[test]
fn every_config_solves_every_grid_family() {
    let grids = [
        Grid::idealized_basin(40, 40, 1200.0, 5.0e4),
        Grid::gx1_scaled(11, 64, 56),
        Grid::gx01_scaled(11, 90, 60),
    ];
    let cfg = SolverConfig {
        tol: 1e-12,
        max_iters: 50_000,
        check_every: 10,
        ..SolverConfig::default()
    };
    for grid in &grids {
        let p = problem(grid, 16, 14, 9000.0);
        for choice in SolverChoice::PAPER_SET {
            let setup = SolverSetup::new(choice, &p.op, &p.world);
            let mut x = DistVec::zeros(&p.layout);
            let st = setup.solve(&p.op, &p.world, &p.rhs, &mut x, &cfg);
            assert!(
                st.converged,
                "{} on {}x{}: {st:?}",
                choice.label(),
                grid.nx,
                grid.ny
            );
            let e = rel_err(&p, &x);
            assert!(e < 1e-7, "{}: error {e}", choice.label());
        }
    }
}

#[test]
fn solution_independent_of_decomposition() {
    // The distributed solve must produce the same answer no matter how the
    // domain is blocked — the property POP calls reproducibility.
    let grid = Grid::gx1_scaled(13, 60, 48);
    let cfg = SolverConfig {
        tol: 1e-13,
        max_iters: 50_000,
        check_every: 10,
        ..SolverConfig::default()
    };
    let mut solutions = Vec::new();
    for (bx, by) in [(60, 48), (15, 12), (12, 16), (9, 7)] {
        let p = problem(&grid, bx, by, 9000.0);
        let setup = SolverSetup::new(SolverChoice::ChronGearDiag, &p.op, &p.world);
        let mut x = DistVec::zeros(&p.layout);
        let st = setup.solve(&p.op, &p.world, &p.rhs, &mut x, &cfg);
        assert!(st.converged);
        solutions.push(x.to_global());
    }
    let scale = solutions[0].iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    for s in &solutions[1..] {
        for (a, b) in solutions[0].iter().zip(s) {
            assert!(
                (a - b).abs() < 1e-9 * scale,
                "decomposition changed the solution: {a} vs {b}"
            );
        }
    }
}

#[test]
fn serial_and_threaded_backends_bit_identical() {
    // Same solve under the rayon backend: identical iterations AND bits.
    let grid = Grid::gx1_scaled(17, 56, 48);
    let cfg = SolverConfig {
        tol: 1e-12,
        max_iters: 50_000,
        check_every: 10,
        ..SolverConfig::default()
    };
    let run = |world: CommWorld| {
        let layout = DistLayout::build(&grid, 14, 12);
        let op = NinePoint::assemble(&grid, &layout, &world, 9000.0);
        let mut truth = DistVec::zeros(&layout);
        truth.fill_with(|i, j| ((i * 3 + j * 7) as f64 * 0.05).sin());
        world.halo_update(&mut truth);
        let mut rhs = DistVec::zeros(&layout);
        op.apply(&world, &truth, &mut rhs);
        let setup = SolverSetup::new(SolverChoice::PcsiEvp, &op, &world);
        let mut x = DistVec::zeros(&layout);
        let st = setup.solve(&op, &world, &rhs, &mut x, &cfg);
        assert!(st.converged);
        (st.iterations, x.to_global())
    };
    let (it_s, sol_s) = run(CommWorld::serial());
    let (it_t, sol_t) = run(CommWorld::threaded());
    assert_eq!(it_s, it_t, "iteration counts must match across backends");
    for (a, b) in sol_s.iter().zip(&sol_t) {
        assert_eq!(a.to_bits(), b.to_bits(), "backends must agree bit-for-bit");
    }
}

#[test]
fn solvers_agree_with_each_other() {
    let grid = Grid::gx01_scaled(19, 80, 56);
    let p = problem(&grid, 20, 14, 4000.0);
    let cfg = SolverConfig {
        tol: 1e-13,
        max_iters: 50_000,
        check_every: 10,
        ..SolverConfig::default()
    };
    let mut sols = Vec::new();
    for choice in [
        SolverChoice::ClassicPcgDiag,
        SolverChoice::ChronGearDiag,
        SolverChoice::ChronGearBlockLu,
        SolverChoice::PcsiDiag,
        SolverChoice::PcsiEvp,
    ] {
        let setup = SolverSetup::new(choice, &p.op, &p.world);
        let mut x = DistVec::zeros(&p.layout);
        let st = setup.solve(&p.op, &p.world, &p.rhs, &mut x, &cfg);
        assert!(st.converged, "{}", choice.label());
        sols.push((choice.label(), x));
    }
    let scale = p.world.norm2_sq(&p.truth).sqrt();
    for (label, x) in &sols[1..] {
        let mut d = x.clone();
        d.axpy(-1.0, &sols[0].1);
        let diff = p.world.norm2_sq(&d).sqrt() / scale;
        assert!(diff < 1e-9, "{label} disagrees with pcg: {diff}");
    }
}

#[test]
fn communication_counts_follow_the_papers_accounting() {
    // Equations (2) and (3) count: ChronGear one fused reduction + one halo
    // per iteration; P-CSI halo-only with reductions at checks.
    let grid = Grid::gx1_scaled(29, 48, 40);
    let p = problem(&grid, 12, 10, 9000.0);
    let cfg = SolverConfig {
        tol: 1e-11,
        max_iters: 50_000,
        check_every: 10,
        ..SolverConfig::default()
    };
    let cg = SolverSetup::new(SolverChoice::ChronGearDiag, &p.op, &p.world);
    let mut x = DistVec::zeros(&p.layout);
    let st = cg.solve(&p.op, &p.world, &p.rhs, &mut x, &cfg);
    let k = st.iterations as u64;
    assert_eq!(st.comm.allreduces, k + k / 10 + 1);
    assert_eq!(st.comm.halo_updates, k + 1);

    let csi = SolverSetup::new(SolverChoice::PcsiDiag, &p.op, &p.world);
    let mut x = DistVec::zeros(&p.layout);
    // Count only the solve itself (setup runs Lanczos).
    let st = csi.solve(&p.op, &p.world, &p.rhs, &mut x, &cfg);
    let k = st.iterations as u64;
    assert_eq!(st.comm.allreduces, k / 10 + 1);
    assert!(st.comm.halo_updates >= k);
}

#[test]
fn tighter_tolerance_costs_more_iterations() {
    let grid = Grid::gx1_scaled(31, 56, 44);
    let p = problem(&grid, 14, 11, 9000.0);
    let mut last = 0usize;
    for tol in [1e-6, 1e-9, 1e-12] {
        let cfg = SolverConfig {
            tol,
            max_iters: 50_000,
            check_every: 1,
            ..SolverConfig::default()
        };
        let setup = SolverSetup::new(SolverChoice::ChronGearDiag, &p.op, &p.world);
        let mut x = DistVec::zeros(&p.layout);
        let st = setup.solve(&p.op, &p.world, &p.rhs, &mut x, &cfg);
        assert!(st.converged);
        assert!(st.iterations > last, "tol {tol}: {} iters", st.iterations);
        last = st.iterations;
    }
}

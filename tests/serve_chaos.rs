//! Chaos under load: the service on the ranksim backend with injected
//! network faults degrades in latency, never in correctness.
//!
//! Two fault classes (DESIGN.md §10), two contracts:
//!
//! - **Benign plans** (delay/duplication/reordering/recoverable drops)
//!   are bitwise invisible: every served result matches the shared-memory
//!   standalone solve of the same request exactly, even though the solves
//!   ran on simulated ranks under fault injection.
//! - **Hostile plans** (halo corruption, permanent loss) may cost solver
//!   restarts and may end non-converged, but responses always arrive,
//!   carry structured outcomes, and never contain NaN.
//!
//! Seeds are pinned; CI replays one via `POP_CHAOS_SEED` (the same
//! convention as `tests/chaos_equivalence.rs`). Tests that leave
//! `ServiceConfig::workers` at 0 inherit the dispatch-pool size from
//! `POP_SERVE_WORKERS` (CI runs the suite at 1 and 4); the explicit sweep
//! test pins `workers ∈ {1, 2, 4}` regardless of environment — fault
//! injection must stay bitwise invisible at every pool size.

use pop_baro::prelude::*;
use pop_baro::serve::{Backend, ServiceConfig, SolveRequest, SolverService, SolverSpec};
use pop_core::setup::PrecondSpec;
use std::sync::Arc;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn noise(seed: u64, i: usize, j: usize) -> f64 {
    let mut s = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ ((j as u64) << 32);
    let bits = splitmix64(&mut s);
    (bits >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

struct Problem {
    layout: Arc<pop_baro::comm::DistLayout>,
    op: Arc<NinePoint>,
}

fn problem() -> Problem {
    let grid = Grid::gx1_scaled(12, 48, 40);
    let layout = DistLayout::build(&grid, 12, 10);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 8000.0);
    Problem {
        layout,
        op: Arc::new(op),
    }
}

fn rhs(p: &Problem, seed: u64) -> DistVec {
    let world = CommWorld::serial();
    let mut field = DistVec::zeros(&p.layout);
    field.fill_with(|i, j| noise(seed, i, j));
    world.halo_update(&mut field);
    let mut b = DistVec::zeros(&p.layout);
    p.op.apply(&world, &field, &mut b);
    b
}

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("POP_CHAOS_SEED") {
        Ok(v) => vec![v.parse().expect("POP_CHAOS_SEED must be an integer")],
        Err(_) => vec![0x5EED_BA11, 0xBE9151],
    }
}

const TOL: f64 = 1e-10;

fn base_cfg() -> SolverConfig {
    SolverConfig {
        tol: TOL,
        max_iters: 8000,
        ..SolverConfig::default()
    }
}

fn service(faults: FaultPlan) -> SolverService {
    service_with_workers(faults, 0)
}

fn service_with_workers(faults: FaultPlan, workers: usize) -> SolverService {
    SolverService::start(ServiceConfig {
        backend: Backend::RankSim { ranks: 6, faults },
        base: base_cfg(),
        workers,
        ..ServiceConfig::default()
    })
}

/// The shared-memory reference the chaos-served result must match.
fn standalone(p: &Problem, choice: SolverChoice, b: &DistVec) -> DistVec {
    let world = CommWorld::serial();
    let setup = SolverSetup::new(choice, &p.op, &world);
    let mut x = DistVec::zeros(&p.layout);
    let st = setup.solve(&p.op, &world, b, &mut x, &base_cfg());
    assert!(st.converged, "reference solve must converge");
    x
}

fn assert_bits_equal(a: &DistVec, b: &DistVec, what: &str) {
    for (ba, bb) in a.blocks.iter().zip(b.blocks.iter()) {
        for j in 0..ba.ny {
            for (va, vb) in ba.interior_row(j).iter().zip(bb.interior_row(j)) {
                assert_eq!(va.to_bits(), vb.to_bits(), "{what}: bits differ");
            }
        }
    }
}

/// Benign chaos: served-under-faults results are bitwise identical to
/// fault-free shared-memory solves, across solver/preconditioner mixes.
#[test]
fn benign_chaos_serves_bitwise_correct_results() {
    let p = problem();
    for seed in chaos_seeds() {
        let svc = service(FaultPlan::seeded(seed, FaultConfig::benign()));
        let cases = [
            (SolverSpec::Pcsi, PrecondSpec::Evp, SolverChoice::PcsiEvp),
            (
                SolverSpec::ChronGear,
                PrecondSpec::Diagonal,
                SolverChoice::ChronGearDiag,
            ),
            (
                SolverSpec::Pcsi,
                PrecondSpec::Diagonal,
                SolverChoice::PcsiDiag,
            ),
            (
                SolverSpec::ChronGear,
                PrecondSpec::Evp,
                SolverChoice::ChronGearEvp,
            ),
        ];
        let mut tickets = Vec::new();
        for (i, (spec, precond, _)) in cases.iter().enumerate() {
            let b = rhs(&p, seed ^ (i as u64 + 1));
            tickets.push(
                svc.submit(
                    SolveRequest::new(i as u32, Arc::clone(&p.op), *spec, *precond, b)
                        .with_tol(TOL),
                )
                .unwrap(),
            );
        }
        for (i, ((_, _, choice), t)) in cases.iter().zip(tickets).enumerate() {
            let resp = t.wait().unwrap();
            assert!(
                resp.stats.converged,
                "seed {seed:#x} case {i}: benign chaos must still converge"
            );
            let b = rhs(&p, seed ^ (i as u64 + 1));
            let x_ref = standalone(&p, *choice, &b);
            assert_bits_equal(
                &resp.x,
                &x_ref,
                &format!("seed {seed:#x} case {i} ({})", choice.label()),
            );
        }
        let cache = svc.shutdown();
        // 4 distinct (precond, bounds) setups: {evp,diag} × {pcsi,cg} grades.
        assert_eq!(cache.misses, 4, "seed {seed:#x}: distinct setup states");
    }
}

/// Warm-cache chaos: repeat traffic on the ranksim backend hits the cache
/// and still matches the reference bitwise.
#[test]
fn benign_chaos_warm_cache_stays_correct() {
    let p = problem();
    let seed = chaos_seeds()[0];
    let svc = service(FaultPlan::seeded(seed, FaultConfig::benign()));
    let b = rhs(&p, seed ^ 0xF00D);
    let x_ref = standalone(&p, SolverChoice::PcsiEvp, &b);
    let req = || {
        SolveRequest::new(
            0,
            Arc::clone(&p.op),
            SolverSpec::Pcsi,
            PrecondSpec::Evp,
            b.clone(),
        )
        .with_tol(TOL)
    };
    let cold = svc.submit(req()).unwrap().wait().unwrap();
    let warm = svc.submit(req()).unwrap().wait().unwrap();
    assert!(!cold.cache_hit && warm.cache_hit);
    assert_bits_equal(&cold.x, &x_ref, "cold chaos serve");
    assert_bits_equal(&warm.x, &x_ref, "warm chaos serve");
}

/// Worker sweep: benign chaos results are bitwise identical to the
/// fault-free shared-memory reference at every dispatch-pool size. Each
/// ranksim solve runs on its own fresh fault-injected world, so parallel
/// dispatch must not perturb a single bit.
#[test]
fn benign_chaos_is_bitwise_invisible_across_worker_counts() {
    let p = problem();
    let seed = chaos_seeds()[0];
    let bs: Vec<DistVec> = (0..4).map(|i| rhs(&p, seed ^ (0xAB0 + i))).collect();
    let refs: Vec<DistVec> = bs
        .iter()
        .map(|b| standalone(&p, SolverChoice::PcsiEvp, b))
        .collect();
    for workers in [1usize, 2, 4] {
        let svc = service_with_workers(FaultPlan::seeded(seed, FaultConfig::benign()), workers);
        let tickets: Vec<_> = bs
            .iter()
            .enumerate()
            .map(|(i, b)| {
                svc.submit(
                    SolveRequest::new(
                        i as u32,
                        Arc::clone(&p.op),
                        SolverSpec::Pcsi,
                        PrecondSpec::Evp,
                        b.clone(),
                    )
                    .with_tol(TOL),
                )
                .unwrap()
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t.wait().unwrap();
            assert!(resp.stats.converged);
            assert_bits_equal(
                &resp.x,
                &refs[i],
                &format!("seed {seed:#x} req {i} at {workers} workers"),
            );
        }
    }
}

/// Hostile chaos: corruption and permanent loss may break convergence but
/// never the service — responses arrive, outcomes are structured, and no
/// NaN ever reaches a tenant.
#[test]
fn hostile_chaos_degrades_gracefully() {
    let p = problem();
    for seed in chaos_seeds() {
        let svc = service(FaultPlan::seeded(seed, FaultConfig::hostile()));
        let mut tickets = Vec::new();
        for i in 0..3u64 {
            let b = rhs(&p, seed ^ (0xD00 + i));
            tickets.push(
                svc.submit(
                    SolveRequest::new(
                        i as u32,
                        Arc::clone(&p.op),
                        SolverSpec::ChronGear,
                        PrecondSpec::Diagonal,
                        b,
                    )
                    .with_tol(TOL),
                )
                .unwrap(),
            );
        }
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t
                .wait()
                .unwrap_or_else(|r| panic!("seed {seed:#x} req {i}: hostile chaos shed: {r}"));
            // Outcome may be any structured value; the solution must be finite.
            for blk in &resp.x.blocks {
                for j in 0..blk.ny {
                    for v in blk.interior_row(j) {
                        assert!(
                            v.is_finite(),
                            "seed {seed:#x} req {i}: non-finite value served"
                        );
                    }
                }
            }
            assert!(
                resp.stats.final_relative_residual.is_finite() || !resp.stats.converged,
                "seed {seed:#x} req {i}: unstructured outcome"
            );
        }
    }
}

//! The batched multi-RHS engine is bitwise invisible per right-hand side.
//!
//! DESIGN.md §12 promises that a `k`-wide batched solve advances each RHS
//! along exactly the floating point trajectory its single-RHS solve would
//! take: same solution bits, same iteration count, same residual history,
//! same outcome — under every execution backend (serial, thread pool,
//! ranksim message passing) and every SIMD dispatch mode (the CI `batch`
//! job re-runs this binary with `POP_BARO_SIMD=scalar`).
//!
//! This suite enforces the promise end to end: four solvers × {diagonal,
//! block-EVP} × three backends on ragged batches (k=3 and k=5, neither a
//! lane multiple), plus forced-dispatch sweeps and a batch mixing
//! converging and diverging systems (the poisoned lane must walk the full
//! restart → abort recovery ladder without perturbing its neighbours).

use pop_baro::prelude::*;
use pop_baro::ranksim::{RankSimConfig, RankWorld, SolverKind, ZeroCost};
use pop_comm::Communicator;
use pop_core::solvers::{BatchCommSolver, BatchWorkspace, SolverWorkspace};
use pop_simd::SimdMode;
use std::sync::Arc;

/// SplitMix64, as in the SIMD equivalence suite: reproducible fields from
/// the seed alone, order-independent in (i, j).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn noise(seed: u64, i: usize, j: usize) -> f64 {
    let mut s = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ ((j as u64) << 32);
    let bits = splitmix64(&mut s);
    (bits >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

struct Problem {
    layout: Arc<pop_baro::comm::DistLayout>,
    op: NinePoint,
}

/// A land-masked multi-block problem; 18×20 blocks keep a scalar tail in
/// every kernel row.
fn problem() -> Problem {
    let grid = Grid::gx01_scaled(11, 90, 60);
    let layout = DistLayout::build(&grid, 18, 20);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 9000.0);
    Problem { layout, op }
}

/// `k` independent right-hand sides in the operator's range, each from its
/// own seeded noise field.
fn seeded_batch(p: &Problem, k: usize, seed: u64) -> Vec<DistVec> {
    let world = CommWorld::serial();
    (0..k)
        .map(|l| {
            let mut field = DistVec::zeros(&p.layout);
            field.fill_with(|i, j| noise(seed.wrapping_add(l as u64), i, j));
            world.halo_update(&mut field);
            let mut rhs = DistVec::zeros(&p.layout);
            p.op.apply(&world, &field, &mut rhs);
            rhs
        })
        .collect()
}

fn config() -> SolverConfig {
    SolverConfig {
        tol: 1e-10,
        max_iters: 5000,
        check_every: 10,
        ..SolverConfig::default()
    }
}

/// Everything a solve exposes per RHS, as raw bits.
#[derive(PartialEq, Debug)]
struct Outcome {
    iterations: usize,
    outcome: SolveOutcome,
    restarts: usize,
    matvecs: usize,
    precond_applies: usize,
    final_residual_bits: u64,
    history_bits: Vec<(usize, u64)>,
    x_bits: Vec<u64>,
}

fn outcome(st: &SolveStats, x: &DistVec) -> Outcome {
    Outcome {
        iterations: st.iterations,
        outcome: st.outcome,
        restarts: st.restarts,
        matvecs: st.matvecs,
        precond_applies: st.precond_applies,
        final_residual_bits: st.final_relative_residual.to_bits(),
        history_bits: st
            .residual_history
            .iter()
            .map(|&(k, r)| (k, r.to_bits()))
            .collect(),
        x_bits: x.to_global().iter().map(|v| v.to_bits()).collect(),
    }
}

fn assert_same(name: &str, base: &Outcome, got: &Outcome) {
    assert_eq!(got.iterations, base.iterations, "{name}: iterations differ");
    assert_eq!(got.outcome, base.outcome, "{name}: outcomes differ");
    assert_eq!(got.restarts, base.restarts, "{name}: restart counts differ");
    assert_eq!(got.matvecs, base.matvecs, "{name}: matvec counts differ");
    assert_eq!(
        got.precond_applies, base.precond_applies,
        "{name}: preconditioner counts differ"
    );
    assert_eq!(
        got.final_residual_bits,
        base.final_residual_bits,
        "{name}: final residuals differ ({:e} vs {:e})",
        f64::from_bits(got.final_residual_bits),
        f64::from_bits(base.final_residual_bits)
    );
    assert_eq!(
        got.history_bits, base.history_bits,
        "{name}: residual histories differ"
    );
    for (k, (a, b)) in got.x_bits.iter().zip(&base.x_bits).enumerate() {
        assert_eq!(
            a,
            b,
            "{name}: solution differs at point {k}: {:e} vs {:e}",
            f64::from_bits(*a),
            f64::from_bits(*b)
        );
    }
}

/// Dispatch a batched solve by solver kind over any communicator.
#[allow(clippy::too_many_arguments)]
fn batch_solve<C: Communicator>(
    kind: SolverKind,
    op: &NinePoint,
    pre: &dyn Preconditioner,
    comm: &C,
    bs: &[&C::Vec],
    xs: &mut [&mut C::Vec],
    cfg: &SolverConfig,
    ws: &mut BatchWorkspace<C>,
) -> Vec<SolveStats> {
    match kind {
        SolverKind::ClassicPcg => ClassicPcg.solve_batch_comm(op, pre, comm, bs, xs, cfg, ws),
        SolverKind::ChronGear => ChronGear.solve_batch_comm(op, pre, comm, bs, xs, cfg, ws),
        SolverKind::PipelinedCg => PipelinedCg.solve_batch_comm(op, pre, comm, bs, xs, cfg, ws),
        SolverKind::Pcsi(bounds) => {
            Pcsi::new(bounds).solve_batch_comm(op, pre, comm, bs, xs, cfg, ws)
        }
    }
}

/// Per-RHS single-solve baselines on a shared-memory backend.
fn singles_shared(
    p: &Problem,
    pre: &dyn Preconditioner,
    kind: SolverKind,
    world: &CommWorld,
    bs: &[DistVec],
    cfg: &SolverConfig,
) -> Vec<Outcome> {
    let mut ws = SolverWorkspace::new();
    bs.iter()
        .map(|b| {
            let mut x = DistVec::zeros(&p.layout);
            let st = kind.solve(&p.op, pre, world, b, &mut x, cfg, &mut ws);
            outcome(&st, &x)
        })
        .collect()
}

/// One batched solve on a shared-memory backend, per-RHS outcomes.
fn batch_shared(
    p: &Problem,
    pre: &dyn Preconditioner,
    kind: SolverKind,
    world: &CommWorld,
    bs: &[DistVec],
    cfg: &SolverConfig,
) -> Vec<Outcome> {
    let mut xs_own: Vec<DistVec> = bs.iter().map(|_| DistVec::zeros(&p.layout)).collect();
    let b_refs: Vec<&DistVec> = bs.iter().collect();
    let mut x_refs: Vec<&mut DistVec> = xs_own.iter_mut().collect();
    let mut ws = BatchWorkspace::new();
    let stats = batch_solve(kind, &p.op, pre, world, &b_refs, &mut x_refs, cfg, &mut ws);
    drop(x_refs);
    stats
        .iter()
        .zip(&xs_own)
        .map(|(st, x)| outcome(st, x))
        .collect()
}

/// One batched solve under the ranksim message-passing runtime: every rank
/// runs the same batched loop over its private blocks, lane solutions are
/// gathered back per RHS.
fn batch_ranksim(
    p: &Problem,
    pre: &dyn Preconditioner,
    kind: SolverKind,
    ranks: usize,
    bs: &[DistVec],
    cfg: &SolverConfig,
) -> Vec<Outcome> {
    let world = RankWorld::new(
        &p.layout,
        ranks,
        Arc::new(ZeroCost),
        RankSimConfig::default(),
    );
    let x0 = DistVec::zeros(&p.layout);
    let reports = world.run(|comm| {
        let rank_cfg = if comm.rank() == 0 {
            cfg.clone()
        } else {
            cfg.clone().with_obs(ObsSink::disabled())
        };
        let rbs: Vec<_> = bs.iter().map(|b| comm.import(b)).collect();
        let mut rxs: Vec<_> = bs.iter().map(|_| comm.import(&x0)).collect();
        let b_refs: Vec<_> = rbs.iter().collect();
        let mut x_refs: Vec<_> = rxs.iter_mut().collect();
        let mut ws = BatchWorkspace::new();
        let stats = batch_solve(
            kind,
            &p.op,
            pre,
            comm,
            &b_refs,
            &mut x_refs,
            &rank_cfg,
            &mut ws,
        );
        drop(x_refs);
        let lanes: Vec<_> = rxs.into_iter().map(|x| x.into_blocks()).collect();
        (stats, lanes)
    });
    let mut xs: Vec<DistVec> = bs.iter().map(|_| DistVec::zeros(&p.layout)).collect();
    let mut stats0 = None;
    for rep in reports {
        let (st, lanes) = rep.result;
        if rep.rank == 0 {
            stats0 = Some(st);
        }
        for (l, blocks) in lanes.into_iter().enumerate() {
            for (gb, blk) in blocks {
                xs[l].blocks[gb] = blk;
            }
        }
    }
    stats0
        .expect("rank 0 reports")
        .iter()
        .zip(&xs)
        .map(|(st, x)| outcome(st, x))
        .collect()
}

/// The tentpole guarantee: four solvers × {diag, EVP} × {serial, threaded,
/// ranksim}, ragged batch widths (k=5 with the diagonal, k=3 with EVP),
/// every RHS bitwise equal to its independent single-RHS solve.
#[test]
fn batched_solves_match_single_rhs_bitwise_end_to_end() {
    let p = problem();
    let shared = CommWorld::serial();
    for (pname, pre, k) in [
        ("diag", &Diagonal::new(&p.op) as &dyn Preconditioner, 5usize),
        ("evp", &BlockEvp::with_defaults(&p.op), 3),
    ] {
        let bs = seeded_batch(&p, k, 0x5eed_0000 + k as u64);
        let (bounds, _) = estimate_bounds(&p.op, pre, &shared, &LanczosConfig::default());
        let kinds = [
            SolverKind::ClassicPcg,
            SolverKind::ChronGear,
            SolverKind::PipelinedCg,
            SolverKind::Pcsi(bounds),
        ];
        let cfg = config();
        for kind in kinds {
            let serial = CommWorld::serial();
            let base = singles_shared(&p, pre, kind, &serial, &bs, &cfg);
            assert!(
                base.iter().all(|o| o.outcome == SolveOutcome::Converged),
                "{}+{pname}: single-RHS baseline did not converge",
                kind.name()
            );
            let tag = |backend: &str, l: usize| {
                format!("{}+{pname} k={k} {backend} lane {l}", kind.name())
            };
            for (l, got) in batch_shared(&p, pre, kind, &serial, &bs, &cfg)
                .iter()
                .enumerate()
            {
                assert_same(&tag("serial", l), &base[l], got);
            }
            let threaded = CommWorld::threaded();
            for (l, got) in batch_shared(&p, pre, kind, &threaded, &bs, &cfg)
                .iter()
                .enumerate()
            {
                assert_same(&tag("threaded", l), &base[l], got);
            }
            for (l, got) in batch_ranksim(&p, pre, kind, 3, &bs, &cfg)
                .iter()
                .enumerate()
            {
                assert_same(&tag("ranksim", l), &base[l], got);
            }
        }
    }
}

/// Restores startup dispatch even if an assertion panics.
struct ModeGuard;
impl Drop for ModeGuard {
    fn drop(&mut self) {
        pop_simd::force_mode(None);
    }
}

/// Forced-dispatch sweep: under pinned scalar and pinned lane modes the
/// batch must still track its (same-mode) single-RHS baselines bitwise —
/// the batched engine adds no mode-dependent operation of its own.
/// `force_mode` is process-global, so the whole sweep lives in one test.
#[test]
fn batched_solves_match_single_rhs_under_forced_dispatch() {
    let _guard = ModeGuard;
    let p = problem();
    let shared = CommWorld::serial();
    let pre = Diagonal::new(&p.op);
    let (bounds, _) = estimate_bounds(&p.op, &pre, &shared, &LanczosConfig::default());
    let bs = seeded_batch(&p, 3, 0xd15_9a7c);
    let cfg = config();
    let mut modes = vec![SimdMode::Scalar, SimdMode::Portable];
    if pop_simd::detected_avx2() {
        modes.push(SimdMode::Avx2);
    }
    for kind in [SolverKind::ChronGear, SolverKind::Pcsi(bounds)] {
        for mode in &modes {
            pop_simd::force_mode(Some(*mode));
            let base = singles_shared(&p, &pre, kind, &shared, &bs, &cfg);
            for (l, got) in batch_shared(&p, &pre, kind, &shared, &bs, &cfg)
                .iter()
                .enumerate()
            {
                assert_same(
                    &format!("{} {} lane {l}", kind.name(), mode.name()),
                    &base[l],
                    got,
                );
            }
        }
        pop_simd::force_mode(None);
    }
}

/// A batch mixing healthy and poisoned systems: the NaN lane must walk the
/// per-lane recovery ladder (restart × max_restarts, then abort with the
/// last good snapshot — here the zero initial guess) exactly as its
/// single-RHS solve does, while every healthy lane converges on its own
/// unperturbed trajectory.
#[test]
fn mixed_converging_and_diverging_batch_retires_lanes_independently() {
    let p = problem();
    let serial = CommWorld::serial();
    let pre = Diagonal::new(&p.op);
    let cfg = config();
    let mut bs = seeded_batch(&p, 4, 0xbad_cafe);
    // Poison lane 1: one NaN at an ocean point makes every residual NaN,
    // which the recovery monitor classifies as divergence at each check.
    let (pb, pj, pi) = p
        .layout
        .masks
        .iter()
        .enumerate()
        .find_map(|(b, mask)| {
            let nx = p.layout.decomp.blocks[b].nx;
            mask.iter()
                .position(|&m| m != 0)
                .map(|at| (b, at / nx, at % nx))
        })
        .expect("grid has ocean points");
    bs[1].blocks[pb].interior_row_mut(pj)[pi] = f64::NAN;

    for kind in [SolverKind::ChronGear, SolverKind::PipelinedCg] {
        let base = singles_shared(&p, &pre, kind, &serial, &bs, &cfg);
        assert_eq!(
            base[1].outcome,
            SolveOutcome::Diverged,
            "{}: poisoned single-RHS solve must abort",
            kind.name()
        );
        assert!(
            base[1].restarts > 0,
            "{}: recovery must restart",
            kind.name()
        );
        for (l, got) in batch_shared(&p, &pre, kind, &serial, &bs, &cfg)
            .iter()
            .enumerate()
        {
            assert_same(&format!("{} mixed lane {l}", kind.name()), &base[l], got);
        }
        for healthy in [0usize, 2, 3] {
            assert_eq!(
                base[healthy].outcome,
                SolveOutcome::Converged,
                "{}: healthy lane {healthy} must converge despite the poisoned neighbour",
                kind.name()
            );
        }
    }
}

/// `solve_many` chunks wider request sets through the engine (k=6 through
/// max_batch=4 → batches of 4 and 2) without changing any per-RHS result.
#[test]
fn solve_many_chunking_preserves_per_rhs_bits() {
    let p = problem();
    let serial = CommWorld::serial();
    let pre = Diagonal::new(&p.op);
    let cfg = config();
    let bs = seeded_batch(&p, 6, 0xc0ffee);
    let base = singles_shared(&p, &pre, SolverKind::ChronGear, &serial, &bs, &cfg);

    let mut xs_own: Vec<DistVec> = bs.iter().map(|_| DistVec::zeros(&p.layout)).collect();
    let b_refs: Vec<&DistVec> = bs.iter().collect();
    let mut x_refs: Vec<&mut DistVec> = xs_own.iter_mut().collect();
    let mut ws = BatchWorkspace::new();
    let stats = solve_many(
        &ChronGear,
        &p.op,
        &pre,
        &serial,
        &b_refs,
        &mut x_refs,
        &cfg,
        4,
        &mut ws,
    );
    drop(x_refs);
    for (l, (st, x)) in stats.iter().zip(&xs_own).enumerate() {
        assert_same(&format!("solve_many lane {l}"), &base[l], &outcome(st, x));
    }
}

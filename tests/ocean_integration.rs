//! Integration tests of the ocean model + verification pipeline through the
//! public API: conservation, determinism, restart, solver interchangeability
//! inside the time loop, and the end-to-end RMSZ discrimination mechanism.

use pop_baro::prelude::*;
use pop_baro::verif::consistency::{evaluate, Verdict};

fn eddying(nx: usize, ny: usize) -> (CommWorld, MiniPop) {
    let grid = Grid::idealized_basin(nx, ny, 500.0, 2.0e4);
    let world = CommWorld::serial();
    let mut cfg = MiniPopConfig::eddying_for(&grid);
    cfg.nlev = 2;
    let m = MiniPop::new(grid, cfg, &world);
    (world, m)
}

#[test]
fn model_conserves_volume_through_the_solver() {
    let (world, mut m) = eddying(40, 32);
    m.run(&world, 300);
    assert!(m.is_healthy());
    assert!(m.mean_eta().abs() < 1e-9, "volume drift: {}", m.mean_eta());
}

#[test]
fn restart_reproduces_the_trajectory_exactly() {
    let (world, mut m) = eddying(36, 28);
    m.run(&world, 60);
    let snap = m.snapshot();
    m.run(&world, 40);
    let a = m.temperature_vector();
    m.restore(&snap);
    m.run(&world, 40);
    let b = m.temperature_vector();
    assert_eq!(a, b);
}

#[test]
fn swapping_the_solver_midrun_keeps_the_short_term_state() {
    // Run the same ocean with ChronGear+diag and P-CSI+EVP at tight
    // tolerance: over a short horizon the states must agree to solver
    // precision (the non-BFB-but-equivalent property §6 is about).
    let grid = Grid::idealized_basin(36, 28, 500.0, 2.0e4);
    let world = CommWorld::serial();
    let mut cfg = MiniPopConfig::eddying_for(&grid);
    cfg.nlev = 2;
    let mut a = MiniPop::new(grid.clone(), cfg.clone(), &world);
    cfg.solver = SolverChoice::PcsiEvp;
    let mut b = MiniPop::new(grid, cfg, &world);
    a.run(&world, 40);
    b.run(&world, 40);
    let ta = a.temperature_vector();
    let tb = b.temperature_vector();
    let mut worst = 0.0f64;
    for (x, y) in ta.iter().zip(&tb) {
        worst = worst.max((x - y).abs());
    }
    assert!(worst > 0.0, "different solvers cannot be bit-identical");
    assert!(worst < 1e-7, "they must agree to solver precision: {worst}");
}

#[test]
fn rmsz_pipeline_flags_a_loose_solver_end_to_end() {
    // A miniature Fig-13: small ensemble, one sloppy candidate, one faithful
    // candidate. The sloppy one must be flagged by orders of magnitude.
    let grid = Grid::idealized_basin(36, 28, 500.0, 2.0e4);
    let world = CommWorld::serial();
    let mut base = MiniPopConfig::eddying_for(&grid);
    base.nlev = 2;
    base.tolerance = 1e-13;
    let cfg = EnsembleConfig {
        members: 6,
        perturbation: 1e-14,
        months: 4,
        steps_per_month: 150,
        spinup_steps: 800,
    };
    let lab = VerificationLab::new(grid, base, cfg, &world);
    let ensemble = lab.build_ensemble(&world);

    let sloppy = lab.run_trajectory(&world, None, SolverChoice::ChronGearDiag, 1e-9);
    let sloppy_report = evaluate(&ensemble, &sloppy, 2.0, 1);
    assert_eq!(
        sloppy_report.verdict,
        Verdict::Inconsistent,
        "RMSZ: {:?}",
        sloppy_report.rmsz
    );
    // The sloppy candidate is removed by orders of magnitude, not marginally.
    assert!(sloppy_report.rmsz.iter().any(|&z| z > 100.0));

    let faithful = lab.run_trajectory(&world, None, SolverChoice::ChronGearDiag, 1e-13);
    let faithful_report = evaluate(&ensemble, &faithful, 2.0, 1);
    assert_eq!(
        faithful_report.verdict,
        Verdict::Consistent,
        "RMSZ: {:?}",
        faithful_report.rmsz
    );
}

#[test]
fn barotropic_mode_matches_standalone_solver() {
    // One BarotropicMode step must equal solving the same system directly.
    let grid = Grid::idealized_basin(32, 32, 1000.0, 5.0e4);
    let world = CommWorld::serial();
    let solver_cfg = SolverConfig {
        tol: 1e-13,
        max_iters: 20_000,
        check_every: 10,
        ..SolverConfig::default()
    };
    let mut mode = BarotropicMode::new(
        &grid,
        &world,
        16,
        16,
        2000.0,
        SolverChoice::ChronGearDiag,
        solver_cfg.clone(),
    );
    let mut forecast = DistVec::zeros(&mode.layout);
    forecast.fill_with(|i, j| ((i as f64) * 0.2).sin() + ((j as f64) * 0.1).cos());
    mode.step(&world, &forecast);
    let from_mode = mode.eta.to_global();

    // Direct solve of A η = φ·area·f.
    let op = &mode.op;
    let mut rhs = DistVec::zeros(&mode.layout);
    let phi = op.phi;
    let metrics = grid.metrics.clone();
    let fc = forecast.to_global();
    rhs.fill_with(|i, j| phi * metrics.area(i, j) * fc[j * grid.nx + i]);
    let setup = SolverSetup::new(SolverChoice::ChronGearDiag, op, &world);
    let mut eta = DistVec::zeros(&mode.layout);
    let st = setup.solve(op, &world, &rhs, &mut eta, &solver_cfg);
    assert!(st.converged);
    let direct = eta.to_global();
    let scale = direct.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    for (a, b) in from_mode.iter().zip(&direct) {
        assert!((a - b).abs() < 1e-9 * scale.max(1e-30), "{a} vs {b}");
    }
}

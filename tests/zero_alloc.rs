//! Steady-state allocation audit for the fused solver loops.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! solve has sized the [`SolverWorkspace`], the halo scratch pool, and the
//! preconditioner's thread-local tile buffers, the *per-iteration* heap
//! allocation count of `solve_ws` must be exactly zero. That is asserted
//! differentially: a solve running 8× as many iterations must allocate
//! exactly as much as a short one (the only per-solve allocation left is the
//! fresh `SolveStats` residual history, identical for both).
//!
//! This file holds a single `#[test]` so no concurrent test pollutes the
//! counters, and it uses the serial backend so every allocation is made on
//! this thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::SeqCst)
}

use pop_baro::core::solvers::{PipelinedCg, SolverWorkspace};
use pop_baro::prelude::*;

#[test]
fn fused_solve_iterations_allocate_nothing() {
    let grid = Grid::gx01_scaled(11, 90, 60);
    let layout = DistLayout::build(&grid, 18, 20);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 9000.0);
    let mut truth = DistVec::zeros(&layout);
    truth.fill_with(|i, j| ((i as f64) * 0.13).sin() * ((j as f64) * 0.09).cos() + 0.2);
    world.halo_update(&mut truth);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&world, &truth, &mut rhs);

    let diag = Diagonal::new(&op);
    let evp = BlockEvp::with_defaults(&op);
    let (bounds, _) = estimate_bounds(&op, &evp, &world, &LanczosConfig::default());

    let preconds: [(&str, &dyn Preconditioner); 2] = [("diag", &diag), ("evp", &evp)];
    let pcsi = Pcsi::new(bounds);
    let solvers: [(&str, &dyn LinearSolver); 4] = [
        ("pcsi", &pcsi),
        ("chrongear", &ChronGear),
        ("pcg", &ClassicPcg),
        ("pipecg", &PipelinedCg),
    ];

    // Fixed iteration counts (tol = 0 never converges) with a single
    // convergence check each, so the two runs differ only in how many inner
    // iterations they execute.
    let short = 64usize;
    let long = 512usize;
    let cfg_of = |iters: usize| SolverConfig {
        tol: 0.0,
        max_iters: iters,
        check_every: iters,
        ..SolverConfig::default()
    };

    let mut x = DistVec::zeros(&layout);
    for (pname, pre) in preconds {
        for (sname, solver) in solvers {
            let mut ws = SolverWorkspace::new();
            // Warm-up at the long length: sizes the workspace, the halo
            // scratch pool, and thread-local preconditioner buffers.
            x.set_zero();
            let st = solver.solve_ws(&op, pre, &world, &rhs, &mut x, &cfg_of(long), &mut ws);
            assert_eq!(st.iterations, long);

            x.set_zero();
            let before_short = allocs();
            let st = solver.solve_ws(&op, pre, &world, &rhs, &mut x, &cfg_of(short), &mut ws);
            let during_short = allocs() - before_short;
            assert_eq!(st.iterations, short);

            x.set_zero();
            let before_long = allocs();
            let st = solver.solve_ws(&op, pre, &world, &rhs, &mut x, &cfg_of(long), &mut ws);
            let during_long = allocs() - before_long;
            assert_eq!(st.iterations, long);

            assert_eq!(
                during_long,
                during_short,
                "{sname}+{pname}: {} extra allocations across {} extra iterations \
                 (short solve: {during_short} allocs, long solve: {during_long})",
                during_long as i64 - during_short as i64,
                long - short
            );
            // The per-solve residue is the SolveStats history and nothing
            // else — a handful of calls, not one per iteration or per block.
            assert!(
                during_long <= 8,
                "{sname}+{pname}: fused solve made {during_long} allocations after warm-up"
            );
        }
    }
}

//! Metamorphic properties: the determinism contract as executable law.
//!
//! Two transformations of a solve must be exactly invisible (DESIGN.md
//! §8–9):
//!
//! - **Block-ordering permutation.** Which rank owns which block — and the
//!   order blocks are dealt out — is a scheduling detail. Hilbert, Morton,
//!   row-major and seeded-random assignments, across several rank counts,
//!   must all reproduce the serial solve bit for bit, because reductions
//!   combine per-block partials in a fixed global order regardless of
//!   ownership.
//! - **RHS power-of-two scaling.** Multiplying `b` by `2^k` multiplies
//!   every intermediate of the Krylov recurrence by an exact power of two:
//!   the iterate scales *exactly* (`x' = 2^k x`, bit for bit after
//!   un-scaling), while iteration counts and the relative-residual history
//!   are bitwise unchanged.

use pop_baro::prelude::*;
use pop_core::solvers::{SolveStats, SolverWorkspace};
use pop_grid::sfc::CurveKind;
use pop_grid::RankAssignment;
use pop_rng::SmallRng;
use std::sync::Arc;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn noise(seed: u64, i: usize, j: usize) -> f64 {
    let mut s = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ ((j as u64) << 32);
    let bits = splitmix64(&mut s);
    (bits >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

struct Problem {
    layout: Arc<pop_baro::comm::DistLayout>,
    op: NinePoint,
    rhs: DistVec,
}

fn problem(seed: u64) -> Problem {
    let grid = Grid::gx01_scaled(11, 90, 60);
    let layout = DistLayout::build(&grid, 18, 20);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 9000.0);
    let mut field = DistVec::zeros(&layout);
    field.fill_with(|i, j| noise(seed, i, j));
    world.halo_update(&mut field);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&world, &field, &mut rhs);
    Problem { layout, op, rhs }
}

fn cfg() -> SolverConfig {
    SolverConfig {
        tol: 1e-10,
        max_iters: 5000,
        check_every: 10,
        ..SolverConfig::default()
    }
}

#[derive(PartialEq)]
struct Observables {
    iterations: usize,
    outcome: SolveOutcome,
    final_residual_bits: u64,
    history_bits: Vec<(usize, u64)>,
    x_bits: Vec<u64>,
}

fn observe(st: &SolveStats, x: &DistVec) -> Observables {
    Observables {
        iterations: st.iterations,
        outcome: st.outcome,
        final_residual_bits: st.final_relative_residual.to_bits(),
        history_bits: st
            .residual_history
            .iter()
            .map(|&(k, r)| (k, r.to_bits()))
            .collect(),
        x_bits: x.to_global().iter().map(|v| v.to_bits()).collect(),
    }
}

fn run_serial(
    p: &Problem,
    kind: SolverKind,
    pre: &dyn Preconditioner,
    rhs: &DistVec,
) -> (Observables, SolveStats) {
    let world = CommWorld::serial();
    let mut x = DistVec::zeros(&p.layout);
    let mut ws = SolverWorkspace::new();
    let st = kind.solve(&p.op, pre, &world, rhs, &mut x, &cfg(), &mut ws);
    (observe(&st, &x), st)
}

fn run_assignment(
    p: &Problem,
    kind: SolverKind,
    pre: &dyn Preconditioner,
    assignment: RankAssignment,
) -> Observables {
    let world = RankWorld::with_assignment(
        &p.layout,
        assignment,
        Arc::new(ZeroCost),
        RankSimConfig::default(),
    );
    let x0 = DistVec::zeros(&p.layout);
    let out = solve_on_ranks(&world, &p.op, pre, kind, &p.rhs, &x0, &cfg());
    observe(out.stats(), &out.x)
}

/// Deal the active blocks round-robin in a seeded-random order: the
/// adversarial counterpoint to the locality-preserving curves.
fn random_assignment(p: &Problem, ranks: usize, seed: u64) -> RankAssignment {
    let n = p.layout.n_blocks();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    let mut rank_of_block = vec![0usize; n];
    let mut blocks_of_rank = vec![Vec::new(); ranks];
    for (k, &b) in order.iter().enumerate() {
        let r = k % ranks;
        rank_of_block[b] = r;
        blocks_of_rank[r].push(b);
    }
    RankAssignment {
        p: ranks,
        rank_of_block,
        blocks_of_rank,
    }
}

fn solver_matrix(p: &Problem, pre: &dyn Preconditioner) -> Vec<SolverKind> {
    let shared = CommWorld::serial();
    let (bounds, _) = estimate_bounds(&p.op, pre, &shared, &LanczosConfig::default());
    vec![
        SolverKind::ClassicPcg,
        SolverKind::ChronGear,
        SolverKind::PipelinedCg,
        SolverKind::Pcsi(bounds),
    ]
}

/// Ownership is a scheduling detail: every curve kind, rank count and a
/// seeded-random deal reproduce the serial solve bit for bit.
#[test]
fn block_ownership_permutations_are_bitwise_invisible() {
    let p = problem(2015);
    let pre = Diagonal::new(&p.op);
    for kind in solver_matrix(&p, &pre) {
        let (base, _) = run_serial(&p, kind, &pre, &p.rhs);
        assert_eq!(base.outcome, SolveOutcome::Converged);
        for curve in [CurveKind::Hilbert, CurveKind::Morton, CurveKind::RowMajor] {
            for ranks in [2usize, 5] {
                let name = format!("{} {curve:?} p={ranks}", kind.name());
                let a = p.layout.decomp.assign_ranks(ranks, curve);
                let got = run_assignment(&p, kind, &pre, a);
                assert!(got == base, "{name}: observables differ from serial");
            }
        }
        let name = format!("{} random-deal p=6", kind.name());
        let got = run_assignment(&p, kind, &pre, random_assignment(&p, 6, 0xDEA1));
        assert!(got == base, "{name}: observables differ from serial");
    }
}

/// Scaling the RHS by `2^k` scales the solution by exactly `2^k` and leaves
/// the iteration trajectory — counts, outcome, relative-residual history —
/// bitwise unchanged.
#[test]
fn rhs_power_of_two_scaling_is_exact() {
    let p = problem(2015);
    let pre = Diagonal::new(&p.op);
    const K: i32 = 12;
    let scale = (2.0f64).powi(K);
    let scaled_global: Vec<f64> = p.rhs.to_global().iter().map(|v| v * scale).collect();
    let scaled_rhs = DistVec::from_global(&p.layout, &scaled_global);
    for kind in solver_matrix(&p, &pre) {
        let name = format!("{} rhs×2^{K}", kind.name());
        let (base, _) = run_serial(&p, kind, &pre, &p.rhs);
        let (scaled, _) = run_serial(&p, kind, &pre, &scaled_rhs);
        assert_eq!(scaled.iterations, base.iterations, "{name}: iterations");
        assert_eq!(scaled.outcome, base.outcome, "{name}: outcome");
        assert_eq!(
            scaled.history_bits, base.history_bits,
            "{name}: relative-residual history must be scale-invariant"
        );
        assert_eq!(
            scaled.final_residual_bits, base.final_residual_bits,
            "{name}: final relative residual must be scale-invariant"
        );
        for (k, (a, b)) in scaled.x_bits.iter().zip(&base.x_bits).enumerate() {
            let unscaled = f64::from_bits(*a) / scale;
            assert_eq!(
                unscaled.to_bits(),
                *b,
                "{name}: solution at point {k} is not exactly 2^{K}× the base"
            );
        }
    }
}

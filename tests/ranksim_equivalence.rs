//! The message-passing runtime is bit-equivalent to shared memory.
//!
//! Every solver runs the same fused kernels whether the communicator is a
//! shared-memory [`CommWorld`] or a `ranksim` [`RankWorld`] of thread-ranks
//! exchanging halo strips and climbing binomial reduction trees. Because
//! reductions combine per-block partial rows in global block order with a
//! flat left-fold, the arithmetic is identical — so solutions, iteration
//! counts, residual trajectories, and communication counts must all match
//! *bitwise*, for every solver, preconditioner, rank count, and right-hand
//! side.
//!
//! The right-hand sides are seeded pseudo-random fields (set
//! `POP_EQV_SEED` to probe a different draw), not smooth manufactured
//! ones: equivalence must not depend on the data being nice.

use pop_baro::prelude::*;
use pop_baro::ranksim::{solve_on_ranks, RankSimConfig, RankWorld, SolverKind, ZeroCost};
use pop_core::solvers::SolverWorkspace;
use std::sync::Arc;

mod common;
use common::{problem, Problem};

fn seeds() -> Vec<u64> {
    match std::env::var("POP_EQV_SEED") {
        Ok(v) => vec![v.parse().expect("POP_EQV_SEED must be an integer")],
        Err(_) => vec![2015, 0xC0FFEE],
    }
}

/// Solve one configuration in shared memory and on `p` simulated ranks and
/// demand bitwise agreement everywhere the runtimes can be compared.
fn check(name: &str, p: &Problem, pre: &dyn Preconditioner, kind: SolverKind, ranks: usize) {
    let cfg = SolverConfig {
        tol: 1e-10,
        max_iters: 5000,
        check_every: 10,
        ..SolverConfig::default()
    };
    let shared = CommWorld::serial();
    let mut x_shared = DistVec::zeros(&p.layout);
    let mut ws = SolverWorkspace::new();
    let st_shared = kind.solve(&p.op, pre, &shared, &p.rhs, &mut x_shared, &cfg, &mut ws);
    assert!(
        st_shared.converged,
        "{name}: shared-memory did not converge"
    );

    let world = RankWorld::new(
        &p.layout,
        ranks,
        Arc::new(ZeroCost),
        RankSimConfig::default(),
    );
    let x0 = DistVec::zeros(&p.layout);
    let out = solve_on_ranks(&world, &p.op, pre, kind, &p.rhs, &x0, &cfg);
    let st = out.stats();

    assert_eq!(
        st.iterations, st_shared.iterations,
        "{name} p={ranks}: iteration counts differ"
    );
    assert_eq!(
        st.final_relative_residual.to_bits(),
        st_shared.final_relative_residual.to_bits(),
        "{name} p={ranks}: residuals differ ({:e} vs {:e})",
        st.final_relative_residual,
        st_shared.final_relative_residual
    );
    let (ga, gb) = (out.x.to_global(), x_shared.to_global());
    for (k, (a, b)) in ga.iter().zip(&gb).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name} p={ranks}: solution differs at point {k}: {a:e} vs {b:e}"
        );
    }
    // Collectives are SPMD: every rank sees the same number of reductions
    // and halo updates as the shared-memory run, and the wire moves exactly
    // the bytes the shared-memory halo gather/scatter counted.
    let shared_bytes: u64 = st_shared.comm.halo_bytes;
    let rank_bytes: u64 = out.per_rank.iter().map(|r| r.stats.halo_bytes).sum();
    assert_eq!(rank_bytes, shared_bytes, "{name} p={ranks}: halo bytes");
    for rep in &out.per_rank {
        assert_eq!(
            rep.stats.allreduces, st_shared.comm.allreduces,
            "{name} p={ranks} rank {}: allreduce count",
            rep.rank
        );
        assert_eq!(
            rep.stats.halo_updates, st_shared.comm.halo_updates,
            "{name} p={ranks} rank {}: halo update count",
            rep.rank
        );
    }
}

fn run_all(ranks: &[usize]) {
    for seed in seeds() {
        let p = problem(seed);
        let shared = CommWorld::serial();
        for (pname, pre) in [
            ("diag", &Diagonal::new(&p.op) as &dyn Preconditioner),
            ("evp", &BlockEvp::with_defaults(&p.op)),
        ] {
            let (bounds, _) = estimate_bounds(&p.op, pre, &shared, &LanczosConfig::default());
            let kinds = [
                SolverKind::ClassicPcg,
                SolverKind::ChronGear,
                SolverKind::PipelinedCg,
                SolverKind::Pcsi(bounds),
            ];
            for kind in kinds {
                for &r in ranks {
                    check(
                        &format!("{}+{pname} seed={seed}", kind.name()),
                        &p,
                        pre,
                        kind,
                        r,
                    );
                }
            }
        }
    }
}

/// Few ranks: several blocks per rank, plenty of rank-local halo traffic.
#[test]
fn ranksim_matches_shared_memory_few_ranks() {
    run_all(&[1, 3]);
}

/// Sixteen ranks: more ranks than some block rows, deep reduction trees,
/// and (depending on the mask) possibly idle ranks.
#[test]
fn ranksim_matches_shared_memory_sixteen_ranks() {
    run_all(&[16]);
}

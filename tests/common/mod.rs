//! Shared harness for the integration suites.
//!
//! Every equivalence suite needs the same scaffolding: a seeded PRNG so
//! "random" fields are reproducible from the seed alone, a masked
//! multi-block problem with a right-hand side in the operator's range, a
//! bitwise-comparable bundle of everything a solve produces, and runners
//! for the three execution backends (serial, thread pool, ranksim message
//! passing). This module is the single copy; the suites `mod common;` it
//! and keep only what is specific to the contract they pin.
//!
//! Not every suite uses every helper, hence the module-wide `dead_code`
//! allow — each test binary compiles its own copy of this file.
#![allow(dead_code)]

use pop_baro::prelude::*;
use pop_core::solvers::{SolveStats, SolverWorkspace};
use pop_simd::SimdMode;
use std::sync::Arc;

/// SplitMix64: a tiny, stable PRNG so seeded fields are reproducible from
/// the seed alone.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A uniform value in [-1, 1) derived from (seed, i, j) — order-independent,
/// so `fill_with` traversal order never matters.
pub fn noise(seed: u64, i: usize, j: usize) -> f64 {
    let mut s = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ ((j as u64) << 32);
    let bits = splitmix64(&mut s);
    (bits >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

/// A masked multi-block problem with a pseudo-random right-hand side built
/// in the operator's range (apply A to a random field), so every solver
/// converges from zero in a few hundred iterations.
pub struct Problem {
    pub layout: Arc<DistLayout>,
    pub op: NinePoint,
    pub rhs: DistVec,
}

/// The standard equivalence fixture: a land-masked 90×60 grid in 18×20
/// blocks — deliberately not a lane multiple in x, so every SIMD kernel row
/// has a scalar tail.
pub fn problem(seed: u64) -> Problem {
    let grid = Grid::gx01_scaled(11, 90, 60);
    problem_on(&grid, 18, 20, 9000.0, seed)
}

/// The fixture on an arbitrary grid, block shape, and timestep.
pub fn problem_on(grid: &Grid, bx: usize, by: usize, tau: f64, seed: u64) -> Problem {
    let layout = DistLayout::build(grid, bx, by);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(grid, &layout, &world, tau);
    let mut field = DistVec::zeros(&layout);
    field.fill_with(|i, j| noise(seed, i, j));
    world.halo_update(&mut field);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&world, &field, &mut rhs);
    Problem { layout, op, rhs }
}

/// The suites' common solve settings: converge properly, never spin.
pub fn solver_cfg() -> SolverConfig {
    SolverConfig {
        tol: 1e-10,
        max_iters: 5000,
        check_every: 10,
        ..SolverConfig::default()
    }
}

/// Everything a solve produces that callers can observe, as raw bits.
#[derive(PartialEq, Debug)]
pub struct Observables {
    pub iterations: usize,
    pub outcome: SolveOutcome,
    pub final_residual_bits: u64,
    pub history_bits: Vec<(usize, u64)>,
    pub x_bits: Vec<u64>,
}

pub fn observe(st: &SolveStats, x: &DistVec) -> Observables {
    Observables {
        iterations: st.iterations,
        outcome: st.outcome,
        final_residual_bits: st.final_relative_residual.to_bits(),
        history_bits: st
            .residual_history
            .iter()
            .map(|&(k, r)| (k, r.to_bits()))
            .collect(),
        x_bits: x.to_global().iter().map(|v| v.to_bits()).collect(),
    }
}

/// Solve on a shared-memory backend (serial or thread pool).
pub fn run_world(
    world: &CommWorld,
    p: &Problem,
    pre: &dyn Preconditioner,
    kind: SolverKind,
) -> Observables {
    let mut x = DistVec::zeros(&p.layout);
    let mut ws = SolverWorkspace::new();
    let st = kind.solve(&p.op, pre, world, &p.rhs, &mut x, &solver_cfg(), &mut ws);
    observe(&st, &x)
}

/// Solve on `ranks` simulated message-passing ranks with a zero-cost
/// network and the default (binomial) collective schedule.
pub fn run_ranks(p: &Problem, pre: &dyn Preconditioner, kind: SolverKind, ranks: usize) -> Observables {
    run_ranks_cfg(p, pre, kind, ranks, RankSimConfig::default())
}

/// Solve on simulated ranks under an explicit ranksim configuration (to
/// pin a collective algorithm, overlap mode, or fault plan).
pub fn run_ranks_cfg(
    p: &Problem,
    pre: &dyn Preconditioner,
    kind: SolverKind,
    ranks: usize,
    cfg: RankSimConfig,
) -> Observables {
    let world = RankWorld::new(&p.layout, ranks, Arc::new(ZeroCost), cfg);
    let x0 = DistVec::zeros(&p.layout);
    let out = solve_on_ranks(&world, &p.op, pre, kind, &p.rhs, &x0, &solver_cfg());
    observe(out.stats(), &out.x)
}

/// Field-by-field bitwise comparison with readable failure messages.
pub fn assert_same(name: &str, base: &Observables, got: &Observables) {
    assert_eq!(
        got.iterations, base.iterations,
        "{name}: iteration counts differ"
    );
    assert_eq!(got.outcome, base.outcome, "{name}: solve outcome differs");
    assert_eq!(
        got.final_residual_bits,
        base.final_residual_bits,
        "{name}: final residuals differ ({:e} vs {:e})",
        f64::from_bits(got.final_residual_bits),
        f64::from_bits(base.final_residual_bits)
    );
    assert_eq!(
        got.history_bits, base.history_bits,
        "{name}: residual histories differ"
    );
    for (k, (a, b)) in got.x_bits.iter().zip(&base.x_bits).enumerate() {
        assert_eq!(
            a,
            b,
            "{name}: solution differs at point {k}: {:e} vs {:e}",
            f64::from_bits(*a),
            f64::from_bits(*b)
        );
    }
}

/// The lane modes to test against the scalar baseline on this machine.
pub fn lane_modes() -> Vec<SimdMode> {
    let mut m = vec![SimdMode::Portable];
    if pop_simd::detected_avx2() {
        m.push(SimdMode::Avx2);
    }
    m
}

/// Restores the startup dispatch decision even if an assertion panics, so a
/// failure in a forced-mode section can't poison other tests in the binary.
pub struct ModeGuard;

impl Drop for ModeGuard {
    fn drop(&mut self) {
        pop_simd::force_mode(None);
    }
}

//! Property-based tests (proptest) of the core invariants, across randomized
//! grids, masks, and fields.

use pop_baro::prelude::*;
use proptest::prelude::*;

/// Build a random small grid: random-seeded bathymetry with a random land
/// fraction, on either grid family.
fn arb_grid() -> impl Strategy<Value = Grid> {
    (
        0u64..1000,
        16usize..48,
        16usize..40,
        prop::bool::ANY,
    )
        .prop_map(|(seed, nx, ny, mercator)| {
            if mercator {
                Grid::gx01_scaled(seed, nx, ny)
            } else {
                Grid::gx1_scaled(seed, nx, ny)
            }
        })
}

/// A deterministic pseudo-random ocean field from a seed.
fn field(layout: &std::sync::Arc<pop_baro::comm::DistLayout>, seed: u64) -> DistVec {
    let mut v = DistVec::zeros(layout);
    v.fill_with(move |i, j| {
        let mut h = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(seed);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        (h % 10_000) as f64 / 5_000.0 - 1.0
    });
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The assembled operator is symmetric on every random grid:
    /// ⟨Ax, y⟩ = ⟨x, Ay⟩.
    #[test]
    fn operator_symmetric_on_random_grids(grid in arb_grid(), sx in 0u64..50, sy in 50u64..100) {
        let layout = DistLayout::build(&grid, (grid.nx / 3).max(4), (grid.ny / 3).max(4));
        let world = CommWorld::serial();
        let op = NinePoint::assemble(&grid, &layout, &world, 5000.0);
        let mut x = field(&layout, sx);
        let mut y = field(&layout, sy);
        world.halo_update(&mut x);
        world.halo_update(&mut y);
        let mut ax = DistVec::zeros(&layout);
        let mut ay = DistVec::zeros(&layout);
        op.apply(&world, &x, &mut ax);
        op.apply(&world, &y, &mut ay);
        let yax = world.dot(&y, &ax);
        let xay = world.dot(&x, &ay);
        let scale = yax.abs().max(xay.abs()).max(1.0);
        prop_assert!(((yax - xay) / scale).abs() < 1e-11, "{yax} vs {xay}");
    }

    /// ...and positive definite: ⟨Ax, x⟩ > 0 for nonzero ocean fields.
    #[test]
    fn operator_positive_definite(grid in arb_grid(), s in 0u64..100) {
        let layout = DistLayout::build(&grid, (grid.nx / 3).max(4), (grid.ny / 3).max(4));
        let world = CommWorld::serial();
        let op = NinePoint::assemble(&grid, &layout, &world, 5000.0);
        let mut x = field(&layout, s);
        world.halo_update(&mut x);
        let mut ax = DistVec::zeros(&layout);
        op.apply(&world, &x, &mut ax);
        let q = world.dot(&x, &ax);
        prop_assert!(q > 0.0, "x'Ax = {q}");
    }

    /// Halo exchange moves data without inventing or destroying it: after an
    /// update, every halo cell equals the owning block's interior value (or
    /// zero where no owner exists), and interiors are untouched.
    #[test]
    fn halo_exchange_is_faithful(grid in arb_grid(), s in 0u64..100) {
        let layout = DistLayout::build(&grid, (grid.nx / 4).max(3), (grid.ny / 4).max(3));
        let world = CommWorld::serial();
        let mut v = field(&layout, s);
        let before = v.to_global();
        world.halo_update(&mut v);
        prop_assert_eq!(v.to_global(), before, "interiors changed");
    }

    /// Block-EVP preconditioning is symmetric positive definite as an
    /// operator — the property CG preconditioning theory requires — for
    /// arbitrary coastline geometry.
    #[test]
    fn block_evp_spd_on_random_grids(grid in arb_grid(), sx in 0u64..50, sy in 50u64..100) {
        let layout = DistLayout::build(&grid, (grid.nx / 3).max(4), (grid.ny / 3).max(4));
        let world = CommWorld::serial();
        let op = NinePoint::assemble(&grid, &layout, &world, 5000.0);
        let pre = BlockEvp::with_defaults(&op);
        let x = field(&layout, sx);
        let y = field(&layout, sy);
        let mut mx = DistVec::zeros(&layout);
        let mut my = DistVec::zeros(&layout);
        pre.apply(&world, &x, &mut mx);
        pre.apply(&world, &y, &mut my);
        let ymx = world.dot(&y, &mx);
        let xmy = world.dot(&x, &my);
        let scale = ymx.abs().max(xmy.abs()).max(1e-30);
        prop_assert!(((ymx - xmy) / scale).abs() < 1e-5, "{ymx} vs {xmy}");
        let xmx = world.dot(&x, &mx);
        prop_assert!(xmx > 0.0);
    }

    /// Solving then applying the operator recovers the right-hand side
    /// (backward check), for random grids and random RHS.
    #[test]
    fn solve_then_apply_roundtrips(grid in arb_grid(), s in 0u64..100) {
        let layout = DistLayout::build(&grid, (grid.nx / 3).max(4), (grid.ny / 3).max(4));
        let world = CommWorld::serial();
        let op = NinePoint::assemble(&grid, &layout, &world, 5000.0);
        let mut rhs = field(&layout, s);
        // Project the RHS into the operator's range (apply once) so the
        // system is consistent regardless of mask pathologies.
        world.halo_update(&mut rhs);
        let mut b = DistVec::zeros(&layout);
        op.apply(&world, &rhs, &mut b);
        let setup = SolverSetup::new(SolverChoice::ChronGearDiag, &op, &world);
        let mut x = DistVec::zeros(&layout);
        let st = setup.solve(&op, &world, &b, &mut x, &SolverConfig {
            tol: 1e-11,
            max_iters: 50_000,
            check_every: 10,
        });
        prop_assert!(st.converged);
        world.halo_update(&mut x);
        let mut back = DistVec::zeros(&layout);
        op.apply(&world, &x, &mut back);
        back.axpy(-1.0, &b);
        let rel = (world.norm2_sq(&back) / world.norm2_sq(&b).max(1e-300)).sqrt();
        prop_assert!(rel < 1e-10, "residual {rel}");
    }

    /// Gathering a scattered field is lossless on ocean points, under any
    /// decomposition.
    #[test]
    fn scatter_gather_roundtrip(grid in arb_grid(), bx in 3usize..12, by in 3usize..12, s in 0u64..100) {
        let bx = bx.min(grid.nx);
        let by = by.min(grid.ny);
        let layout = DistLayout::build(&grid, bx, by);
        let n = grid.nx * grid.ny;
        let global: Vec<f64> = (0..n).map(|k| ((k as u64).wrapping_mul(s + 1) % 1000) as f64).collect();
        let v = DistVec::from_global(&layout, &global);
        let back = v.to_global();
        for j in 0..grid.ny {
            for i in 0..grid.nx {
                let k = j * grid.nx + i;
                if grid.is_ocean(i, j) {
                    prop_assert_eq!(back[k], global[k]);
                } else {
                    prop_assert_eq!(back[k], 0.0);
                }
            }
        }
    }
}

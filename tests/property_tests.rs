//! Property-style tests of the core invariants, across randomized grids,
//! masks, and fields. Each property is checked over a fixed set of seeded
//! cases (no external property-testing framework, so the suite builds
//! offline); case parameters are drawn from [`pop_rng::SmallRng`] so failures
//! reproduce exactly.

use pop_baro::prelude::*;
use pop_rng::SmallRng;

const CASES: u64 = 12;

/// Random small grid for case `c`: random-seeded bathymetry with a random
/// land fraction, on either grid family.
fn arb_grid(rng: &mut SmallRng) -> Grid {
    let seed = rng.gen_range(0u64..1000);
    let nx = rng.gen_range(16usize..48);
    let ny = rng.gen_range(16usize..40);
    if rng.gen::<bool>() {
        Grid::gx01_scaled(seed, nx, ny)
    } else {
        Grid::gx1_scaled(seed, nx, ny)
    }
}

fn case_rng(property: u64, c: u64) -> SmallRng {
    SmallRng::seed_from_u64(property.wrapping_mul(0x9E37_79B9) ^ c)
}

/// A deterministic pseudo-random ocean field from a seed.
fn field(layout: &std::sync::Arc<pop_baro::comm::DistLayout>, seed: u64) -> DistVec {
    let mut v = DistVec::zeros(layout);
    v.fill_with(move |i, j| {
        let mut h = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(seed);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        (h % 10_000) as f64 / 5_000.0 - 1.0
    });
    v
}

/// The assembled operator is symmetric on every random grid:
/// ⟨Ax, y⟩ = ⟨x, Ay⟩.
#[test]
fn operator_symmetric_on_random_grids() {
    for c in 0..CASES {
        let mut rng = case_rng(1, c);
        let grid = arb_grid(&mut rng);
        let sx = rng.gen_range(0u64..50);
        let sy = rng.gen_range(50u64..100);
        let layout = DistLayout::build(&grid, (grid.nx / 3).max(4), (grid.ny / 3).max(4));
        let world = CommWorld::serial();
        let op = NinePoint::assemble(&grid, &layout, &world, 5000.0);
        let mut x = field(&layout, sx);
        let mut y = field(&layout, sy);
        world.halo_update(&mut x);
        world.halo_update(&mut y);
        let mut ax = DistVec::zeros(&layout);
        let mut ay = DistVec::zeros(&layout);
        op.apply(&world, &x, &mut ax);
        op.apply(&world, &y, &mut ay);
        let yax = world.dot(&y, &ax);
        let xay = world.dot(&x, &ay);
        let scale = yax.abs().max(xay.abs()).max(1.0);
        assert!(
            ((yax - xay) / scale).abs() < 1e-11,
            "case {c}: {yax} vs {xay}"
        );
    }
}

/// ...and positive definite: ⟨Ax, x⟩ > 0 for nonzero ocean fields.
#[test]
fn operator_positive_definite() {
    for c in 0..CASES {
        let mut rng = case_rng(2, c);
        let grid = arb_grid(&mut rng);
        let s = rng.gen_range(0u64..100);
        let layout = DistLayout::build(&grid, (grid.nx / 3).max(4), (grid.ny / 3).max(4));
        let world = CommWorld::serial();
        let op = NinePoint::assemble(&grid, &layout, &world, 5000.0);
        let mut x = field(&layout, s);
        world.halo_update(&mut x);
        let mut ax = DistVec::zeros(&layout);
        op.apply(&world, &x, &mut ax);
        let q = world.dot(&x, &ax);
        assert!(q > 0.0, "case {c}: x'Ax = {q}");
    }
}

/// Halo exchange moves data without inventing or destroying it: after an
/// update, interiors are untouched.
#[test]
fn halo_exchange_is_faithful() {
    for c in 0..CASES {
        let mut rng = case_rng(3, c);
        let grid = arb_grid(&mut rng);
        let s = rng.gen_range(0u64..100);
        let layout = DistLayout::build(&grid, (grid.nx / 4).max(3), (grid.ny / 4).max(3));
        let world = CommWorld::serial();
        let mut v = field(&layout, s);
        let before = v.to_global();
        world.halo_update(&mut v);
        assert_eq!(v.to_global(), before, "case {c}: interiors changed");
    }
}

/// Block-EVP preconditioning is symmetric positive definite as an operator —
/// the property CG preconditioning theory requires — for arbitrary coastline
/// geometry.
#[test]
fn block_evp_spd_on_random_grids() {
    for c in 0..CASES {
        let mut rng = case_rng(4, c);
        let grid = arb_grid(&mut rng);
        let sx = rng.gen_range(0u64..50);
        let sy = rng.gen_range(50u64..100);
        let layout = DistLayout::build(&grid, (grid.nx / 3).max(4), (grid.ny / 3).max(4));
        let world = CommWorld::serial();
        let op = NinePoint::assemble(&grid, &layout, &world, 5000.0);
        let pre = BlockEvp::with_defaults(&op);
        let x = field(&layout, sx);
        let y = field(&layout, sy);
        let mut mx = DistVec::zeros(&layout);
        let mut my = DistVec::zeros(&layout);
        pre.apply(&world, &x, &mut mx);
        pre.apply(&world, &y, &mut my);
        let ymx = world.dot(&y, &mx);
        let xmy = world.dot(&x, &my);
        let scale = ymx.abs().max(xmy.abs()).max(1e-30);
        assert!(
            ((ymx - xmy) / scale).abs() < 1e-5,
            "case {c}: {ymx} vs {xmy}"
        );
        let xmx = world.dot(&x, &mx);
        assert!(xmx > 0.0, "case {c}");
    }
}

/// Solving then applying the operator recovers the right-hand side (backward
/// check), for random grids and random RHS.
#[test]
fn solve_then_apply_roundtrips() {
    for c in 0..CASES {
        let mut rng = case_rng(5, c);
        let grid = arb_grid(&mut rng);
        let s = rng.gen_range(0u64..100);
        let layout = DistLayout::build(&grid, (grid.nx / 3).max(4), (grid.ny / 3).max(4));
        let world = CommWorld::serial();
        let op = NinePoint::assemble(&grid, &layout, &world, 5000.0);
        let mut rhs = field(&layout, s);
        // Project the RHS into the operator's range (apply once) so the
        // system is consistent regardless of mask pathologies.
        world.halo_update(&mut rhs);
        let mut b = DistVec::zeros(&layout);
        op.apply(&world, &rhs, &mut b);
        let setup = SolverSetup::new(SolverChoice::ChronGearDiag, &op, &world);
        let mut x = DistVec::zeros(&layout);
        let st = setup.solve(
            &op,
            &world,
            &b,
            &mut x,
            &SolverConfig {
                tol: 1e-11,
                max_iters: 50_000,
                check_every: 10,
                ..SolverConfig::default()
            },
        );
        assert!(st.converged, "case {c}");
        world.halo_update(&mut x);
        let mut back = DistVec::zeros(&layout);
        op.apply(&world, &x, &mut back);
        back.axpy(-1.0, &b);
        let rel = (world.norm2_sq(&back) / world.norm2_sq(&b).max(1e-300)).sqrt();
        assert!(rel < 1e-10, "case {c}: residual {rel}");
    }
}

/// Gathering a scattered field is lossless on ocean points, under any
/// decomposition.
#[test]
fn scatter_gather_roundtrip() {
    for c in 0..CASES {
        let mut rng = case_rng(6, c);
        let grid = arb_grid(&mut rng);
        let bx = rng.gen_range(3usize..12).min(grid.nx);
        let by = rng.gen_range(3usize..12).min(grid.ny);
        let s = rng.gen_range(0u64..100);
        let layout = DistLayout::build(&grid, bx, by);
        let n = grid.nx * grid.ny;
        let global: Vec<f64> = (0..n)
            .map(|k| ((k as u64).wrapping_mul(s + 1) % 1000) as f64)
            .collect();
        let v = DistVec::from_global(&layout, &global);
        let back = v.to_global();
        for j in 0..grid.ny {
            for i in 0..grid.nx {
                let k = j * grid.nx + i;
                if grid.is_ocean(i, j) {
                    assert_eq!(back[k], global[k], "case {c}");
                } else {
                    assert_eq!(back[k], 0.0, "case {c}");
                }
            }
        }
    }
}

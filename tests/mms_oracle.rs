//! Method-of-manufactured-solutions oracle for every solver.
//!
//! Two independent correctness probes (see `pop_verif::mms`):
//!
//! - **Continuous manufacture** on a uniform basin: the RHS comes from the
//!   analytic operator `φψ − H∇²ψ`, so the recovered solution differs from ψ
//!   by the *discretization* error, which must shrink at second order when
//!   the mesh is refined. This checks the assembled operator and each solver
//!   against the mathematics, not against another implementation.
//! - **Discrete manufacture** (`b = Aψ` via the assembled operator) on
//!   production-style dipole metrics and a hand-built two-basin mask: ψ is
//!   the exact solution of the linear system and every solver must recover
//!   it to solver tolerance regardless of metric distortion or mask topology.

use pop_baro::prelude::*;
use pop_baro::verif::mms::{dipole_grid, two_basin_grid};
use pop_core::solvers::SolverWorkspace;

fn cfg() -> SolverConfig {
    SolverConfig {
        tol: 1e-12,
        max_iters: 20_000,
        check_every: 10,
        ..SolverConfig::default()
    }
}

fn solver_matrix(op: &NinePoint, pre: &dyn Preconditioner) -> Vec<SolverKind> {
    let world = CommWorld::serial();
    let (bounds, _) = estimate_bounds(op, pre, &world, &LanczosConfig::default());
    vec![
        SolverKind::ClassicPcg,
        SolverKind::ChronGear,
        SolverKind::PipelinedCg,
        SolverKind::Pcsi(bounds),
    ]
}

/// Solve the manufactured system with `kind` and return the relative L2
/// error of the recovered field against the analytic solution.
fn recovered_error(case: &MmsCase, layout_block: (usize, usize), kind: SolverKind) -> f64 {
    let layout = DistLayout::build(&case.grid, layout_block.0, layout_block.1);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&case.grid, &layout, &world, case.tau);
    let pre = Diagonal::new(&op);
    let rhs = DistVec::from_global(&layout, &case.rhs);
    let mut x = DistVec::zeros(&layout);
    let mut ws = SolverWorkspace::new();
    let st = kind.solve(&op, &pre, &world, &rhs, &mut x, &cfg(), &mut ws);
    assert!(
        st.converged,
        "{} did not converge on the manufactured system (residual {:e})",
        kind.name(),
        st.final_relative_residual
    );
    case.rel_l2_error(&x.to_global())
}

/// Continuous manufacture: each solver's recovered field converges to the
/// analytic solution at second order in the mesh width.
#[test]
fn uniform_basin_solutions_converge_at_second_order() {
    let coarse_case = MmsCase::uniform_basin(24, 500.0, 1.0e6, 1800.0);
    let fine_case = MmsCase::uniform_basin(48, 500.0, 1.0e6, 1800.0);
    // The operator is the same for every solver; reuse one matrix listing.
    {
        let layout = DistLayout::build(&coarse_case.grid, 6, 6);
        let world = CommWorld::serial();
        let op = NinePoint::assemble(&coarse_case.grid, &layout, &world, coarse_case.tau);
        let pre = Diagonal::new(&op);
        for kind in solver_matrix(&op, &pre) {
            let coarse = recovered_error(&coarse_case, (6, 6), kind);
            let fine = recovered_error(&fine_case, (12, 12), kind);
            assert!(
                fine < 5e-2,
                "{}: discretization error too large at n=48: {fine:e}",
                kind.name()
            );
            assert!(
                fine < 0.35 * coarse,
                "{}: not second order: err(24)={coarse:e}, err(48)={fine:e}",
                kind.name()
            );
        }
    }
}

/// Discrete manufacture on distorted production-style metrics: ψ is the
/// exact solution, so every solver recovers it to solver tolerance.
#[test]
fn sampled_oracle_is_recovered_on_dipole_metrics() {
    let grid = dipole_grid(3, 48, 32);
    let layout = DistLayout::build(&grid, 12, 8);
    let case = MmsCase::sampled(grid, &layout, 1800.0);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&case.grid, &layout, &world, case.tau);
    let pre = Diagonal::new(&op);
    for kind in solver_matrix(&op, &pre) {
        let err = recovered_error(&case, (12, 8), kind);
        assert!(
            err < 1e-7,
            "{}: sampled oracle missed on dipole grid: rel L2 {err:e}",
            kind.name()
        );
    }
}

/// Discrete manufacture across a two-basin mask joined by a one-cell
/// channel: the hard mask topology changes nothing — the oracle is still
/// recovered exactly (to solver tolerance).
#[test]
fn sampled_oracle_is_recovered_across_the_two_basin_channel() {
    let grid = two_basin_grid(32, 20, 300.0, 5.0e4);
    let layout = DistLayout::build(&grid, 8, 10);
    let case = MmsCase::sampled(grid, &layout, 1800.0);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&case.grid, &layout, &world, case.tau);
    let pre = Diagonal::new(&op);
    for kind in solver_matrix(&op, &pre) {
        let err = recovered_error(&case, (8, 10), kind);
        assert!(
            err < 1e-7,
            "{}: sampled oracle missed on the two-basin mask: rel L2 {err:e}",
            kind.name()
        );
    }
}

//! Properties of the padded-stride [`BlockVec`] storage.
//!
//! For the SIMD kernel layer, every block row is stored with its stride
//! rounded up to the 4-lane width and the backing buffer 32-byte aligned
//! (DESIGN.md §9). These tests pin the contract on deliberately awkward,
//! non-lane-multiple shapes like 13×7: the pad columns are storage-only
//! (no kernel, reduction, or halo exchange ever reads or writes them), and
//! the halo exchange and fused apply remain bitwise faithful.

use pop_baro::prelude::*;
use pop_comm::{masked_block_dot, BlockVec};
use pop_simd::{SimdMode, LANES};

/// A uniform value in [-1, 1) derived from (seed, i, j), order-independent.
fn noise(seed: u64, i: usize, j: usize) -> f64 {
    let mut s = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ ((j as u64) << 32);
    s = s.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = s;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

fn lane_modes() -> Vec<SimdMode> {
    let mut m = vec![SimdMode::Scalar, SimdMode::Portable];
    if pop_simd::detected_avx2() {
        m.push(SimdMode::Avx2);
    }
    m
}

/// Stride, size, and alignment invariants on assorted odd shapes.
#[test]
fn padded_stride_invariants() {
    for (nx, ny, h) in [
        (13usize, 7usize, 2usize),
        (13, 7, 1),
        (1, 1, 2),
        (5, 3, 1),
        (16, 8, 2),
        (7, 11, 2),
        (18, 20, 2),
    ] {
        let b = BlockVec::zeros(nx, ny, h);
        assert_eq!(b.stride() % LANES, 0, "({nx},{ny},{h}): stride lane-padded");
        assert!(
            b.stride() >= nx + 2 * h,
            "({nx},{ny},{h}): stride too small"
        );
        assert_eq!(
            b.raw().len(),
            b.stride() * (ny + 2 * h),
            "({nx},{ny},{h}): raw size"
        );
        assert_eq!(
            b.raw().as_ptr() as usize % 32,
            0,
            "({nx},{ny},{h}): base not 32-byte aligned"
        );
        // Lane-multiple stride ⇒ every row starts at the same alignment
        // phase, so row 0's alignment carries to all rows.
        assert_eq!((b.stride() * 8) % 32, 0);
    }
}

/// `masked_block_dot` on a padded 13×7 block matches a plain reference
/// accumulation over logical indices, bitwise — padding must not change
/// which cells (or in which order) the partial sums.
#[test]
fn block_dot_ignores_padding() {
    let (nx, ny) = (13usize, 7usize);
    let mut a = BlockVec::zeros(nx, ny, 2);
    let mut b = BlockVec::zeros(nx, ny, 2);
    let mask: Vec<u8> = (0..nx * ny).map(|k| (k % 5 != 3) as u8).collect();
    for j in 0..ny {
        for i in 0..nx {
            a.set(i, j, noise(1, i, j));
            b.set(i, j, noise(2, i, j));
        }
    }
    // Poison the pad columns: if anything reads them, NaN propagates.
    for v in [&mut a, &mut b] {
        let (s, w) = (v.stride(), v.nx + 2 * v.halo);
        let raw = v.raw_mut();
        for r in 0..ny + 4 {
            raw[r * s + w..(r + 1) * s].fill(f64::NAN);
        }
    }
    let mut want = 0.0f64;
    for j in 0..ny {
        for i in 0..nx {
            if mask[j * nx + i] != 0 {
                want += a.get(i, j) * b.get(i, j);
            }
        }
    }
    let got = masked_block_dot(&a, &b, &mask);
    assert!(got.is_finite(), "dot read a pad column");
    assert_eq!(got.to_bits(), want.to_bits());
}

/// On a multi-block 13×7 decomposition: the halo exchange leaves interiors
/// untouched, and NaN-poisoned pad columns never leak into the exchange,
/// the fused apply (any dispatch mode), or the global reductions.
#[test]
fn pad_columns_are_storage_only_end_to_end() {
    let grid = Grid::gx01_scaled(9, 39, 28);
    let layout = DistLayout::build(&grid, 13, 7);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 700.0);

    let mut x = DistVec::zeros(&layout);
    x.fill_with(|i, j| noise(7, i, j));
    world.halo_update(&mut x);

    // Clean reference pass.
    let clean_interior = x.to_global();
    let clean_dot = world.dot(&x, &x);
    let mut y = DistVec::zeros(&layout);
    op.apply(&world, &x, &mut y);
    let clean_y = y.to_global();

    // Poison every pad column of every block, halo rows included.
    for blk in &mut x.blocks {
        let (s, w, rows) = (blk.stride(), blk.nx + 2 * blk.halo, blk.ny + 2 * blk.halo);
        let raw = blk.raw_mut();
        for r in 0..rows {
            raw[r * s + w..(r + 1) * s].fill(f64::NAN);
        }
    }

    world.halo_update(&mut x);
    assert_eq!(
        x.to_global(),
        clean_interior,
        "halo exchange disturbed interiors or read pads"
    );
    let dot = world.dot(&x, &x);
    assert_eq!(dot.to_bits(), clean_dot.to_bits(), "dot read a pad column");

    for mode in lane_modes() {
        let mut y2 = DistVec::zeros(&layout);
        for b in 0..layout.n_blocks() {
            op.apply_block_into_mode(mode, b, &x.blocks[b], &mut y2.blocks[b], &layout.masks[b]);
        }
        let got = y2.to_global();
        assert!(
            got.iter().all(|v| v.is_finite()),
            "{} apply read a pad column",
            mode.name()
        );
        for (k, (a, b)) in got.iter().zip(&clean_y).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} apply differs at point {k} with poisoned pads",
                mode.name()
            );
        }
    }
}

/// The fused dispatch apply is bit-identical to the straightforward
/// reference loops on non-lane-multiple blocks, and the result does not
/// depend on the decomposition (13×7 vs 39×14 blocks have different pad
/// widths and halo traffic but must agree bitwise) — the halo exchange is
/// faithful on padded strides.
#[test]
fn apply_matches_reference_across_decompositions() {
    let grid = Grid::gx01_scaled(5, 39, 28);
    let world = CommWorld::serial();
    let run = |bx: usize, by: usize| -> (Vec<f64>, Vec<f64>) {
        let layout = DistLayout::build(&grid, bx, by);
        let op = NinePoint::assemble(&grid, &layout, &world, 700.0);
        let mut x = DistVec::zeros(&layout);
        x.fill_with(|i, j| noise(11, i, j));
        world.halo_update(&mut x);
        let mut y = DistVec::zeros(&layout);
        op.apply(&world, &x, &mut y);
        let mut yr = DistVec::zeros(&layout);
        op.apply_reference(&world, &x, &mut yr);
        (y.to_global(), yr.to_global())
    };
    let (y_a, yref_a) = run(13, 7);
    let (y_b, _) = run(39, 14);
    for (k, (a, r)) in y_a.iter().zip(&yref_a).enumerate() {
        assert_eq!(
            a.to_bits(),
            r.to_bits(),
            "apply vs reference differ at point {k}"
        );
    }
    for (k, (a, b)) in y_a.iter().zip(&y_b).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "decompositions disagree at point {k}: halo exchange unfaithful"
        );
    }
}

//! Observability must be free: obs on vs. off, bit-for-bit.
//!
//! The `pop-obs` recorder only ever *reads* communicator statistics — it
//! never issues communication and never perturbs the arithmetic. This suite
//! enforces that contract across every solver, preconditioner and backend:
//!
//! - **Bitwise identity**: solution vector, residual history, iteration
//!   count and outcome are identical with a live sink and a disabled one,
//!   on the serial, threaded and ranksim backends.
//! - **Counter identity**: the pinned communication counts (the paper's
//!   allreduce story) are unchanged by instrumentation.
//! - **Trace fidelity**: the recorded [`ConvergenceTrace`] reproduces the
//!   solve's own `SolveStats` — same samples, same iterations, and per-phase
//!   communication deltas that sum *exactly* to the solve's totals.
//! - **Exporter stability**: the Prometheus text rendering of a hand-built
//!   registry matches a golden file byte-for-byte.

use pop_baro::prelude::*;
use pop_core::solvers::{SolveStats, SolverWorkspace};
use pop_obs::{Registry, RESIDUAL_BUCKETS};
use std::sync::Arc;

const NX: usize = 64;
const NY: usize = 48;
const BX: usize = 16;
const BY: usize = 12;

fn setup() -> (Arc<DistLayout>, NinePoint, DistVec) {
    let grid = Grid::gx1_scaled(13, NX, NY);
    let layout = DistLayout::build(&grid, BX, BY);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 4000.0);
    let mut truth = DistVec::zeros(&layout);
    truth.fill_with(|i, j| ((i as f64) * 0.23).sin() + ((j as f64) * 0.11).cos());
    world.halo_update(&mut truth);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&world, &truth, &mut rhs);
    (layout, op, rhs)
}

fn cfg(obs: ObsSink) -> SolverConfig {
    SolverConfig {
        tol: 1e-10,
        max_iters: 4000,
        check_every: 10,
        obs,
        ..SolverConfig::default()
    }
}

/// Everything a solve produces that instrumentation must not perturb.
/// (Communication counters are compared separately, off-vs-on within one
/// backend — serial and ranksim legitimately count messages differently.)
#[derive(PartialEq, Debug)]
struct Observables {
    iterations: usize,
    outcome: SolveOutcome,
    final_residual_bits: u64,
    history_bits: Vec<(usize, u64)>,
    x_bits: Vec<u64>,
}

fn observe(st: &SolveStats, x: &DistVec) -> Observables {
    Observables {
        iterations: st.iterations,
        outcome: st.outcome,
        final_residual_bits: st.final_relative_residual.to_bits(),
        history_bits: st
            .residual_history
            .iter()
            .map(|&(k, r)| (k, r.to_bits()))
            .collect(),
        x_bits: x.to_global().iter().map(|v| v.to_bits()).collect(),
    }
}

fn run_world(
    world: &CommWorld,
    layout: &Arc<DistLayout>,
    op: &NinePoint,
    pre: &dyn Preconditioner,
    kind: SolverKind,
    rhs: &DistVec,
    obs: ObsSink,
) -> (Observables, SolveStats) {
    let mut x = DistVec::zeros(layout);
    let mut ws = SolverWorkspace::new();
    let st = kind.solve(op, pre, world, rhs, &mut x, &cfg(obs), &mut ws);
    (observe(&st, &x), st)
}

fn run_ranks(
    layout: &Arc<DistLayout>,
    op: &NinePoint,
    pre: &dyn Preconditioner,
    kind: SolverKind,
    rhs: &DistVec,
    obs: ObsSink,
) -> (Observables, SolveStats) {
    let world = RankWorld::new(layout, 4, Arc::new(ZeroCost), RankSimConfig::default());
    let x0 = DistVec::zeros(layout);
    let out = solve_on_ranks(&world, op, pre, kind, rhs, &x0, &cfg(obs));
    (observe(out.stats(), &out.x), out.stats().clone())
}

/// Check a recorded trace against the solve that produced it.
fn assert_trace_matches(trace: &ConvergenceTrace, st: &SolveStats, name: &str) {
    assert_eq!(trace.iterations, st.iterations, "{name}: trace iterations");
    assert_eq!(trace.outcome, st.outcome.label(), "{name}: trace outcome");
    assert_eq!(
        trace.final_rel.to_bits(),
        st.final_relative_residual.to_bits(),
        "{name}: trace final residual"
    );
    assert_eq!(
        trace.samples, st.residual_history,
        "{name}: trace samples must equal the residual history"
    );
    assert!(
        !trace.samples.is_empty(),
        "{name}: converged solve must have recorded at least one check"
    );
    // The per-phase communication deltas partition the solve's counters:
    // their sum is exactly `SolveStats.comm`, field for field.
    assert_eq!(
        trace.total_comm(),
        st.comm,
        "{name}: phase deltas must sum to the solve's comm totals"
    );
}

/// The full matrix: 4 solvers × 2 preconditioners × 3 backends, obs off vs
/// on, everything bit-identical, every trace faithful.
#[test]
fn obs_on_and_off_are_bitwise_identical_everywhere() {
    let (layout, op, rhs) = setup();
    let serial = CommWorld::serial();
    let threaded = CommWorld::threaded();
    let diag = Diagonal::new(&op);
    let evp = BlockEvp::with_defaults(&op);
    let preconds: [(&str, &dyn Preconditioner); 2] = [("diag", &diag), ("evp", &evp)];

    for (pname, pre) in preconds {
        let (bounds, _) = estimate_bounds(&op, pre, &serial, &LanczosConfig::default());
        for kind in [
            SolverKind::ClassicPcg,
            SolverKind::ChronGear,
            SolverKind::PipelinedCg,
            SolverKind::Pcsi(bounds),
        ] {
            let name = format!("{}+{pname}", kind.name());
            let (base, st_off) =
                run_world(&serial, &layout, &op, pre, kind, &rhs, ObsSink::disabled());
            assert_eq!(base.outcome, SolveOutcome::Converged, "{name}: baseline");

            // Serial, sink live.
            let sink = ObsSink::enabled();
            let (on, st) = run_world(&serial, &layout, &op, pre, kind, &rhs, sink.clone());
            assert!(on == base, "{name}: serial obs-on diverged from obs-off");
            assert_eq!(
                st.comm, st_off.comm,
                "{name}: instrumentation must not change communication counts"
            );
            let traces = sink.traces();
            assert_eq!(traces.len(), 1, "{name}: one solve, one trace");
            assert_trace_matches(&traces[0], &st, &format!("{name} serial"));
            assert_eq!(traces[0].solver, kind.name());
            assert_eq!(traces[0].precond, pre.name());

            // Threaded backend, sink live.
            let sink = ObsSink::enabled();
            let (on, st) = run_world(&threaded, &layout, &op, pre, kind, &rhs, sink.clone());
            assert!(on == base, "{name}: threaded obs-on diverged");
            assert_trace_matches(&sink.traces()[0], &st, &format!("{name} threaded"));

            // Ranksim backend: off vs on (rank 0 carries the sink).
            let (roff, rst_off) = run_ranks(&layout, &op, pre, kind, &rhs, ObsSink::disabled());
            assert!(roff == base, "{name}: ranksim obs-off diverged from serial");
            let sink = ObsSink::enabled();
            let (ron, st) = run_ranks(&layout, &op, pre, kind, &rhs, sink.clone());
            assert!(ron == base, "{name}: ranksim obs-on diverged");
            assert_eq!(
                st.comm, rst_off.comm,
                "{name}: ranksim comm counts must not change with obs on"
            );
            let traces = sink.traces();
            assert_eq!(
                traces.len(),
                1,
                "{name}: SPMD solve must record exactly one trace (rank 0's)"
            );
            assert_trace_matches(&traces[0], &st, &format!("{name} ranksim"));
        }
    }
}

/// The paper's instrument: P-CSI with block-EVP exports a full trace — the
/// eigenbound estimate, one residual sample per convergence check, and an
/// "iterate" phase with zero allreduces (the whole point of the method).
#[test]
fn pcsi_evp_trace_reflects_the_papers_structure() {
    let (layout, op, rhs) = setup();
    let serial = CommWorld::serial();
    let evp = BlockEvp::with_defaults(&op);
    let (bounds, _) = estimate_bounds(&op, &evp, &serial, &LanczosConfig::default());

    let sink = ObsSink::enabled();
    let (obs, st) = run_world(
        &serial,
        &layout,
        &op,
        &evp,
        SolverKind::Pcsi(bounds),
        &rhs,
        sink.clone(),
    );
    assert_eq!(obs.outcome, SolveOutcome::Converged);

    let traces = sink.traces();
    let t = &traces[0];
    assert_eq!(t.solver, "pcsi");
    assert_eq!(t.precond, "evp");
    assert_eq!(
        t.eigen,
        Some((bounds.nu, bounds.mu)),
        "P-CSI must record the spectral bounds it ran with"
    );
    // One residual sample per convergence check performed.
    let checks = st.residual_history.len();
    assert!(checks >= 1);
    assert_eq!(t.samples.len(), checks);
    // P-CSI's inner loop is reduction-free: every allreduce belongs to the
    // setup/check/finalize phases, never to "iterate".
    let iterate = t
        .phases
        .iter()
        .find(|p| p.name == "iterate")
        .expect("iterate phase");
    assert_eq!(
        iterate.comm.allreduces, 0,
        "P-CSI's iterate phase must not reduce — that is the paper"
    );
    let total: u64 = t.phases.iter().map(|p| p.comm.allreduces).sum();
    assert_eq!(total, checks as u64 + 1, "pinned P-CSI allreduce count");

    // Registry side: the per-phase counters agree with the trace.
    let metrics = sink.metrics();
    for phase in ["setup", "iterate", "check", "finalize"] {
        let trace_count = t
            .phases
            .iter()
            .find(|p| p.name == phase)
            .map(|p| p.comm.allreduces)
            .unwrap_or(0);
        let metric_count = metrics
            .iter()
            .find(|m| {
                m.name == "pop_comm_allreduces_total"
                    && m.labels.contains(&("phase", phase))
                    && m.labels.contains(&("solver", "pcsi"))
            })
            .map(|m| match m.value {
                pop_obs::SampleValue::Counter(v) => v,
                ref other => panic!("unexpected sample kind {other:?}"),
            })
            .unwrap_or(0);
        assert_eq!(
            metric_count, trace_count,
            "phase {phase}: registry and trace disagree"
        );
    }
    // And the residual histogram saw every check.
    let hist = metrics
        .iter()
        .find(|m| m.name == "pop_check_relative_residual")
        .expect("residual histogram");
    match &hist.value {
        pop_obs::SampleValue::Histogram { count, .. } => {
            assert_eq!(*count, checks as u64);
        }
        other => panic!("expected histogram, got {other:?}"),
    }
}

/// ChronGear's counters, for contrast: its iterate phase carries one
/// allreduce per iteration — the scaling wall the paper removes.
#[test]
fn chrongear_iterate_phase_reduces_every_iteration() {
    let (layout, op, rhs) = setup();
    let serial = CommWorld::serial();
    let diag = Diagonal::new(&op);
    let sink = ObsSink::enabled();
    let (_, st) = run_world(
        &serial,
        &layout,
        &op,
        &diag,
        SolverKind::ChronGear,
        &rhs,
        sink.clone(),
    );
    let traces = sink.traces();
    let t = &traces[0];
    let iterate = t
        .phases
        .iter()
        .find(|p| p.name == "iterate")
        .expect("iterate phase");
    assert_eq!(
        iterate.comm.allreduces, st.iterations as u64,
        "ChronGear reduces once per iteration"
    );
}

/// The Prometheus rendering of a deterministic, hand-built registry must
/// match the golden file byte-for-byte. Regenerate with
/// `POP_UPDATE_GOLDEN=1 cargo test -p pop-baro --test obs_equivalence`.
#[test]
fn prometheus_export_matches_golden_file() {
    let r = Registry::new();
    r.counter_add(
        "pop_solves_total",
        &[
            ("outcome", "converged"),
            ("precond", "evp"),
            ("solver", "pcsi"),
        ],
        2,
    );
    r.counter_add(
        "pop_solves_total",
        &[
            ("outcome", "converged"),
            ("precond", "diag"),
            ("solver", "chrongear"),
        ],
        1,
    );
    r.counter_add(
        "pop_comm_allreduces_total",
        &[("phase", "check"), ("solver", "pcsi")],
        14,
    );
    r.counter_add(
        "pop_comm_allreduces_total",
        &[("phase", "setup"), ("solver", "pcsi")],
        2,
    );
    r.counter_add(
        "pop_comm_allreduces_total",
        &[("phase", "iterate"), ("solver", "chrongear")],
        96,
    );
    r.gauge_set("pop_eigen_nu", &[("precond", "evp")], 0.0625);
    r.gauge_set("pop_eigen_mu", &[("precond", "evp")], 1.9375);
    r.counter_add_f64(
        "pop_phase_seconds_total",
        &[("phase", "iterate"), ("solver", "pcsi")],
        1.5,
    );
    for v in [3e-3, 4.2e-7, 8.8e-11, 8.8e-11, 1e-15] {
        r.observe(
            "pop_check_relative_residual",
            &[("solver", "pcsi")],
            &RESIDUAL_BUCKETS,
            v,
        );
    }

    let rendered = pop_baro::obs::export::prometheus(&r.snapshot());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt");
    if std::env::var("POP_UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file missing — regenerate");
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from the golden file"
    );
}

/// The SLO JSON rendering (histogram quantile estimation over a
/// deterministic, hand-built registry) must match the golden file
/// byte-for-byte. Regenerate with
/// `POP_UPDATE_GOLDEN=1 cargo test -p pop-baro --test obs_equivalence`.
#[test]
fn slo_export_matches_golden_file() {
    use pop_baro::serve::{LATENCY_BUCKETS, WIDTH_BUCKETS};
    let r = Registry::new();
    // A plausible serve snapshot: latency observations across three
    // decades plus one overflow, a few batch widths, and counters/gauges
    // the SLO view must skip.
    for v in [
        2e-4, 2e-4, 8e-4, 1.2e-3, 2.5e-3, 2.5e-3, 9e-3, 4e-2, 0.2, 45.0,
    ] {
        r.observe(
            "pop_serve_latency_seconds",
            &[("solver", "pcsi")],
            &LATENCY_BUCKETS,
            v,
        );
    }
    for w in [1.0, 4.0, 4.0, 16.0] {
        r.observe("pop_serve_batch_width", &[], &WIDTH_BUCKETS, w);
    }
    r.counter_add("pop_serve_requests_total", &[("outcome", "served")], 12);
    r.gauge_set("pop_serve_queue_depth", &[], 3.0);

    let rendered = pop_baro::obs::export::slo_json(&r.snapshot());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/slo.json");
    if std::env::var("POP_UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file missing — regenerate");
    assert_eq!(
        rendered, golden,
        "SLO JSON export drifted from the golden file"
    );
}

/// Cross-check the golden quantiles against an exact reference: the p50 of
/// the latency histogram must sit in the bucket holding the 5th/10th
/// observation, interpolated — and the estimator must agree with a direct
/// `histogram_quantile` call on the same buckets.
#[test]
fn slo_quantiles_consistent_with_direct_estimation() {
    use pop_baro::serve::LATENCY_BUCKETS;
    use pop_obs::{histogram_quantile, SampleValue};
    let r = Registry::new();
    for v in [
        2e-4, 2e-4, 8e-4, 1.2e-3, 2.5e-3, 2.5e-3, 9e-3, 4e-2, 0.2, 45.0,
    ] {
        r.observe(
            "pop_serve_latency_seconds",
            &[("solver", "pcsi")],
            &LATENCY_BUCKETS,
            v,
        );
    }
    let snap = r.snapshot();
    let (bounds, buckets) = match &snap[0].value {
        SampleValue::Histogram {
            bounds, buckets, ..
        } => (*bounds, buckets.clone()),
        other => panic!("expected histogram, got {other:?}"),
    };
    let p50 = histogram_quantile(bounds, &buckets, 0.5).unwrap();
    // 10 observations, rank 5 lands at the boundary of the (1e-3, 3e-3]
    // bucket's start: 4 observations ≤ 1.2e-3... bucket layout: counts are
    // [0,2,1,3,1,1,0,1,0,0,0,0]+overflow ⇒ cumulative hits 5 inside
    // (1e-3,3e-3], two-thirds through → 1e-3 + (2/3)·2e-3.
    let expected = 1e-3 + (2.0 / 3.0) * 2e-3;
    assert!(
        (p50 - expected).abs() < 1e-12,
        "p50 {p50} vs expected {expected}"
    );
    // Overflowing p99 clamps to the top finite bound.
    let p99 = histogram_quantile(bounds, &buckets, 0.99).unwrap();
    assert_eq!(p99, 30.0);
}

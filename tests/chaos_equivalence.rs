//! Chaos conformance: benign network faults are bitwise invisible.
//!
//! The fault layer (DESIGN.md §10) splits faults into two classes. Benign
//! faults — delay jitter, duplication, bounded reordering, recoverable
//! drop-with-retry, whole-rank stalls — change *when* messages arrive, never
//! *what* they say: sequence-number dedup discards duplicates, the mailbox
//! files reordered arrivals by epoch, and retries only charge simulated
//! time. This suite pins the resulting contract:
//!
//! - `FaultPlan::none()` is bit-for-bit the pre-fault runtime: identical
//!   solutions, iteration counts, residual histories and communication
//!   counts to the shared-memory world, with every fault counter zero.
//! - A seeded benign plan perturbs only simulated clocks and fault
//!   counters; solutions stay bitwise identical to the fault-free run, for
//!   every solver, under default and forced-scalar SIMD dispatch.
//!
//! Seeds are pinned (override with `POP_CHAOS_SEED`) so CI chaos runs are
//! reproducible down to the individual dropped packet.

use pop_baro::prelude::*;
use pop_baro::ranksim::RankReport;
use pop_core::solvers::{SolveStats, SolverWorkspace};
use pop_simd::SimdMode;
use std::sync::Arc;

/// SplitMix64: a tiny, stable PRNG so the "random" fields are reproducible
/// from the seed alone.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A uniform value in [-1, 1) derived from (seed, i, j).
fn noise(seed: u64, i: usize, j: usize) -> f64 {
    let mut s = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ ((j as u64) << 32);
    let bits = splitmix64(&mut s);
    (bits >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

struct Problem {
    layout: std::sync::Arc<pop_baro::comm::DistLayout>,
    op: NinePoint,
    rhs: DistVec,
}

/// A masked multi-block problem with a pseudo-random right-hand side built
/// in the operator's range, as in `tests/ranksim_equivalence.rs`.
fn problem(seed: u64) -> Problem {
    let grid = Grid::gx01_scaled(11, 90, 60);
    let layout = DistLayout::build(&grid, 18, 20);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 9000.0);
    let mut field = DistVec::zeros(&layout);
    field.fill_with(|i, j| noise(seed, i, j));
    world.halo_update(&mut field);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&world, &field, &mut rhs);
    Problem { layout, op, rhs }
}

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("POP_CHAOS_SEED") {
        Ok(v) => vec![v.parse().expect("POP_CHAOS_SEED must be an integer")],
        Err(_) => vec![0xBE9151, 0x0DD5EED],
    }
}

fn cfg() -> SolverConfig {
    SolverConfig {
        tol: 1e-10,
        max_iters: 5000,
        check_every: 10,
        ..SolverConfig::default()
    }
}

/// Everything a solve produces that callers can observe, as raw bits.
#[derive(PartialEq)]
struct Observables {
    iterations: usize,
    outcome: SolveOutcome,
    restarts: usize,
    final_residual_bits: u64,
    history_bits: Vec<(usize, u64)>,
    x_bits: Vec<u64>,
}

fn observe(st: &SolveStats, x: &DistVec) -> Observables {
    Observables {
        iterations: st.iterations,
        outcome: st.outcome,
        restarts: st.restarts,
        final_residual_bits: st.final_relative_residual.to_bits(),
        history_bits: st
            .residual_history
            .iter()
            .map(|&(k, r)| (k, r.to_bits()))
            .collect(),
        x_bits: x.to_global().iter().map(|v| v.to_bits()).collect(),
    }
}

struct RankRun {
    obs: Observables,
    per_rank: Vec<RankReport<SolveStats>>,
    sim_time: f64,
}

fn run_ranksim(
    p: &Problem,
    pre: &dyn Preconditioner,
    kind: SolverKind,
    ranks: usize,
    faults: FaultPlan,
) -> RankRun {
    let world = RankWorld::new(
        &p.layout,
        ranks,
        Arc::new(ZeroCost),
        RankSimConfig::default().with_faults(faults),
    );
    let x0 = DistVec::zeros(&p.layout);
    let out = solve_on_ranks(&world, &p.op, pre, kind, &p.rhs, &x0, &cfg());
    RankRun {
        obs: observe(out.stats(), &out.x),
        per_rank: out.per_rank,
        sim_time: out.sim_time,
    }
}

fn run_shared(p: &Problem, pre: &dyn Preconditioner, kind: SolverKind) -> Observables {
    let world = CommWorld::serial();
    let mut x = DistVec::zeros(&p.layout);
    let mut ws = SolverWorkspace::new();
    let st = kind.solve(&p.op, pre, &world, &p.rhs, &mut x, &cfg(), &mut ws);
    observe(&st, &x)
}

fn assert_same(name: &str, base: &Observables, got: &Observables) {
    assert_eq!(got.iterations, base.iterations, "{name}: iteration counts");
    assert_eq!(got.outcome, base.outcome, "{name}: outcomes");
    assert_eq!(got.restarts, base.restarts, "{name}: restart counts");
    assert_eq!(
        got.final_residual_bits,
        base.final_residual_bits,
        "{name}: final residuals differ ({:e} vs {:e})",
        f64::from_bits(got.final_residual_bits),
        f64::from_bits(base.final_residual_bits)
    );
    assert_eq!(
        got.history_bits, base.history_bits,
        "{name}: residual histories differ"
    );
    for (k, (a, b)) in got.x_bits.iter().zip(&base.x_bits).enumerate() {
        assert_eq!(
            a,
            b,
            "{name}: solution differs at point {k}: {:e} vs {:e}",
            f64::from_bits(*a),
            f64::from_bits(*b)
        );
    }
}

fn solver_matrix(p: &Problem, pre: &dyn Preconditioner) -> Vec<SolverKind> {
    let shared = CommWorld::serial();
    let (bounds, _) = estimate_bounds(&p.op, pre, &shared, &LanczosConfig::default());
    vec![
        SolverKind::ClassicPcg,
        SolverKind::ChronGear,
        SolverKind::PipelinedCg,
        SolverKind::Pcsi(bounds),
    ]
}

/// `FaultPlan::none()` is the pre-fault runtime, bit for bit: all four
/// solvers, both preconditioners, counters silent.
#[test]
fn disabled_fault_plan_is_bitwise_identical_and_counter_free() {
    let p = problem(2015);
    for (pname, pre) in [
        ("diag", &Diagonal::new(&p.op) as &dyn Preconditioner),
        ("evp", &BlockEvp::with_defaults(&p.op)),
    ] {
        for kind in solver_matrix(&p, pre) {
            let name = format!("{}+{pname}", kind.name());
            let base = run_shared(&p, pre, kind);
            assert_eq!(base.outcome, SolveOutcome::Converged, "{name}: baseline");
            let run = run_ranksim(&p, pre, kind, 6, FaultPlan::none());
            assert_same(&name, &base, &run.obs);
            assert_eq!(run.obs.restarts, 0, "{name}: restarts under no faults");
            for rep in &run.per_rank {
                assert_eq!(rep.stats.retries, 0, "{name}: retries");
                assert_eq!(rep.stats.duplicates, 0, "{name}: duplicates");
                assert_eq!(rep.stats.delivery_failures, 0, "{name}: failures");
            }
        }
    }
}

/// Benign chaos — delays, duplicates, reorders, recoverable drops, stalls —
/// leaves every observable of the solve bitwise identical to the fault-free
/// run; only simulated time and the fault counters move.
#[test]
fn benign_fault_plans_are_bitwise_conformant() {
    let p = problem(2015);
    let diag = Diagonal::new(&p.op);
    let evp = BlockEvp::with_defaults(&p.op);
    for seed in chaos_seeds() {
        for (pname, pre) in [
            ("diag", &diag as &dyn Preconditioner),
            ("evp", &evp as &dyn Preconditioner),
        ] {
            for kind in solver_matrix(&p, pre) {
                let name = format!("{}+{pname} chaos-seed={seed}", kind.name());
                let clean = run_ranksim(&p, pre, kind, 6, FaultPlan::none());
                let plan = FaultPlan::seeded(seed, FaultConfig::benign());
                let chaotic = run_ranksim(&p, pre, kind, 6, plan);
                assert_same(&name, &clean.obs, &chaotic.obs);

                // The faults really fired: counters and simulated time moved.
                let retries: u64 = chaotic.per_rank.iter().map(|r| r.stats.retries).sum();
                let dups: u64 = chaotic.per_rank.iter().map(|r| r.stats.duplicates).sum();
                let fails: u64 = chaotic
                    .per_rank
                    .iter()
                    .map(|r| r.stats.delivery_failures)
                    .sum();
                assert!(retries > 0, "{name}: no retries recorded");
                assert!(dups > 0, "{name}: no duplicates recorded");
                assert_eq!(fails, 0, "{name}: benign plan must not fail deliveries");
                assert_eq!(clean.sim_time, 0.0, "{name}: ZeroCost fault-free time");
                assert!(
                    chaotic.sim_time > 0.0,
                    "{name}: fault penalties must charge simulated time"
                );
            }
        }
    }
}

/// Restores the startup dispatch decision even if an assertion panics.
struct ModeGuard;
impl Drop for ModeGuard {
    fn drop(&mut self) {
        pop_simd::force_mode(None);
    }
}

/// The conformance property holds under forced-scalar dispatch too: the
/// fault layer and the SIMD layer compose without breaking bitwise identity.
/// (`force_mode` is process-global, so this sweep lives in one `#[test]`.)
#[test]
fn benign_conformance_holds_under_forced_scalar_dispatch() {
    let _guard = ModeGuard;
    let p = problem(2015);
    let diag = Diagonal::new(&p.op);
    let seed = chaos_seeds()[0];
    for kind in solver_matrix(&p, &diag) {
        let name = format!("{} scalar chaos-seed={seed}", kind.name());
        pop_simd::force_mode(Some(SimdMode::Scalar));
        let base = run_shared(&p, &diag, kind);
        let plan = FaultPlan::seeded(seed, FaultConfig::benign());
        let chaotic = run_ranksim(&p, &diag, kind, 6, plan);
        assert_same(&name, &base, &chaotic.obs);
        pop_simd::force_mode(None);
    }
}

//! Every collective algorithm is bit-equivalent to shared memory.
//!
//! The [`ReduceAlgo`] family — binomial gather/broadcast, recursive
//! doubling, Rabenseifner, and the node-aware hierarchical schedule — all
//! move the same `(block id, partial rows)` payload and fold it in global
//! block order, so the *numbers* a solve produces must not depend on the
//! exchange pattern at all. This suite pins that contract: every solver ×
//! preconditioner × algorithm × rank count yields bitwise the same
//! solution, iteration count, and residual as the shared-memory run, and
//! the number of collective messages each schedule puts on the wire equals
//! its closed-form count (`allreduce_steps` is not allowed to drift).
//!
//! The split-phase halo overlap path gets the same treatment, including
//! under a benign [`FaultPlan`]: delays, duplicates, reorders, and stalls
//! may move the simulated clocks, never the bits.

use pop_baro::prelude::*;
use pop_baro::ranksim::{HierarchicalNet, NetworkModel, ReduceAlgo};
use pop_core::solvers::SolverWorkspace;
use std::sync::Arc;

mod common;
use common::{solver_cfg, Problem};

fn problem() -> Problem {
    common::problem(2015)
}

fn prev_pow2(n: u64) -> u64 {
    1 << (63 - n.leading_zeros())
}

/// Messages a recursive-doubling allreduce over `n` participants puts on
/// the wire: one per odd preamble rank, one per butterfly stage per core
/// rank, one result hand-back per preamble pair.
fn rd_msgs(n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    let core = prev_pow2(n);
    let rem = n - core;
    2 * rem + core * u64::from(core.trailing_zeros())
}

/// Closed-form total message count of one collective across all `p` ranks.
/// The runtime's `allreduce_steps` counters must sum to exactly this per
/// reduction — the schedules are deterministic, so any drift is a bug.
fn steps_per_collective(algo: ReduceAlgo, p: u64, rpn: u64) -> u64 {
    if p <= 1 {
        return 0;
    }
    let core = prev_pow2(p);
    let rem = p - core;
    match algo {
        // Gather up the binomial tree (p − 1 sends), broadcast back down.
        ReduceAlgo::Binomial => 2 * (p - 1),
        ReduceAlgo::RecursiveDoubling => rd_msgs(p),
        // Same butterfly with twice the stages: reduce-scatter + allgather.
        ReduceAlgo::Rabenseifner => 2 * rem + core * 2 * u64::from(core.trailing_zeros()),
        // Intra-node gather + broadcast on every node, recursive doubling
        // among the node leaders.
        ReduceAlgo::Hierarchical => {
            let n_nodes = p.div_ceil(rpn.max(1));
            2 * (p - n_nodes) + rd_msgs(n_nodes)
        }
        ReduceAlgo::Auto => unreachable!("tests pin concrete algorithms"),
    }
}

/// Shared-memory reference solve for one (solver, preconditioner).
fn shared_solve(p: &Problem, pre: &dyn Preconditioner, kind: SolverKind) -> (SolveStats, Vec<f64>) {
    let shared = CommWorld::serial();
    let mut x = DistVec::zeros(&p.layout);
    let mut ws = SolverWorkspace::new();
    let st = kind.solve(&p.op, pre, &shared, &p.rhs, &mut x, &solver_cfg(), &mut ws);
    assert!(st.converged, "{}: shared-memory did not converge", kind.name());
    (st, x.to_global())
}

/// One ranksim solve checked bitwise against the shared reference, with the
/// collective message count pinned to the schedule's closed form.
#[allow(clippy::too_many_arguments)]
fn check_ranksim(
    name: &str,
    p: &Problem,
    pre: &dyn Preconditioner,
    kind: SolverKind,
    ranks: usize,
    net: Arc<dyn NetworkModel>,
    cfg: RankSimConfig,
    reference: &(SolveStats, Vec<f64>),
) {
    let rpn = net.ranks_per_node() as u64;
    let algo = cfg.reduce_algo;
    let world = RankWorld::new(&p.layout, ranks, net, cfg);
    let x0 = DistVec::zeros(&p.layout);
    let out = solve_on_ranks(&world, &p.op, pre, kind, &p.rhs, &x0, &solver_cfg());
    let (st_shared, x_shared) = reference;
    let st = out.stats();
    assert_eq!(
        st.iterations, st_shared.iterations,
        "{name}: iteration counts differ"
    );
    assert_eq!(
        st.final_relative_residual.to_bits(),
        st_shared.final_relative_residual.to_bits(),
        "{name}: residuals differ ({:e} vs {:e})",
        st.final_relative_residual,
        st_shared.final_relative_residual
    );
    let ga = out.x.to_global();
    for (k, (a, b)) in ga.iter().zip(x_shared).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name}: solution differs at point {k}: {a:e} vs {b:e}"
        );
    }
    for rep in &out.per_rank {
        assert_eq!(
            rep.stats.allreduces, st_shared.comm.allreduces,
            "{name} rank {}: allreduce count",
            rep.rank
        );
    }
    let total_steps: u64 = out.per_rank.iter().map(|r| r.stats.allreduce_steps).sum();
    let expected = st_shared.comm.allreduces * steps_per_collective(algo, ranks as u64, rpn);
    assert_eq!(
        total_steps, expected,
        "{name}: collective message count drifted from the {} schedule's closed form",
        algo.name()
    );
}

/// 4 solvers × {diag, EVP} × {1, 3, 16, 64} ranks for one algorithm, on a
/// node-aware network (Yellowstone: 16 ranks per node) so the hierarchical
/// schedule actually has a hierarchy to exploit.
fn run_algo(algo: ReduceAlgo) {
    let p = problem();
    let shared = CommWorld::serial();
    let m = MachineModel::yellowstone();
    let topo = pop_baro::perfmodel::machine::NodeTopology::yellowstone();
    for (pname, pre) in [
        ("diag", &Diagonal::new(&p.op) as &dyn Preconditioner),
        ("evp", &BlockEvp::with_defaults(&p.op)),
    ] {
        let (bounds, _) = estimate_bounds(&p.op, pre, &shared, &LanczosConfig::default());
        for kind in [
            SolverKind::ClassicPcg,
            SolverKind::ChronGear,
            SolverKind::PipelinedCg,
            SolverKind::Pcsi(bounds),
        ] {
            let reference = shared_solve(&p, pre, kind);
            for ranks in [1usize, 3, 16, 64] {
                check_ranksim(
                    &format!("{}+{pname} algo={} p={ranks}", kind.name(), algo.name()),
                    &p,
                    pre,
                    kind,
                    ranks,
                    Arc::new(HierarchicalNet::from_machine(&m, &topo)),
                    RankSimConfig::default().with_reduce_algo(algo),
                    &reference,
                );
            }
        }
    }
}

#[test]
fn binomial_matches_shared_memory_everywhere() {
    run_algo(ReduceAlgo::Binomial);
}

#[test]
fn recursive_doubling_matches_shared_memory_everywhere() {
    run_algo(ReduceAlgo::RecursiveDoubling);
}

#[test]
fn rabenseifner_matches_shared_memory_everywhere() {
    run_algo(ReduceAlgo::Rabenseifner);
}

#[test]
fn hierarchical_matches_shared_memory_everywhere() {
    run_algo(ReduceAlgo::Hierarchical);
}

/// Split-phase halo/compute overlap is a *timing* optimization: with
/// overlap on, modeled compute charged, and a benign fault plan jittering
/// every message, the solve must still reproduce the shared-memory bits —
/// and the fault-free overlap run must match the eager run exactly.
#[test]
fn halo_overlap_is_bitwise_clean_under_benign_chaos() {
    let p = problem();
    let shared = CommWorld::serial();
    let m = MachineModel::yellowstone();
    let topo = pop_baro::perfmodel::machine::NodeTopology::yellowstone();
    let pre = Diagonal::new(&p.op);
    let (bounds, _) = estimate_bounds(&p.op, &pre, &shared, &LanczosConfig::default());
    for kind in [SolverKind::ChronGear, SolverKind::Pcsi(bounds)] {
        let reference = shared_solve(&p, &pre, kind);
        for ranks in [3usize, 16] {
            for (label, cfg) in [
                (
                    "overlap",
                    RankSimConfig::modeled(&m)
                        .with_reduce_algo(ReduceAlgo::RecursiveDoubling)
                        .with_overlap(true),
                ),
                (
                    "overlap+chaos",
                    RankSimConfig::modeled(&m)
                        .with_reduce_algo(ReduceAlgo::RecursiveDoubling)
                        .with_overlap(true)
                        .with_faults(FaultPlan::seeded(2718, FaultConfig::benign())),
                ),
            ] {
                check_ranksim(
                    &format!("{}+diag {label} p={ranks}", kind.name()),
                    &p,
                    &pre,
                    kind,
                    ranks,
                    Arc::new(HierarchicalNet::from_machine(&m, &topo)),
                    cfg,
                    &reference,
                );
            }
        }
    }
}

//! The multigrid preconditioner is bitwise mode- and backend-invariant,
//! and numerically interchangeable with the diagonal path.
//!
//! Two contracts pin the MG tentpole (DESIGN.md §15):
//!
//! - **Bitwise determinism**: an MG-preconditioned solve produces the same
//!   solution bits, iteration count, and residual history on the serial,
//!   threaded, and ranksim backends — under each collective schedule
//!   ({binomial, hierarchical}) and under default as well as forced-scalar
//!   SIMD dispatch. The dual parity-chain V-cycle, the masked linear
//!   transfers, and the coarsest-level LU may not introduce any
//!   backend-visible arithmetic.
//! - **Correctness**: the preconditioner changes *which path* the solver
//!   takes, never *where it lands*. On manufactured problems the
//!   MG-recovered field must match the diagonal-preconditioned discrete
//!   oracle to solver tolerance, and its continuous-manufacture error must
//!   shrink at second order in the mesh width just like every other
//!   preconditioner's.

use pop_baro::prelude::*;
use pop_baro::verif::mms::dipole_grid;
use pop_core::solvers::SolverWorkspace;
use pop_simd::SimdMode;

mod common;
use common::{assert_same, problem, run_ranks_cfg, run_world, ModeGuard};

/// Serial vs threaded vs ranksim × {binomial, hierarchical} × default vs
/// forced-scalar dispatch: every MG-preconditioned solve observable is
/// bitwise identical. One `#[test]` because `force_mode` is process-global.
#[test]
fn mg_solves_are_bitwise_identical_across_backends_schedules_and_dispatch() {
    let _guard = ModeGuard;
    let p = problem(2015);
    let serial = CommWorld::serial();
    let threaded = CommWorld::threaded();
    let mg = BlockMg::with_defaults(&p.op);
    let (bounds, _) = estimate_bounds(&p.op, &mg, &serial, &LanczosConfig::default());
    for kind in [SolverKind::ChronGear, SolverKind::Pcsi(bounds)] {
        let base = run_world(&serial, &p, &mg, kind);
        assert_eq!(
            base.outcome,
            SolveOutcome::Converged,
            "{}+mg: serial baseline did not converge",
            kind.name()
        );
        for forced in [None, Some(SimdMode::Scalar)] {
            pop_simd::force_mode(forced);
            let tag = |arm: &str| {
                format!(
                    "{}+mg {arm} dispatch={}",
                    kind.name(),
                    forced.map_or("default", |m| m.name())
                )
            };
            assert_same(&tag("serial"), &base, &run_world(&serial, &p, &mg, kind));
            assert_same(&tag("threaded"), &base, &run_world(&threaded, &p, &mg, kind));
            for algo in [ReduceAlgo::Binomial, ReduceAlgo::Hierarchical] {
                for ranks in [3usize, 16] {
                    assert_same(
                        &tag(&format!("ranksim algo={} p={ranks}", algo.name())),
                        &base,
                        &run_ranks_cfg(
                            &p,
                            &mg,
                            kind,
                            ranks,
                            RankSimConfig::default().with_reduce_algo(algo),
                        ),
                    );
                }
            }
        }
        pop_simd::force_mode(None);
    }
}

fn mms_cfg() -> SolverConfig {
    SolverConfig {
        tol: 1e-12,
        max_iters: 20_000,
        check_every: 10,
        ..SolverConfig::default()
    }
}

/// Solve `case` under `spec` preconditioning and return the relative L2
/// error of the recovered field against the case's reference solution.
fn recovered_error(case: &MmsCase, block: (usize, usize), spec: PrecondSpec) -> f64 {
    let layout = DistLayout::build(&case.grid, block.0, block.1);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&case.grid, &layout, &world, case.tau);
    let pre = spec.build(&op);
    let (bounds, _) = estimate_bounds(&op, pre.as_ref(), &world, &LanczosConfig::default());
    let rhs = DistVec::from_global(&layout, &case.rhs);
    let mut x = DistVec::zeros(&layout);
    let mut ws = SolverWorkspace::new();
    let kind = SolverKind::Pcsi(bounds);
    let st = kind.solve(&op, pre.as_ref(), &world, &rhs, &mut x, &mms_cfg(), &mut ws);
    assert!(
        st.converged,
        "pcsi+{} did not converge on the manufactured system (residual {:e})",
        pre.name(),
        st.final_relative_residual
    );
    case.rel_l2_error(&x.to_global())
}

/// Continuous manufacture: the MG-preconditioned solve converges to the
/// analytic solution at second order in the mesh width, and at each
/// resolution its discretization error matches the diagonal-preconditioned
/// solve's — the preconditioner is invisible in the answer.
#[test]
fn mg_mms_error_is_second_order_and_matches_the_diag_oracle() {
    let coarse_case = MmsCase::uniform_basin(24, 500.0, 1.0e6, 1800.0);
    let fine_case = MmsCase::uniform_basin(48, 500.0, 1.0e6, 1800.0);
    let coarse_mg = recovered_error(&coarse_case, (6, 6), PrecondSpec::Mg);
    let fine_mg = recovered_error(&fine_case, (12, 12), PrecondSpec::Mg);
    assert!(
        fine_mg < 5e-2,
        "mg: discretization error too large at n=48: {fine_mg:e}"
    );
    assert!(
        fine_mg < 0.35 * coarse_mg,
        "mg: not second order: err(24)={coarse_mg:e}, err(48)={fine_mg:e}"
    );
    // Both preconditioners solve the same linear system to 1e-12; the
    // remaining error is pure discretization, so the two agree far below it.
    for (case, block, mg_err) in [
        (&coarse_case, (6, 6), coarse_mg),
        (&fine_case, (12, 12), fine_mg),
    ] {
        let diag_err = recovered_error(case, block, PrecondSpec::Diagonal);
        assert!(
            (mg_err - diag_err).abs() <= 1e-6 * diag_err.max(1e-30),
            "mg and diag recovered different answers: {mg_err:e} vs {diag_err:e}"
        );
    }
}

/// Discrete manufacture on distorted production-style dipole metrics: ψ is
/// the exact solution of the assembled system, and the MG-preconditioned
/// solve recovers it to solver tolerance, exactly like the diagonal path.
#[test]
fn mg_recovers_the_sampled_oracle_on_dipole_metrics() {
    let grid = dipole_grid(3, 48, 32);
    let layout = DistLayout::build(&grid, 12, 8);
    let case = MmsCase::sampled(grid, &layout, 1800.0);
    for spec in [PrecondSpec::Mg, PrecondSpec::Diagonal] {
        let err = recovered_error(&case, (12, 8), spec);
        assert!(
            err < 1e-7,
            "{}: sampled oracle missed on dipole grid: rel L2 {err:e}",
            spec.label()
        );
    }
}

//! Seeded land-mask fuzzing: pathological topologies, three backends.
//!
//! Real bathymetry is full of degenerate shapes — isolated one-cell seas,
//! one-cell-wide channels, blocks that are entirely land, blocks holding a
//! single ocean point. Each fuzzed mask here is *engineered* to contain all
//! four features (then perturbed by a seeded [`pop_rng`] stream, so every
//! run is reproducible from the seed alone), and every solver must:
//!
//! - assemble and converge on the resulting operator, and
//! - produce **bitwise identical** solutions, histories and iteration
//!   counts on the serial, threaded and ranksim backends.
//!
//! Land-block elimination, halo exchange along 1-wide straits and masked
//! reductions over near-empty blocks all get exercised in one sweep.

use pop_baro::prelude::*;
use pop_core::solvers::{SolveStats, SolverWorkspace};
use pop_grid::{Bathymetry, GridKind, Metrics};
use pop_rng::SmallRng;
use std::sync::Arc;

const NX: usize = 64;
const NY: usize = 40;
const BX: usize = 16;
const BY: usize = 10;

/// Build a pathological but reproducible mask. The western third is a solid
/// ocean basin (the guaranteed region); the rest is seeded noise with the
/// four engineered degeneracies stamped on top.
fn fuzzed_grid(seed: u64) -> Grid {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut depth = vec![0.0f64; NX * NY];
    let d = |depth: &mut Vec<f64>, i: usize, j: usize, v: f64| depth[j * NX + i] = v;

    // Random speckle ocean over the interior (p = 0.55), solid basin in the
    // western third. The outer ring stays land.
    for j in 1..NY - 1 {
        for i in 1..NX - 1 {
            let ocean = i < NX / 3 || rng.gen::<f64>() < 0.55;
            if ocean {
                d(&mut depth, i, j, 100.0 + 400.0 * rng.gen::<f64>());
            }
        }
    }

    // Feature 1: an all-land block (block row 1, block col 2).
    for j in BY..2 * BY {
        for i in 2 * BX..3 * BX {
            d(&mut depth, i, j, 0.0);
        }
    }
    // Feature 2: a single-ocean-point block (block row 2, block col 2).
    for j in 2 * BY..3 * BY {
        for i in 2 * BX..3 * BX {
            d(&mut depth, i, j, 0.0);
        }
    }
    d(&mut depth, 2 * BX + BX / 2, 2 * BY + BY / 2, 250.0);
    // Feature 3: isolated ocean cells — land moats stamped around three
    // seeded positions in the eastern noise field.
    for _ in 0..3 {
        let ci = rng.gen_range(NX / 2 + 2..NX - 2);
        let cj = rng.gen_range(2..NY - 2);
        for dj in -1i64..=1 {
            for di in -1i64..=1 {
                let (i, j) = ((ci as i64 + di) as usize, (cj as i64 + dj) as usize);
                d(
                    &mut depth,
                    i,
                    j,
                    if di == 0 && dj == 0 { 180.0 } else { 0.0 },
                );
            }
        }
    }
    // Feature 4: a one-cell-wide channel crossing the all-land block,
    // connecting whatever lies on either side through a 1-wide strait.
    let channel_j = BY + BY / 2;
    for i in 2 * BX..3 * BX {
        d(&mut depth, i, channel_j, 320.0);
    }

    let bathy = Bathymetry {
        nx: NX,
        ny: NY,
        depth,
    };
    Grid::from_parts(
        GridKind::Custom,
        Metrics::uniform(NX, NY, 5.0e4),
        &bathy,
        false,
    )
}

/// A manufactured RHS in the operator's range, seeded like the mask.
fn rhs_for(layout: &Arc<DistLayout>, op: &NinePoint, seed: u64) -> DistVec {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_0FF5);
    let world = CommWorld::serial();
    let global: Vec<f64> = (0..NX * NY).map(|_| rng.gen::<f64>() - 0.5).collect();
    let mut field = DistVec::from_global(layout, &global);
    world.halo_update(&mut field);
    let mut rhs = DistVec::zeros(layout);
    op.apply(&world, &field, &mut rhs);
    rhs
}

fn cfg() -> SolverConfig {
    SolverConfig {
        tol: 1e-10,
        max_iters: 5000,
        check_every: 10,
        ..SolverConfig::default()
    }
}

#[derive(PartialEq, Debug)]
struct Observables {
    iterations: usize,
    outcome: SolveOutcome,
    final_residual_bits: u64,
    history_bits: Vec<(usize, u64)>,
    x_bits: Vec<u64>,
}

fn observe(st: &SolveStats, x: &DistVec) -> Observables {
    Observables {
        iterations: st.iterations,
        outcome: st.outcome,
        final_residual_bits: st.final_relative_residual.to_bits(),
        history_bits: st
            .residual_history
            .iter()
            .map(|&(k, r)| (k, r.to_bits()))
            .collect(),
        x_bits: x.to_global().iter().map(|v| v.to_bits()).collect(),
    }
}

fn run_world(
    world: &CommWorld,
    layout: &Arc<DistLayout>,
    op: &NinePoint,
    pre: &dyn Preconditioner,
    kind: SolverKind,
    rhs: &DistVec,
) -> Observables {
    let mut x = DistVec::zeros(layout);
    let mut ws = SolverWorkspace::new();
    let st = kind.solve(op, pre, world, rhs, &mut x, &cfg(), &mut ws);
    observe(&st, &x)
}

fn run_ranks(
    layout: &Arc<DistLayout>,
    op: &NinePoint,
    pre: &dyn Preconditioner,
    kind: SolverKind,
    rhs: &DistVec,
) -> Observables {
    let world = RankWorld::new(layout, 4, Arc::new(ZeroCost), RankSimConfig::default());
    let x0 = DistVec::zeros(layout);
    let out = solve_on_ranks(&world, op, pre, kind, rhs, &x0, &cfg());
    observe(out.stats(), &out.x)
}

/// The fuzz sweep: for each seed, build the pathological mask, check the
/// engineered degeneracies actually exist, then demand convergence and
/// bitwise backend agreement for every solver.
#[test]
fn pathological_masks_solve_identically_on_all_backends() {
    for seed in [11u64, 29, 47] {
        let grid = fuzzed_grid(seed);
        // The engineered features survived the noise: the single-point block
        // holds exactly its one ocean cell plus the channel row.
        assert!(grid.is_ocean(2 * BX + BX / 2, 2 * BY + BY / 2));
        assert!(grid.is_ocean(2 * BX, BY + BY / 2));
        assert!(!grid.is_ocean(2 * BX + 1, BY + 1));
        assert!(
            grid.ocean_points() > NX * NY / 4,
            "fuzz produced a dead map"
        );

        let layout = DistLayout::build(&grid, BX, BY);
        let serial = CommWorld::serial();
        let threaded = CommWorld::threaded();
        let op = NinePoint::assemble(&grid, &layout, &serial, 9000.0);
        let pre = Diagonal::new(&op);
        let rhs = rhs_for(&layout, &op, seed);
        let (bounds, _) = estimate_bounds(&op, &pre, &serial, &LanczosConfig::default());
        for kind in [
            SolverKind::ClassicPcg,
            SolverKind::ChronGear,
            SolverKind::PipelinedCg,
            SolverKind::Pcsi(bounds),
        ] {
            let name = format!("{} fuzz-seed={seed}", kind.name());
            let base = run_world(&serial, &layout, &op, &pre, kind, &rhs);
            assert_eq!(
                base.outcome,
                SolveOutcome::Converged,
                "{name}: serial solve failed on fuzzed mask"
            );
            let t = run_world(&threaded, &layout, &op, &pre, kind, &rhs);
            assert!(t == base, "{name}: threaded backend diverged from serial");
            let r = run_ranks(&layout, &op, &pre, kind, &rhs);
            assert!(r == base, "{name}: ranksim backend diverged from serial");
        }
    }
}

/// Regression for the eigenbound guard rails: on a map that is land except
/// for a handful of scattered single cells (every block all-land or holding
/// one isolated ocean point), the Lanczos process breaks down almost
/// immediately. `estimate_bounds` must still hand back a *valid* interval —
/// `0 < ν < μ`, finite condition number — that `Pcsi::new` accepts and that
/// drives a finite solve instead of feeding NaN/∞ into the Chebyshev
/// recurrence.
#[test]
fn degenerate_masks_yield_valid_eigenbounds() {
    let mut depth = vec![0.0f64; NX * NY];
    // One isolated ocean cell near the middle of each of four blocks; every
    // neighbour is land, so A is diagonal over four disconnected points.
    for (i, j) in [
        (BX / 2, BY / 2),
        (BX + BX / 2, 2 * BY + BY / 2),
        (2 * BX + 2, BY + 2),
        (3 * BX + 5, 3 * BY / 2),
    ] {
        depth[j * NX + i] = 250.0;
    }
    let bathy = Bathymetry {
        nx: NX,
        ny: NY,
        depth,
    };
    let grid = Grid::from_parts(
        GridKind::Custom,
        Metrics::uniform(NX, NY, 5.0e4),
        &bathy,
        false,
    );
    assert_eq!(grid.ocean_points(), 4);

    let layout = DistLayout::build(&grid, BX, BY);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 9000.0);
    let pre = Diagonal::new(&op);
    let (bounds, _) = estimate_bounds(&op, &pre, &world, &LanczosConfig::default());
    assert!(
        bounds.nu > 0.0 && bounds.mu > bounds.nu && bounds.mu.is_finite(),
        "degenerate mask produced unusable bounds: {bounds:?}"
    );
    assert!(bounds.condition().is_finite());

    // The salvaged bounds must be consumable end-to-end.
    let rhs = rhs_for(&layout, &op, 3);
    let got = run_world(&world, &layout, &op, &pre, SolverKind::Pcsi(bounds), &rhs);
    assert!(
        f64::from_bits(got.final_residual_bits).is_finite(),
        "P-CSI produced a non-finite residual on the degenerate mask"
    );
    for bits in &got.x_bits {
        assert!(f64::from_bits(*bits).is_finite());
    }
}

//! Seeded land-mask fuzzing: pathological topologies, three backends.
//!
//! Real bathymetry is full of degenerate shapes — isolated one-cell seas,
//! one-cell-wide channels, blocks that are entirely land, blocks holding a
//! single ocean point. Each fuzzed mask here is *engineered* to contain all
//! four features (then perturbed by a seeded [`pop_rng`] stream, so every
//! run is reproducible from the seed alone), and every solver must:
//!
//! - assemble and converge on the resulting operator, and
//! - produce **bitwise identical** solutions, histories and iteration
//!   counts on the serial, threaded and ranksim backends.
//!
//! Land-block elimination, halo exchange along 1-wide straits and masked
//! reductions over near-empty blocks all get exercised in one sweep.

use pop_baro::prelude::*;
use pop_grid::{Bathymetry, GridKind, Metrics};
use pop_rng::SmallRng;
use pop_simd::SimdMode;
use std::sync::Arc;

mod common;
use common::{run_ranks, run_world, ModeGuard, Problem};

const NX: usize = 64;
const NY: usize = 40;
const BX: usize = 16;
const BY: usize = 10;

/// Build a pathological but reproducible mask. The western third is a solid
/// ocean basin (the guaranteed region); the rest is seeded noise with the
/// four engineered degeneracies stamped on top.
fn fuzzed_grid(seed: u64) -> Grid {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut depth = vec![0.0f64; NX * NY];
    let d = |depth: &mut Vec<f64>, i: usize, j: usize, v: f64| depth[j * NX + i] = v;

    // Random speckle ocean over the interior (p = 0.55), solid basin in the
    // western third. The outer ring stays land.
    for j in 1..NY - 1 {
        for i in 1..NX - 1 {
            let ocean = i < NX / 3 || rng.gen::<f64>() < 0.55;
            if ocean {
                d(&mut depth, i, j, 100.0 + 400.0 * rng.gen::<f64>());
            }
        }
    }

    // Feature 1: an all-land block (block row 1, block col 2).
    for j in BY..2 * BY {
        for i in 2 * BX..3 * BX {
            d(&mut depth, i, j, 0.0);
        }
    }
    // Feature 2: a single-ocean-point block (block row 2, block col 2).
    for j in 2 * BY..3 * BY {
        for i in 2 * BX..3 * BX {
            d(&mut depth, i, j, 0.0);
        }
    }
    d(&mut depth, 2 * BX + BX / 2, 2 * BY + BY / 2, 250.0);
    // Feature 3: isolated ocean cells — land moats stamped around three
    // seeded positions in the eastern noise field.
    for _ in 0..3 {
        let ci = rng.gen_range(NX / 2 + 2..NX - 2);
        let cj = rng.gen_range(2..NY - 2);
        for dj in -1i64..=1 {
            for di in -1i64..=1 {
                let (i, j) = ((ci as i64 + di) as usize, (cj as i64 + dj) as usize);
                d(
                    &mut depth,
                    i,
                    j,
                    if di == 0 && dj == 0 { 180.0 } else { 0.0 },
                );
            }
        }
    }
    // Feature 4: a one-cell-wide channel crossing the all-land block,
    // connecting whatever lies on either side through a 1-wide strait.
    let channel_j = BY + BY / 2;
    for i in 2 * BX..3 * BX {
        d(&mut depth, i, channel_j, 320.0);
    }

    let bathy = Bathymetry {
        nx: NX,
        ny: NY,
        depth,
    };
    Grid::from_parts(
        GridKind::Custom,
        Metrics::uniform(NX, NY, 5.0e4),
        &bathy,
        false,
    )
}

/// A manufactured RHS in the operator's range, seeded like the mask.
fn rhs_for(layout: &Arc<DistLayout>, op: &NinePoint, seed: u64) -> DistVec {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_0FF5);
    let world = CommWorld::serial();
    let global: Vec<f64> = (0..NX * NY).map(|_| rng.gen::<f64>() - 0.5).collect();
    let mut field = DistVec::from_global(layout, &global);
    world.halo_update(&mut field);
    let mut rhs = DistVec::zeros(layout);
    op.apply(&world, &field, &mut rhs);
    rhs
}

/// The fuzz sweep: for each seed, build the pathological mask, check the
/// engineered degeneracies actually exist, then demand convergence and
/// bitwise backend agreement for every solver.
#[test]
fn pathological_masks_solve_identically_on_all_backends() {
    for seed in [11u64, 29, 47] {
        let grid = fuzzed_grid(seed);
        // The engineered features survived the noise: the single-point block
        // holds exactly its one ocean cell plus the channel row.
        assert!(grid.is_ocean(2 * BX + BX / 2, 2 * BY + BY / 2));
        assert!(grid.is_ocean(2 * BX, BY + BY / 2));
        assert!(!grid.is_ocean(2 * BX + 1, BY + 1));
        assert!(
            grid.ocean_points() > NX * NY / 4,
            "fuzz produced a dead map"
        );

        let layout = DistLayout::build(&grid, BX, BY);
        let serial = CommWorld::serial();
        let threaded = CommWorld::threaded();
        let op = NinePoint::assemble(&grid, &layout, &serial, 9000.0);
        let pre = Diagonal::new(&op);
        let rhs = rhs_for(&layout, &op, seed);
        let (bounds, _) = estimate_bounds(&op, &pre, &serial, &LanczosConfig::default());
        let p = Problem { layout, op, rhs };
        for kind in [
            SolverKind::ClassicPcg,
            SolverKind::ChronGear,
            SolverKind::PipelinedCg,
            SolverKind::Pcsi(bounds),
        ] {
            let name = format!("{} fuzz-seed={seed}", kind.name());
            let base = run_world(&serial, &p, &pre, kind);
            assert_eq!(
                base.outcome,
                SolveOutcome::Converged,
                "{name}: serial solve failed on fuzzed mask"
            );
            let t = run_world(&threaded, &p, &pre, kind);
            assert!(t == base, "{name}: threaded backend diverged from serial");
            let r = run_ranks(&p, &pre, kind, 4);
            assert!(r == base, "{name}: ranksim backend diverged from serial");
        }
    }
}

/// Regression for the eigenbound guard rails: on a map that is land except
/// for a handful of scattered single cells (every block all-land or holding
/// one isolated ocean point), the Lanczos process breaks down almost
/// immediately. `estimate_bounds` must still hand back a *valid* interval —
/// `0 < ν < μ`, finite condition number — that `Pcsi::new` accepts and that
/// drives a finite solve instead of feeding NaN/∞ into the Chebyshev
/// recurrence.
#[test]
fn degenerate_masks_yield_valid_eigenbounds() {
    let mut depth = vec![0.0f64; NX * NY];
    // One isolated ocean cell near the middle of each of four blocks; every
    // neighbour is land, so A is diagonal over four disconnected points.
    for (i, j) in [
        (BX / 2, BY / 2),
        (BX + BX / 2, 2 * BY + BY / 2),
        (2 * BX + 2, BY + 2),
        (3 * BX + 5, 3 * BY / 2),
    ] {
        depth[j * NX + i] = 250.0;
    }
    let bathy = Bathymetry {
        nx: NX,
        ny: NY,
        depth,
    };
    let grid = Grid::from_parts(
        GridKind::Custom,
        Metrics::uniform(NX, NY, 5.0e4),
        &bathy,
        false,
    );
    assert_eq!(grid.ocean_points(), 4);

    let layout = DistLayout::build(&grid, BX, BY);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 9000.0);
    let pre = Diagonal::new(&op);
    let (bounds, _) = estimate_bounds(&op, &pre, &world, &LanczosConfig::default());
    assert!(
        bounds.nu > 0.0 && bounds.mu > bounds.nu && bounds.mu.is_finite(),
        "degenerate mask produced unusable bounds: {bounds:?}"
    );
    assert!(bounds.condition().is_finite());

    // The salvaged bounds must be consumable end-to-end.
    let rhs = rhs_for(&layout, &op, 3);
    let p = Problem { layout, op, rhs };
    let got = run_world(&world, &p, &pre, SolverKind::Pcsi(bounds));
    assert!(
        f64::from_bits(got.final_residual_bits).is_finite(),
        "P-CSI produced a non-finite residual on the degenerate mask"
    );
    for bits in &got.x_bits {
        assert!(f64::from_bits(*bits).is_finite());
    }
}

/// The MG tentpole's pathological coarsening cases, all present in every
/// fuzzed mask: an all-land block whose hierarchy must come out empty, a
/// one-cell-wide channel that the masked coarse grids thin out or lose
/// entirely, and isolated ocean cells whose coarse interpolation supports
/// collapse onto a single fine point (the singular-Galerkin corner the
/// coarsest-level LU shift retry covers). The V-cycle must stay finite,
/// keep land at exactly zero, and reproduce its own bits across repeat
/// applications and forced-scalar dispatch.
#[test]
fn mg_vcycle_is_finite_and_bitwise_stable_on_pathological_masks() {
    let _guard = ModeGuard;
    for seed in [11u64, 29, 47] {
        let grid = fuzzed_grid(seed);
        let layout = DistLayout::build(&grid, BX, BY);
        let serial = CommWorld::serial();
        let op = NinePoint::assemble(&grid, &layout, &serial, 9000.0);
        let mg = BlockMg::with_defaults(&op);
        let rhs = rhs_for(&layout, &op, seed);
        let apply = |world: &CommWorld| {
            let mut z = DistVec::zeros(&layout);
            mg.apply(world, &rhs, &mut z);
            z.to_global()
        };
        let base = apply(&serial);
        for j in 0..NY {
            for i in 0..NX {
                let v = base[j * NX + i];
                assert!(v.is_finite(), "seed {seed}: non-finite V-cycle at ({i},{j})");
                if !grid.is_ocean(i, j) {
                    assert_eq!(v, 0.0, "seed {seed}: land leaked at ({i},{j})");
                }
            }
        }
        let again = apply(&serial);
        let threaded = apply(&CommWorld::threaded());
        pop_simd::force_mode(Some(SimdMode::Scalar));
        let scalar = apply(&serial);
        pop_simd::force_mode(None);
        for (k, v) in base.iter().enumerate() {
            assert_eq!(v.to_bits(), again[k].to_bits(), "seed {seed}: repeat at {k}");
            assert_eq!(v.to_bits(), threaded[k].to_bits(), "seed {seed}: threaded at {k}");
            assert_eq!(v.to_bits(), scalar[k].to_bits(), "seed {seed}: scalar at {k}");
        }
    }
}

/// End-to-end on the same masks: MG-preconditioned solves converge and are
/// bitwise identical on the serial, threaded, and ranksim backends.
#[test]
fn mg_preconditioned_solves_identically_on_pathological_masks() {
    for seed in [11u64, 29] {
        let grid = fuzzed_grid(seed);
        let layout = DistLayout::build(&grid, BX, BY);
        let serial = CommWorld::serial();
        let threaded = CommWorld::threaded();
        let op = NinePoint::assemble(&grid, &layout, &serial, 9000.0);
        let mg = BlockMg::with_defaults(&op);
        let rhs = rhs_for(&layout, &op, seed);
        let (bounds, _) = estimate_bounds(&op, &mg, &serial, &LanczosConfig::default());
        let p = Problem { layout, op, rhs };
        for kind in [SolverKind::ChronGear, SolverKind::Pcsi(bounds)] {
            let name = format!("{}+mg fuzz-seed={seed}", kind.name());
            let base = run_world(&serial, &p, &mg, kind);
            assert_eq!(
                base.outcome,
                SolveOutcome::Converged,
                "{name}: serial solve failed on fuzzed mask"
            );
            let t = run_world(&threaded, &p, &mg, kind);
            assert!(t == base, "{name}: threaded backend diverged from serial");
            let r = run_ranks(&p, &mg, kind, 4);
            assert!(r == base, "{name}: ranksim backend diverged from serial");
        }
    }
}

//! Bitwise determinism of the fused solver paths.
//!
//! The fused block-sweep loops (`LinearSolver::solve_ws`) must produce
//! solutions bit-identical to the pre-fusion whole-vector baselines
//! (`solve_unfused`), and the threaded backend must be bit-identical to the
//! serial one — per-block partials are combined in fixed block order, never
//! in completion order. These tests pin all of that down on a masked,
//! multi-block global grid where land/ocean boundaries cut through blocks.

use pop_baro::core::solvers::PipelinedCg;
use pop_baro::prelude::*;

struct Problem {
    layout: std::sync::Arc<pop_baro::comm::DistLayout>,
    op: NinePoint,
    rhs: DistVec,
}

/// A masked multi-block problem: 5×3 blocks over a scaled gx01-family
/// global grid, so several blocks straddle coastlines and at least one is
/// land-heavy.
fn problem() -> Problem {
    let grid = Grid::gx01_scaled(11, 90, 60);
    let layout = DistLayout::build(&grid, 18, 20);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 9000.0);
    let mut truth = DistVec::zeros(&layout);
    truth.fill_with(|i, j| ((i as f64) * 0.13).sin() * ((j as f64) * 0.09).cos() + 0.2);
    world.halo_update(&mut truth);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&world, &truth, &mut rhs);
    Problem { layout, op, rhs }
}

fn assert_bitwise_eq(a: &DistVec, b: &DistVec, what: &str) {
    let (ga, gb) = (a.to_global(), b.to_global());
    assert_eq!(ga.len(), gb.len());
    for (k, (x, y)) in ga.iter().zip(&gb).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: point {k} differs: {x:e} vs {y:e}"
        );
    }
}

/// Run one solver through every (path, backend) combination and demand
/// identical iteration counts and bit-identical solutions.
fn check_solver(name: &str, p: &Problem, pre: &dyn Preconditioner, solver: &dyn LinearSolver) {
    let cfg = SolverConfig {
        tol: 1e-11,
        max_iters: 50_000,
        check_every: 10,
        ..SolverConfig::default()
    };
    let serial = CommWorld::serial();
    let threaded = CommWorld::threaded();

    let mut x_fused_s = DistVec::zeros(&p.layout);
    let st_fused_s = solver.solve(&p.op, pre, &serial, &p.rhs, &mut x_fused_s, &cfg);
    assert!(st_fused_s.converged, "{name} fused/serial did not converge");

    let mut x_fused_t = DistVec::zeros(&p.layout);
    let st_fused_t = solver.solve(&p.op, pre, &threaded, &p.rhs, &mut x_fused_t, &cfg);

    assert_eq!(
        st_fused_s.iterations, st_fused_t.iterations,
        "{name}: fused serial vs threaded iteration counts differ"
    );
    assert_eq!(
        st_fused_s.final_relative_residual.to_bits(),
        st_fused_t.final_relative_residual.to_bits(),
        "{name}: fused serial vs threaded residuals differ"
    );
    assert_bitwise_eq(
        &x_fused_s,
        &x_fused_t,
        &format!("{name} fused serial vs threaded"),
    );
}

/// The unfused baseline for each concrete solver, compared bitwise against
/// the fused path on both backends.
macro_rules! check_fused_matches_unfused {
    ($name:expr, $p:expr, $pre:expr, $solver:expr) => {{
        let p = $p;
        let pre = $pre;
        let solver = $solver;
        let cfg = SolverConfig {
            tol: 1e-11,
            max_iters: 50_000,
            check_every: 10,
            ..SolverConfig::default()
        };
        let serial = CommWorld::serial();
        let threaded = CommWorld::threaded();

        let mut x_unfused = DistVec::zeros(&p.layout);
        let st_unfused = solver.solve_unfused(&p.op, pre, &serial, &p.rhs, &mut x_unfused, &cfg);
        assert!(st_unfused.converged, "{} unfused did not converge", $name);

        for (bname, world) in [("serial", &serial), ("threaded", &threaded)] {
            let mut x_fused = DistVec::zeros(&p.layout);
            let st_fused = solver.solve(&p.op, pre, world, &p.rhs, &mut x_fused, &cfg);
            assert_eq!(
                st_unfused.iterations, st_fused.iterations,
                "{} fused/{bname} vs unfused iteration counts differ",
                $name
            );
            assert_eq!(
                st_unfused.final_relative_residual.to_bits(),
                st_fused.final_relative_residual.to_bits(),
                "{} fused/{bname} vs unfused residuals differ",
                $name
            );
            assert_bitwise_eq(
                &x_unfused,
                &x_fused,
                &format!("{} fused/{bname} vs unfused", $name),
            );
        }
    }};
}

#[test]
fn fused_serial_matches_threaded_all_solvers() {
    let p = problem();
    let world = CommWorld::serial();
    for (pname, pre) in [
        ("diag", &Diagonal::new(&p.op) as &dyn Preconditioner),
        ("evp", &BlockEvp::with_defaults(&p.op)),
    ] {
        let (bounds, _) = estimate_bounds(&p.op, pre, &world, &LanczosConfig::default());
        let solvers: [(&str, &dyn LinearSolver); 4] = [
            ("pcsi", &Pcsi::new(bounds)),
            ("chrongear", &ChronGear),
            ("pcg", &ClassicPcg),
            ("pipecg", &PipelinedCg),
        ];
        for (sname, solver) in solvers {
            check_solver(&format!("{sname}+{pname}"), &p, pre, solver);
        }
    }
}

#[test]
fn fused_matches_unfused_bitwise_pcsi_chrongear() {
    let p = problem();
    let world = CommWorld::serial();
    for (pname, pre) in [
        ("diag", &Diagonal::new(&p.op) as &dyn Preconditioner),
        ("evp", &BlockEvp::with_defaults(&p.op)),
    ] {
        let (bounds, _) = estimate_bounds(&p.op, pre, &world, &LanczosConfig::default());
        check_fused_matches_unfused!(format!("pcsi+{pname}"), &p, pre, &Pcsi::new(bounds));
        check_fused_matches_unfused!(format!("chrongear+{pname}"), &p, pre, &ChronGear);
    }
}

#[test]
fn fused_matches_unfused_bitwise_pcg_pipecg() {
    let p = problem();
    let pre = Diagonal::new(&p.op);
    check_fused_matches_unfused!("pcg+diag", &p, &pre, &ClassicPcg);
    check_fused_matches_unfused!("pipecg+diag", &p, &pre, &PipelinedCg);

    let evp = BlockEvp::with_defaults(&p.op);
    check_fused_matches_unfused!("pcg+evp", &p, &evp, &ClassicPcg);
    check_fused_matches_unfused!("pipecg+evp", &p, &evp, &PipelinedCg);
}

/// The comm accounting of the fused paths must match the paper's counts —
/// fusion may not hide or double-count a reduction.
#[test]
fn fused_comm_counts_match_unfused() {
    let p = problem();
    let pre = Diagonal::new(&p.op);
    let cfg = SolverConfig {
        tol: 1e-11,
        max_iters: 50_000,
        check_every: 10,
        ..SolverConfig::default()
    };

    macro_rules! counts {
        ($solver:expr) => {{
            let serial = CommWorld::serial();
            let mut xf = DistVec::zeros(&p.layout);
            let stf = $solver.solve(&p.op, &pre, &serial, &p.rhs, &mut xf, &cfg);
            let serial2 = CommWorld::serial();
            let mut xu = DistVec::zeros(&p.layout);
            let stu = $solver.solve_unfused(&p.op, &pre, &serial2, &p.rhs, &mut xu, &cfg);
            (stf, stu)
        }};
    }

    let (bounds, _) = estimate_bounds(&p.op, &pre, &CommWorld::serial(), &LanczosConfig::default());
    let (stf, stu) = counts!(Pcsi::new(bounds));
    assert_eq!(stf.comm.allreduces, stu.comm.allreduces, "pcsi allreduces");
    assert_eq!(stf.comm.halo_updates, stu.comm.halo_updates, "pcsi halos");

    let (stf, stu) = counts!(ChronGear);
    assert_eq!(
        stf.comm.allreduces, stu.comm.allreduces,
        "chrongear allreduces"
    );
    assert_eq!(
        stf.comm.halo_updates, stu.comm.halo_updates,
        "chrongear halos"
    );

    let (stf, stu) = counts!(ClassicPcg);
    assert_eq!(stf.comm.allreduces, stu.comm.allreduces, "pcg allreduces");
    assert_eq!(stf.comm.halo_updates, stu.comm.halo_updates, "pcg halos");

    let (stf, stu) = counts!(PipelinedCg);
    assert_eq!(
        stf.comm.allreduces, stu.comm.allreduces,
        "pipecg allreduces"
    );
    assert_eq!(stf.comm.halo_updates, stu.comm.halo_updates, "pipecg halos");
}

//! Hostile chaos: corrupted and failed deliveries, graceful degradation.
//!
//! Under a hostile fault plan, halo strips can arrive poisoned (NaN) or
//! fail outright. The recovery seam (DESIGN.md §10) then takes over: the
//! poisoned values propagate into the next reduced residual identically on
//! every rank, the recovery monitor orders a lockstep restart from the last
//! good iterate, and after `max_restarts` the solver aborts with a
//! structured [`SolveOutcome::Diverged`] — restoring the snapshot so the
//! returned field is never NaN.
//!
//! The contract this suite pins, for every solver × preconditioner under
//! pinned hostile seeds (override with `POP_CHAOS_SEED`):
//!
//! - **no hang** — every run terminates (the control plane always delivers);
//! - **no panic, no NaN** — the returned solution is finite everywhere;
//! - **structured outcomes** — each run ends `Converged`, `MaxIters` or
//!   `Diverged`, with restart and delivery-failure counters populated.

use pop_baro::prelude::*;
use pop_baro::ranksim::RankSolveOutcome;
use std::sync::Arc;

/// SplitMix64-derived noise, as in the equivalence suites.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn noise(seed: u64, i: usize, j: usize) -> f64 {
    let mut s = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ ((j as u64) << 32);
    let bits = splitmix64(&mut s);
    (bits >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

struct Problem {
    layout: std::sync::Arc<pop_baro::comm::DistLayout>,
    op: NinePoint,
    rhs: DistVec,
}

fn problem(seed: u64) -> Problem {
    let grid = Grid::gx01_scaled(11, 90, 60);
    let layout = DistLayout::build(&grid, 18, 20);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 9000.0);
    let mut field = DistVec::zeros(&layout);
    field.fill_with(|i, j| noise(seed, i, j));
    world.halo_update(&mut field);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&world, &field, &mut rhs);
    Problem { layout, op, rhs }
}

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("POP_CHAOS_SEED") {
        Ok(v) => vec![v.parse().expect("POP_CHAOS_SEED must be an integer")],
        Err(_) => vec![0xFA117, 0xC4A05],
    }
}

fn cfg() -> SolverConfig {
    SolverConfig {
        tol: 1e-10,
        max_iters: 5000,
        check_every: 10,
        ..SolverConfig::default()
    }
}

fn run(
    p: &Problem,
    pre: &dyn Preconditioner,
    kind: SolverKind,
    plan: FaultPlan,
) -> RankSolveOutcome {
    let world = RankWorld::new(
        &p.layout,
        6,
        Arc::new(ZeroCost),
        RankSimConfig::default().with_faults(plan),
    );
    let x0 = DistVec::zeros(&p.layout);
    solve_on_ranks(&world, &p.op, pre, kind, &p.rhs, &x0, &cfg())
}

fn solver_matrix(p: &Problem, pre: &dyn Preconditioner) -> Vec<SolverKind> {
    let shared = CommWorld::serial();
    let (bounds, _) = estimate_bounds(&p.op, pre, &shared, &LanczosConfig::default());
    vec![
        SolverKind::ClassicPcg,
        SolverKind::ChronGear,
        SolverKind::PipelinedCg,
        SolverKind::Pcsi(bounds),
    ]
}

/// Validate one hostile run's structural guarantees; returns its
/// (delivery_failures, restarts) so callers can check the matrix-wide
/// "faults actually fired" property.
fn check_structured(name: &str, out: &RankSolveOutcome, cfg: &SolverConfig) -> (u64, usize) {
    let st = out.stats();
    // Structured outcome, consistent with the convergence flag.
    assert_eq!(
        st.converged,
        st.outcome == SolveOutcome::Converged,
        "{name}: converged flag vs outcome"
    );
    assert!(
        st.restarts <= cfg.recovery.max_restarts,
        "{name}: {} restarts exceeds cap {}",
        st.restarts,
        cfg.recovery.max_restarts
    );
    // The returned field is finite everywhere, whatever the outcome.
    for (k, v) in out.x.to_global().iter().enumerate() {
        assert!(
            v.is_finite(),
            "{name}: non-finite solution at point {k}: {v:e} (outcome {})",
            st.outcome.label()
        );
    }
    // The reported residual is never NaN (infinity is the documented
    // "no healthy check ever completed" sentinel) and is consistent with
    // the outcome.
    assert!(
        !st.final_relative_residual.is_nan(),
        "{name}: NaN reported residual"
    );
    if st.outcome == SolveOutcome::Converged {
        assert!(
            st.final_relative_residual < cfg.tol,
            "{name}: converged but residual {:e} above tol",
            st.final_relative_residual
        );
    }
    let fails: u64 = out.per_rank.iter().map(|r| r.stats.delivery_failures).sum();
    (fails, st.restarts)
}

/// The headline chaos matrix: all solvers × {diag, EVP} × pinned hostile
/// seeds. Every run must terminate with a structured outcome and a finite
/// field; across the matrix, poisoned deliveries and restarts must actually
/// have occurred (the plan is hostile, not decorative).
#[test]
fn hostile_plans_never_hang_panic_or_return_non_finite() {
    let p = problem(2015);
    let solver_cfg = cfg();
    let mut total_failures = 0u64;
    let mut total_restarts = 0usize;
    for seed in chaos_seeds() {
        let plan = FaultPlan::seeded(seed, FaultConfig::hostile());
        for (pname, pre) in [
            ("diag", &Diagonal::new(&p.op) as &dyn Preconditioner),
            ("evp", &BlockEvp::with_defaults(&p.op)),
        ] {
            for kind in solver_matrix(&p, pre) {
                let name = format!("{}+{pname} hostile-seed={seed:#x}", kind.name());
                let out = run(&p, pre, kind, plan);
                let (fails, restarts) = check_structured(&name, &out, &solver_cfg);
                total_failures += fails;
                total_restarts += restarts;
            }
        }
    }
    assert!(
        total_failures > 0,
        "hostile seeds produced no poisoned deliveries — chaos did not fire"
    );
    assert!(
        total_restarts > 0,
        "hostile seeds triggered no solver restarts — recovery path untested"
    );
}

/// Saturated corruption: with half of all halo strips poisoned, no recovery
/// is possible. The solver must burn its restart budget and abort cleanly —
/// `Diverged`, snapshot restored, field finite.
#[test]
fn saturated_corruption_degrades_gracefully() {
    let p = problem(2015);
    let solver_cfg = cfg();
    let pre = Diagonal::new(&p.op);
    let plan = FaultPlan::seeded(
        7,
        FaultConfig {
            corrupt_prob: 0.5,
            ..FaultConfig::default()
        },
    );
    for kind in solver_matrix(&p, &pre) {
        let name = format!("{} saturated-corruption", kind.name());
        let out = run(&p, &pre, kind, plan);
        let (fails, _) = check_structured(&name, &out, &solver_cfg);
        let st = out.stats();
        assert_eq!(
            st.outcome,
            SolveOutcome::Diverged,
            "{name}: expected clean divergence, got {}",
            st.outcome.label()
        );
        assert_eq!(
            st.restarts, solver_cfg.recovery.max_restarts,
            "{name}: restart budget not exhausted before abort"
        );
        assert!(fails > 0, "{name}: no delivery failures recorded");
    }
}

/// Transient poisoning is survivable: at a light corruption rate (roughly
/// one poisoned strip per solve) every seeded run still converges to
/// tolerance, and across the scan the restart path demonstrably fires —
/// recovery is a mechanism, not just a prettier crash.
#[test]
fn recovery_restores_convergence_after_transient_poison() {
    let p = problem(2015);
    let solver_cfg = cfg();
    let pre = Diagonal::new(&p.op);
    let light = FaultConfig {
        corrupt_prob: 1e-4,
        ..FaultConfig::default()
    };
    let mut total_restarts = 0usize;
    for seed in 1..=8u64 {
        let out = run(
            &p,
            &pre,
            SolverKind::ChronGear,
            FaultPlan::seeded(seed, light),
        );
        let name = format!("chrongear light-poison seed={seed}");
        check_structured(&name, &out, &solver_cfg);
        let st = out.stats();
        assert_eq!(
            st.outcome,
            SolveOutcome::Converged,
            "{name}: light poisoning must be survivable, got {}",
            st.outcome.label()
        );
        total_restarts += st.restarts;
    }
    assert!(
        total_restarts > 0,
        "light poisoning triggered no restarts — the scan never exercised recovery"
    );
}

/// Whole-rank stalls are pure latency: the solve is bitwise unaffected, but
/// the stalled ranks' simulated clocks (and the critical path) advance.
#[test]
fn stalls_charge_time_without_changing_results() {
    let p = problem(2015);
    let pre = Diagonal::new(&p.op);
    let clean = run(&p, &pre, SolverKind::ChronGear, FaultPlan::none());
    let stall_only = FaultConfig {
        stall_prob: 0.2,
        stall_max: 1e-3,
        ..FaultConfig::default()
    };
    let stalled = run(
        &p,
        &pre,
        SolverKind::ChronGear,
        FaultPlan::seeded(99, stall_only),
    );
    assert_eq!(
        stalled.stats().iterations,
        clean.stats().iterations,
        "stalls changed the iteration count"
    );
    assert_eq!(
        stalled
            .x
            .to_global()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        clean
            .x
            .to_global()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        "stalls changed the solution bits"
    );
    assert!(stalled.sim_time > clean.sim_time, "stalls charged no time");
}

//! SIMD dispatch is bitwise invisible to the solvers.
//!
//! The kernel layer (DESIGN.md §9) promises that every dispatch mode —
//! scalar reference loops, portable 4-lane kernels, AVX2 intrinsics —
//! computes *bit-identical* results: lane kernels execute the exact scalar
//! operation sequence per output point, with no FMA contraction, no
//! reassociation, and order-sensitive reductions kept scalar everywhere.
//!
//! This suite enforces the promise end to end: every solver ×
//! preconditioner × execution backend combination must produce the same
//! solution bits, iteration count, and residual history under forced
//! scalar dispatch as under each lane mode the machine supports. The
//! right-hand sides are seeded pseudo-random fields over a land-masked
//! grid, so the guarantee cannot lean on smooth data.

use pop_baro::prelude::*;
use pop_baro::ranksim::{solve_on_ranks, RankSimConfig, RankWorld, SolverKind, ZeroCost};
use pop_core::precond::{EvpScratch, EvpSubBlock};
use pop_core::solvers::{SolveStats, SolverWorkspace};
use pop_simd::SimdMode;
use pop_stencil::LocalStencil;
use std::sync::Arc;

/// SplitMix64: a tiny, stable PRNG so the "random" fields are reproducible
/// from the seed alone.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A uniform value in [-1, 1) derived from (seed, i, j) — order-independent,
/// so `fill_with` traversal order never matters.
fn noise(seed: u64, i: usize, j: usize) -> f64 {
    let mut s = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ ((j as u64) << 32);
    let bits = splitmix64(&mut s);
    (bits >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

struct Problem {
    layout: std::sync::Arc<pop_baro::comm::DistLayout>,
    op: NinePoint,
    rhs: DistVec,
}

/// A masked multi-block problem with a pseudo-random right-hand side built
/// in the operator's range. The 18×20 blocks are deliberately not a lane
/// multiple in x, so every kernel row has a scalar tail.
fn problem(seed: u64) -> Problem {
    let grid = Grid::gx01_scaled(11, 90, 60);
    let layout = DistLayout::build(&grid, 18, 20);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 9000.0);
    let mut field = DistVec::zeros(&layout);
    field.fill_with(|i, j| noise(seed, i, j));
    world.halo_update(&mut field);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&world, &field, &mut rhs);
    Problem { layout, op, rhs }
}

/// The lane modes to test against the scalar baseline on this machine.
fn lane_modes() -> Vec<SimdMode> {
    let mut m = vec![SimdMode::Portable];
    if pop_simd::detected_avx2() {
        m.push(SimdMode::Avx2);
    }
    m
}

/// Everything a solve produces that callers can observe, as raw bits.
#[derive(PartialEq)]
struct Outcome {
    iterations: usize,
    converged: bool,
    final_residual_bits: u64,
    history_bits: Vec<(usize, u64)>,
    x_bits: Vec<u64>,
}

fn outcome(st: &SolveStats, x: &DistVec) -> Outcome {
    Outcome {
        iterations: st.iterations,
        converged: st.converged,
        final_residual_bits: st.final_relative_residual.to_bits(),
        history_bits: st
            .residual_history
            .iter()
            .map(|&(k, r)| (k, r.to_bits()))
            .collect(),
        x_bits: x.to_global().iter().map(|v| v.to_bits()).collect(),
    }
}

fn run_shared(
    p: &Problem,
    pre: &dyn Preconditioner,
    kind: SolverKind,
    world: &CommWorld,
) -> Outcome {
    let cfg = SolverConfig {
        tol: 1e-10,
        max_iters: 5000,
        check_every: 10,
        ..SolverConfig::default()
    };
    let mut x = DistVec::zeros(&p.layout);
    let mut ws = SolverWorkspace::new();
    let st = kind.solve(&p.op, pre, world, &p.rhs, &mut x, &cfg, &mut ws);
    outcome(&st, &x)
}

fn run_ranksim(p: &Problem, pre: &dyn Preconditioner, kind: SolverKind, ranks: usize) -> Outcome {
    let cfg = SolverConfig {
        tol: 1e-10,
        max_iters: 5000,
        check_every: 10,
        ..SolverConfig::default()
    };
    let world = RankWorld::new(
        &p.layout,
        ranks,
        Arc::new(ZeroCost),
        RankSimConfig::default(),
    );
    let x0 = DistVec::zeros(&p.layout);
    let out = solve_on_ranks(&world, &p.op, pre, kind, &p.rhs, &x0, &cfg);
    outcome(out.stats(), &out.x)
}

fn assert_same(name: &str, base: &Outcome, got: &Outcome) {
    assert_eq!(
        got.iterations, base.iterations,
        "{name}: iteration counts differ"
    );
    assert_eq!(got.converged, base.converged, "{name}: convergence differs");
    assert_eq!(
        got.final_residual_bits,
        base.final_residual_bits,
        "{name}: final residuals differ ({:e} vs {:e})",
        f64::from_bits(got.final_residual_bits),
        f64::from_bits(base.final_residual_bits)
    );
    assert_eq!(
        got.history_bits, base.history_bits,
        "{name}: residual histories differ"
    );
    for (k, (a, b)) in got.x_bits.iter().zip(&base.x_bits).enumerate() {
        assert_eq!(
            a,
            b,
            "{name}: solution differs at point {k}: {:e} vs {:e}",
            f64::from_bits(*a),
            f64::from_bits(*b)
        );
    }
}

/// Restores the startup dispatch decision even if an assertion panics, so a
/// failure here can't poison other tests in this binary.
struct ModeGuard;
impl Drop for ModeGuard {
    fn drop(&mut self) {
        pop_simd::force_mode(None);
    }
}

/// The tentpole guarantee: four solvers × {diag, EVP} × three execution
/// backends (serial, thread pool, ranksim message passing), forced-scalar vs
/// every lane mode, all observables bitwise equal.
///
/// `force_mode` is process-global, so the whole sweep lives in one `#[test]`;
/// the other tests in this binary pass dispatch modes explicitly and are
/// unaffected by the override.
#[test]
fn dispatch_modes_are_bitwise_equivalent_end_to_end() {
    let _guard = ModeGuard;
    let p = problem(2015);
    let shared = CommWorld::serial();
    for (pname, pre) in [
        ("diag", &Diagonal::new(&p.op) as &dyn Preconditioner),
        ("evp", &BlockEvp::with_defaults(&p.op)),
    ] {
        // One set of Chebyshev bounds per preconditioner, reused by every
        // arm, so P-CSI runs identical coefficients under each mode. (The
        // Lanczos estimate itself is also dispatch-invariant, but pinning
        // the inputs keeps this test about the solve.)
        let (bounds, _) = estimate_bounds(&p.op, pre, &shared, &LanczosConfig::default());
        let kinds = [
            SolverKind::ClassicPcg,
            SolverKind::ChronGear,
            SolverKind::PipelinedCg,
            SolverKind::Pcsi(bounds),
        ];
        for kind in kinds {
            pop_simd::force_mode(Some(SimdMode::Scalar));
            let base_serial = run_shared(&p, pre, kind, &CommWorld::serial());
            let base_threaded = run_shared(&p, pre, kind, &CommWorld::threaded());
            let base_rank = run_ranksim(&p, pre, kind, 3);
            assert!(
                base_serial.converged,
                "{}+{pname}: scalar baseline did not converge",
                kind.name()
            );
            for mode in lane_modes() {
                pop_simd::force_mode(Some(mode));
                let tag =
                    |backend: &str| format!("{}+{pname} {backend} {}", kind.name(), mode.name());
                assert_same(
                    &tag("serial"),
                    &base_serial,
                    &run_shared(&p, pre, kind, &CommWorld::serial()),
                );
                assert_same(
                    &tag("threaded"),
                    &base_threaded,
                    &run_shared(&p, pre, kind, &CommWorld::threaded()),
                );
                assert_same(&tag("ranksim"), &base_rank, &run_ranksim(&p, pre, kind, 3));
            }
            pop_simd::force_mode(None);
        }
    }
}

fn tile_rhs(n: usize) -> Vec<f64> {
    (0..n)
        .map(|k| ((k.wrapping_mul(2654435761)) % 1000) as f64 / 500.0 - 1.0)
        .collect()
}

/// Solve one EVP tile under an explicit mode and return the solution bits.
fn tile_bits(sub: &EvpSubBlock, mode: SimdMode, psi: &[f64]) -> Vec<u64> {
    let mut x = vec![0.0; psi.len()];
    let mut scratch = EvpScratch::default();
    sub.solve_mode(mode, psi, &mut x, &mut scratch);
    x.iter().map(|v| v.to_bits()).collect()
}

/// A land-touching tile takes the dense-LU fallback; that path must also be
/// identical under every dispatch mode (the LU factorization and
/// back-substitution never vectorize — only the surrounding copy/masking
/// does), including exact zeros on land outputs.
#[test]
fn evp_lu_fallback_tile_is_bitwise_mode_invariant() {
    let mut raw = LocalStencil::reference(8, 8, 90.0, 3.0);
    // Land points and their dead corners, as in the core land-hole test.
    for (i, j) in [(3, 3), (3, 4), (6, 1)] {
        raw.set(i, j, 0.0, 0.0, 0.0, 0.0);
    }
    for (i, j) in [(2, 2), (2, 3), (2, 4), (3, 2), (5, 0), (5, 1), (6, 0)] {
        raw.set_ane(i, j, 0.0);
    }
    for reduced in [false, true] {
        let sub = EvpSubBlock::new(&raw, reduced);
        assert!(
            !sub.uses_marching(),
            "land tile must take the dense-LU fallback"
        );
        let psi = tile_rhs(64);
        let base = tile_bits(&sub, SimdMode::Scalar, &psi);
        assert_eq!(base[3 * 8 + 3], 0.0f64.to_bits(), "land output zeroed");
        for mode in lane_modes() {
            assert_eq!(
                tile_bits(&sub, mode, &psi),
                base,
                "LU fallback differs under {} dispatch (reduced={reduced})",
                mode.name()
            );
        }
    }
}

/// The marching path at tile level, reduced and full systems, explicit
/// modes — a focused diagnostic below the full solver sweep.
#[test]
fn evp_marching_tile_is_bitwise_mode_invariant() {
    for (n, reduced, phi) in [(8usize, true, 5.0), (8, false, 5.0), (12, true, 80.0)] {
        let raw = LocalStencil::reference(n, n, 120.0, phi);
        let sub = EvpSubBlock::new(&raw, reduced);
        assert!(sub.uses_marching(), "{n}x{n} phi={phi} must march");
        let psi = tile_rhs(n * n);
        let base = tile_bits(&sub, SimdMode::Scalar, &psi);
        for mode in lane_modes() {
            assert_eq!(
                tile_bits(&sub, mode, &psi),
                base,
                "marching tile {n}x{n} (reduced={reduced}) differs under {}",
                mode.name()
            );
        }
    }
}

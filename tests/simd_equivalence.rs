//! SIMD dispatch is bitwise invisible to the solvers.
//!
//! The kernel layer (DESIGN.md §9) promises that every dispatch mode —
//! scalar reference loops, portable 4-lane kernels, AVX2 intrinsics —
//! computes *bit-identical* results: lane kernels execute the exact scalar
//! operation sequence per output point, with no FMA contraction, no
//! reassociation, and order-sensitive reductions kept scalar everywhere.
//!
//! This suite enforces the promise end to end: every solver ×
//! preconditioner × execution backend combination must produce the same
//! solution bits, iteration count, and residual history under forced
//! scalar dispatch as under each lane mode the machine supports. The
//! right-hand sides are seeded pseudo-random fields over a land-masked
//! grid, so the guarantee cannot lean on smooth data.

use pop_baro::prelude::*;
use pop_core::precond::{EvpScratch, EvpSubBlock};
use pop_simd::SimdMode;
use pop_stencil::LocalStencil;

mod common;
use common::{assert_same, lane_modes, problem, run_ranks, run_world, ModeGuard};

/// The tentpole guarantee: four solvers × {diag, EVP} × three execution
/// backends (serial, thread pool, ranksim message passing), forced-scalar vs
/// every lane mode, all observables bitwise equal.
///
/// `force_mode` is process-global, so the whole sweep lives in one `#[test]`;
/// the other tests in this binary pass dispatch modes explicitly and are
/// unaffected by the override.
#[test]
fn dispatch_modes_are_bitwise_equivalent_end_to_end() {
    let _guard = ModeGuard;
    let p = problem(2015);
    let shared = CommWorld::serial();
    for (pname, pre) in [
        ("diag", &Diagonal::new(&p.op) as &dyn Preconditioner),
        ("evp", &BlockEvp::with_defaults(&p.op)),
    ] {
        // One set of Chebyshev bounds per preconditioner, reused by every
        // arm, so P-CSI runs identical coefficients under each mode. (The
        // Lanczos estimate itself is also dispatch-invariant, but pinning
        // the inputs keeps this test about the solve.)
        let (bounds, _) = estimate_bounds(&p.op, pre, &shared, &LanczosConfig::default());
        let kinds = [
            SolverKind::ClassicPcg,
            SolverKind::ChronGear,
            SolverKind::PipelinedCg,
            SolverKind::Pcsi(bounds),
        ];
        for kind in kinds {
            pop_simd::force_mode(Some(SimdMode::Scalar));
            let base_serial = run_world(&CommWorld::serial(), &p, pre, kind);
            let base_threaded = run_world(&CommWorld::threaded(), &p, pre, kind);
            let base_rank = run_ranks(&p, pre, kind, 3);
            assert_eq!(
                base_serial.outcome,
                SolveOutcome::Converged,
                "{}+{pname}: scalar baseline did not converge",
                kind.name()
            );
            for mode in lane_modes() {
                pop_simd::force_mode(Some(mode));
                let tag =
                    |backend: &str| format!("{}+{pname} {backend} {}", kind.name(), mode.name());
                assert_same(
                    &tag("serial"),
                    &base_serial,
                    &run_world(&CommWorld::serial(), &p, pre, kind),
                );
                assert_same(
                    &tag("threaded"),
                    &base_threaded,
                    &run_world(&CommWorld::threaded(), &p, pre, kind),
                );
                assert_same(&tag("ranksim"), &base_rank, &run_ranks(&p, pre, kind, 3));
            }
            pop_simd::force_mode(None);
        }
    }
}

fn tile_rhs(n: usize) -> Vec<f64> {
    (0..n)
        .map(|k| ((k.wrapping_mul(2654435761)) % 1000) as f64 / 500.0 - 1.0)
        .collect()
}

/// Solve one EVP tile under an explicit mode and return the solution bits.
fn tile_bits(sub: &EvpSubBlock, mode: SimdMode, psi: &[f64]) -> Vec<u64> {
    let mut x = vec![0.0; psi.len()];
    let mut scratch = EvpScratch::default();
    sub.solve_mode(mode, psi, &mut x, &mut scratch);
    x.iter().map(|v| v.to_bits()).collect()
}

/// A land-touching tile takes the dense-LU fallback; that path must also be
/// identical under every dispatch mode (the LU factorization and
/// back-substitution never vectorize — only the surrounding copy/masking
/// does), including exact zeros on land outputs.
#[test]
fn evp_lu_fallback_tile_is_bitwise_mode_invariant() {
    let mut raw = LocalStencil::reference(8, 8, 90.0, 3.0);
    // Land points and their dead corners, as in the core land-hole test.
    for (i, j) in [(3, 3), (3, 4), (6, 1)] {
        raw.set(i, j, 0.0, 0.0, 0.0, 0.0);
    }
    for (i, j) in [(2, 2), (2, 3), (2, 4), (3, 2), (5, 0), (5, 1), (6, 0)] {
        raw.set_ane(i, j, 0.0);
    }
    for reduced in [false, true] {
        let sub = EvpSubBlock::new(&raw, reduced);
        assert!(
            !sub.uses_marching(),
            "land tile must take the dense-LU fallback"
        );
        let psi = tile_rhs(64);
        let base = tile_bits(&sub, SimdMode::Scalar, &psi);
        assert_eq!(base[3 * 8 + 3], 0.0f64.to_bits(), "land output zeroed");
        for mode in lane_modes() {
            assert_eq!(
                tile_bits(&sub, mode, &psi),
                base,
                "LU fallback differs under {} dispatch (reduced={reduced})",
                mode.name()
            );
        }
    }
}

/// The marching path at tile level, reduced and full systems, explicit
/// modes — a focused diagnostic below the full solver sweep.
#[test]
fn evp_marching_tile_is_bitwise_mode_invariant() {
    for (n, reduced, phi) in [(8usize, true, 5.0), (8, false, 5.0), (12, true, 80.0)] {
        let raw = LocalStencil::reference(n, n, 120.0, phi);
        let sub = EvpSubBlock::new(&raw, reduced);
        assert!(sub.uses_marching(), "{n}x{n} phi={phi} must march");
        let psi = tile_rhs(n * n);
        let base = tile_bits(&sub, SimdMode::Scalar, &psi);
        for mode in lane_modes() {
            assert_eq!(
                tile_bits(&sub, mode, &psi),
                base,
                "marching tile {n}x{n} (reduced={reduced}) differs under {}",
                mode.name()
            );
        }
    }
}

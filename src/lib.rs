//! # pop-baro
//!
//! A Rust reproduction of *“Improving the Scalability of the Ocean
//! Barotropic Solver in the Community Earth System Model”* (SC '15): the
//! P-CSI Chebyshev-type barotropic solver and the block-EVP preconditioner,
//! together with every substrate they need — a POP-like grid and domain
//! decomposition, a simulated message-passing runtime, the nine-point
//! implicit free-surface operator, a reduced-physics ocean model, calibrated
//! machine models for the scaling studies, and the ensemble-based
//! statistical verification method.
//!
//! This crate re-exports the workspace's public API in one place:
//!
//! - [`grid`] — grids, bathymetry, masks, block decomposition
//!   (space-filling-curve rank assignment included).
//! - [`comm`] — distributed block vectors, halo exchange, fused global
//!   reductions, communication counters.
//! - [`stencil`] — the nine-point barotropic operator in POP's symmetric
//!   `{A0, AN, AE, ANE}` storage.
//! - [`core`] — the solvers (classic PCG, ChronGear, P-CSI) and
//!   preconditioners (diagonal, block-LU, block-EVP), plus Lanczos
//!   eigenvalue estimation.
//! - [`ranksim`] — the rank-based message-passing runtime: each simulated
//!   MPI rank is a thread owning private blocks, halos travel as
//!   point-to-point messages, reductions climb binomial trees, and a
//!   pluggable network model charges simulated time. A seeded fault layer
//!   ([`prelude::FaultPlan`]) injects deterministic network chaos for the
//!   recovery test suites.
//! - [`perfmodel`] — the paper's cost equations with Yellowstone- and
//!   Edison-calibrated parameters.
//! - [`ocean`] — the barotropic mode and the mini-POP ocean model.
//! - [`verif`] — perturbation ensembles, RMSE/RMSZ, the consistency test,
//!   and the method-of-manufactured-solutions oracle.
//! - [`obs`] — the solver observability layer: a lock-free metrics
//!   registry, per-solve convergence traces, and Prometheus/JSON exporters.
//!   Thread an enabled [`prelude::ObsSink`] through [`prelude::SolverConfig`]
//!   to capture telemetry; the default (disabled) sink costs nothing and
//!   leaves solver output bit-identical.
//!
//! ## Quickstart
//!
//! ```
//! use pop_baro::prelude::*;
//!
//! // A small global ocean and its distributed operator.
//! let grid = Grid::gx1_scaled(7, 96, 80);
//! let layout = DistLayout::build(&grid, 24, 20);
//! let world = CommWorld::serial();
//! let op = NinePoint::assemble(&grid, &layout, &world, 1100.0);
//!
//! // A right-hand side with a known solution.
//! let mut truth = DistVec::zeros(&layout);
//! truth.fill_with(|i, j| ((i as f64) * 0.1).sin() + ((j as f64) * 0.2).cos());
//! world.halo_update(&mut truth);
//! let mut rhs = DistVec::zeros(&layout);
//! op.apply(&world, &truth, &mut rhs);
//!
//! // Solve it with the paper's P-CSI + block-EVP configuration.
//! let setup = SolverSetup::new(SolverChoice::PcsiEvp, &op, &world);
//! let mut x = DistVec::zeros(&layout);
//! let stats = setup.solve(&op, &world, &rhs, &mut x, &SolverConfig::default());
//! assert!(stats.converged);
//! // P-CSI's loop body contains no global reductions:
//! assert!(stats.comm.allreduces < stats.iterations as u64);
//! ```

pub use pop_comm as comm;
pub use pop_core as core;
pub use pop_grid as grid;
pub use pop_obs as obs;
pub use pop_ocean as ocean;
pub use pop_perfmodel as perfmodel;
pub use pop_ranksim as ranksim;
pub use pop_serve as serve;
pub use pop_stencil as stencil;
pub use pop_verif as verif;

/// The most commonly used types in one import.
pub mod prelude {
    pub use pop_comm::{CommWorld, DistLayout, DistVec, ExecPolicy};
    pub use pop_core::lanczos::{estimate_bounds, EigenBounds, LanczosConfig};
    pub use pop_core::precond::{
        BlockEvp, BlockLu, BlockMg, Diagonal, Identity, MgConfig, Preconditioner,
    };
    pub use pop_core::selector::{PrecondSelector, Selection, SelectorConfig};
    pub use pop_core::setup::{OperatorState, PrecondSpec};
    pub use pop_core::solvers::{
        batch_key, solve_many, BatchCommSolver, BatchPlanner, BatchWorkspace, ChronGear,
        ClassicPcg, LinearSolver, Pcsi, PipelinedCg, RecoveryConfig, SolveOutcome, SolveStats,
        SolverConfig, MAX_BATCH,
    };
    pub use pop_grid::{Decomposition, Grid};
    pub use pop_obs::{ConvergenceTrace, ObsSink, SolveHistory};
    pub use pop_ocean::{BarotropicMode, MiniPop, MiniPopConfig, SolverChoice, SolverSetup};
    pub use pop_perfmodel::{MachineModel, PopConfig, PopModel};
    pub use pop_ranksim::{
        solve_on_ranks, FaultConfig, FaultPlan, HierarchicalNet, LatencyBandwidth, RankExecutor,
        RankSimConfig, RankWorld, ReduceAlgo, SolverKind, ZeroCost,
    };
    pub use pop_stencil::NinePoint;
    pub use pop_verif::{EnsembleConfig, MmsCase, VerificationLab};
}

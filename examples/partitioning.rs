//! Domain decomposition the way POP does it at scale: block the grid,
//! eliminate all-land blocks, and assign the survivors to ranks along a
//! Hilbert space-filling curve, comparing load balance and communication
//! locality against naive row-major assignment.
//!
//! Run with: `cargo run --release --example partitioning`

use pop_baro::grid::sfc::CurveKind;
use pop_baro::prelude::*;

fn main() {
    let grid = Grid::gx01_scaled(2015, 360, 240);
    println!(
        "grid {}x{}, {:.0}% ocean",
        grid.nx,
        grid.ny,
        100.0 * grid.ocean_fraction()
    );

    for p in [64usize, 256, 1024] {
        let d = Decomposition::for_core_count(&grid, p, (3, 2));
        println!(
            "\ntarget {} cores: blocks {}x{} -> {} active blocks, {} land blocks eliminated ({:.0}%)",
            p,
            d.block_nx,
            d.block_ny,
            d.blocks.len(),
            d.eliminated_blocks,
            100.0 * d.land_block_fraction()
        );
        for kind in [CurveKind::Hilbert, CurveKind::Morton, CurveKind::RowMajor] {
            let ra = d.assign_ranks(p, kind);
            // Load balance: ocean points per rank.
            let loads: Vec<usize> = ra
                .blocks_of_rank
                .iter()
                .map(|bs| bs.iter().map(|&b| d.blocks[b].ocean_points).sum())
                .collect();
            let max = *loads.iter().max().expect("ranks");
            let mean = loads.iter().sum::<usize>() as f64 / p as f64;
            // Locality: how many distinct remote ranks each rank talks to.
            let mut partners = 0usize;
            for (rank, bs) in ra.blocks_of_rank.iter().enumerate() {
                let mut remote: Vec<usize> = bs
                    .iter()
                    .flat_map(|&b| d.neighbors[b].iter().flatten().copied())
                    .map(|nb| ra.rank_of_block[nb])
                    .filter(|&r| r != rank)
                    .collect();
                remote.sort_unstable();
                remote.dedup();
                partners += remote.len();
            }
            println!(
                "  {:>9}: load imbalance {:>5.2}x, avg communication partners/rank {:>5.2}, idle ranks {}",
                format!("{kind:?}"),
                max as f64 / mean,
                partners as f64 / p as f64,
                ra.idle_ranks()
            );
        }
    }
    println!(
        "\nthe Hilbert curve keeps each rank's blocks spatially compact: fewer\n\
         communication partners at the same load balance (Dennis, IPDPS'07 —\n\
         the partitioning POP uses in production and the paper's runs rely on)."
    );
}

//! The paper's headline experiment in miniature: measure real iteration
//! counts of the four solver configurations on a 0.1°-like grid, then model
//! barotropic wall time and whole-POP simulation rate across production
//! core counts on Yellowstone (substitution S2 in DESIGN.md).
//!
//! Run with: `cargo run --release --example high_res_scaling`

use pop_baro::perfmodel::cost::{PrecondKind, SolverKind, SolverProfile};
use pop_baro::prelude::*;

fn main() {
    let grid = Grid::gx01_scaled(2015, 450, 300);
    let layout = DistLayout::build(&grid, 30, 20);
    let world = CommWorld::serial();
    // Stiffness-matched time step for the scaled grid (see DESIGN.md S4).
    let op = NinePoint::assemble(&grid, &layout, &world, 8.0 * 86.4);

    let mut truth = DistVec::zeros(&layout);
    truth.fill_with(|i, j| ((i as f64) * 0.05).sin() + ((j as f64) * 0.08).cos());
    world.halo_update(&mut truth);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&world, &truth, &mut rhs);
    let cfg = SolverConfig::default();

    println!(
        "measuring iteration counts on a {}x{} 0.1deg-like grid...",
        grid.nx, grid.ny
    );
    let mut profiles = Vec::new();
    for choice in SolverChoice::PAPER_SET {
        let setup = SolverSetup::new(choice, &op, &world);
        let mut x = DistVec::zeros(&layout);
        let stats = setup.solve(&op, &world, &rhs, &mut x, &cfg);
        assert!(stats.converged);
        println!("  {}: {} iterations", choice.label(), stats.iterations);
        profiles.push((
            choice,
            SolverProfile {
                solver: if choice.is_pcsi() {
                    SolverKind::Pcsi
                } else {
                    SolverKind::ChronGear
                },
                precond: if choice.uses_evp() {
                    PrecondKind::Evp
                } else {
                    PrecondKind::Diagonal
                },
                iterations: stats.iterations as f64,
                check_every: cfg.check_every,
            },
        ));
    }

    let model = PopModel::new(PopConfig::gx01_yellowstone());
    println!(
        "\n{:<8} {:>10} {:>10} {:>10} {:>10}   {:>6}",
        "cores", "cg+diag", "cg+evp", "pcsi+diag", "pcsi+evp", "SYPD*"
    );
    for p in [470usize, 1350, 2700, 5400, 10800, 16875] {
        let times: Vec<f64> = profiles
            .iter()
            .map(|(_, prof)| model.day(p, prof, 0).barotropic.total())
            .collect();
        let sypd = model.day(p, &profiles[3].1, 0).sypd;
        println!(
            "{:<8} {:>9.2}s {:>9.2}s {:>9.2}s {:>9.2}s   {:>6.1}",
            p, times[0], times[1], times[2], times[3], sypd
        );
    }
    println!("(* whole-POP simulated years per day with P-CSI+EVP)");
    let base = model.day(16875, &profiles[0].1, 0).barotropic.total();
    let best = model.day(16875, &profiles[3].1, 0).barotropic.total();
    println!(
        "\nbarotropic speedup at 16,875 cores: {:.1}x (paper: 5.2x on Yellowstone)",
        base / best
    );
}

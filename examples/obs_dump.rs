//! Observability end to end: run one P-CSI + block-EVP solve with a live
//! [`ObsSink`] and print what it captured — the Prometheus text exposition
//! of the metrics registry, then the convergence trace as JSON lines.
//!
//! Run with: `cargo run --release --example obs_dump`

use pop_baro::core::solvers::SolverWorkspace;
use pop_baro::prelude::*;

fn main() {
    let grid = Grid::gx1_scaled(2015, 160, 128);
    let layout = DistLayout::build(&grid, 20, 16);
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 1200.0);

    let mut truth = DistVec::zeros(&layout);
    truth.fill_with(|i, j| ((i as f64) * 0.07).sin() * ((j as f64) * 0.11).cos());
    world.halo_update(&mut truth);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&world, &truth, &mut rhs);

    // The paper's production configuration: P-CSI with the block-EVP
    // preconditioner, spectral bounds from a one-time Lanczos estimation.
    let evp = BlockEvp::with_defaults(&op);
    let (bounds, lanczos_steps) = estimate_bounds(&op, &evp, &world, &LanczosConfig::default());
    println!(
        "eigenbounds: nu = {:.6}, mu = {:.6} (condition {:.1}, {lanczos_steps} Lanczos steps)",
        bounds.nu,
        bounds.mu,
        bounds.condition()
    );

    // Thread a live sink through the solver configuration. The same config
    // with the default (disabled) sink produces bit-identical solves — the
    // telemetry is free to leave on in production.
    let obs = ObsSink::enabled();
    let cfg = SolverConfig {
        tol: 1e-13,
        max_iters: 50_000,
        check_every: 10,
        ..SolverConfig::default()
    }
    .with_obs(obs.clone());

    let mut x = DistVec::zeros(&layout);
    let mut ws = SolverWorkspace::new();
    let stats = Pcsi::new(bounds).solve_ws(&op, &evp, &world, &rhs, &mut x, &cfg, &mut ws);
    assert!(stats.converged, "P-CSI did not converge");
    println!(
        "solved in {} iterations, {} allreduces ({} convergence checks), residual {:.2e}\n",
        stats.iterations,
        stats.comm.allreduces,
        stats.residual_history.len(),
        stats.final_relative_residual
    );

    println!("---- Prometheus exposition ----");
    print!("{}", obs.prometheus());

    println!("---- convergence trace (JSON lines) ----");
    for t in obs.traces() {
        println!("{}", pop_baro::obs::export::trace_json(&t));
    }
}

//! Quickstart: assemble a barotropic system on a global-ocean grid and solve
//! it with each of the paper's four solver/preconditioner configurations,
//! comparing iteration counts and communication volumes.
//!
//! Run with: `cargo run --release --example quickstart`

use pop_baro::prelude::*;

fn main() {
    // A 1°-like global ocean at reduced size: periodic in longitude,
    // synthetic continents and islands, anisotropic metrics.
    let grid = Grid::gx1_scaled(2015, 160, 128);
    println!(
        "grid: {}x{}, {:.0}% ocean, aspect ratio up to {:.1}",
        grid.nx,
        grid.ny,
        100.0 * grid.ocean_fraction(),
        grid.metrics.max_aspect_ratio()
    );

    // Decompose into blocks (land blocks are eliminated) and assemble the
    // implicit free-surface operator for a 20-minute time step.
    let layout = DistLayout::build(&grid, 20, 16);
    println!(
        "decomposition: {} active blocks ({} all-land blocks eliminated)",
        layout.decomp.blocks.len(),
        layout.decomp.eliminated_blocks
    );
    let world = CommWorld::serial();
    let op = NinePoint::assemble(&grid, &layout, &world, 1200.0);

    // Manufactured problem: pick the true surface height, compute its RHS.
    let mut truth = DistVec::zeros(&layout);
    truth.fill_with(|i, j| ((i as f64) * 0.07).sin() * ((j as f64) * 0.11).cos());
    world.halo_update(&mut truth);
    let mut rhs = DistVec::zeros(&layout);
    op.apply(&world, &truth, &mut rhs);

    let cfg = SolverConfig {
        tol: 1e-13,
        max_iters: 50_000,
        check_every: 10,
        ..SolverConfig::default()
    };
    println!(
        "\n{:<18} {:>6} {:>11} {:>12} {:>10}",
        "config", "iters", "reductions", "halo updates", "error"
    );
    for choice in SolverChoice::PAPER_SET {
        let setup = SolverSetup::new(choice, &op, &world);
        let mut x = DistVec::zeros(&layout);
        let stats = setup.solve(&op, &world, &rhs, &mut x, &cfg);
        assert!(stats.converged, "{} did not converge", choice.label());
        let mut err = x.clone();
        err.axpy(-1.0, &truth);
        let rel = (world.norm2_sq(&err) / world.norm2_sq(&truth)).sqrt();
        println!(
            "{:<18} {:>6} {:>11} {:>12} {:>10.2e}",
            choice.label(),
            stats.iterations,
            stats.comm.allreduces,
            stats.comm.halo_updates,
            rel
        );
    }
    println!(
        "\nNote the paper's two effects: EVP cuts iteration counts roughly 2-3x, and\n\
         P-CSI's reduction count is tiny (convergence checks only) while ChronGear\n\
         reduces once per iteration - the term that dominates at tens of thousands\n\
         of cores."
    );
}

//! A miniature §6 verification campaign: build a small perturbation
//! ensemble, then check a loose-tolerance solver (flagged) and the paper's
//! P-CSI+EVP at the default tolerance against it with the RMSZ metric.
//!
//! This is the fast demonstration; the full-fidelity campaign (40 members,
//! saturated horizons) is `cargo run -p pop-bench --release --bin
//! fig13_rmsz_ensemble -- --full`.
//!
//! Run with: `cargo run --release --example ensemble_verification`

use pop_baro::prelude::*;
use pop_baro::verif::consistency::{evaluate, DEFAULT_ALLOWED_FAILURES, DEFAULT_MARGIN};

fn main() {
    let grid = Grid::idealized_basin(48, 36, 500.0, 2.0e4);
    let world = CommWorld::serial();
    let mut base = MiniPopConfig::eddying_for(&grid);
    base.nlev = 2;
    base.solver = SolverChoice::ChronGearDiag;
    base.tolerance = 1e-13;

    let cfg = EnsembleConfig {
        members: 10,
        perturbation: 1e-14,
        months: 6,
        steps_per_month: 400,
        spinup_steps: 2000,
    };
    println!(
        "spinning up and branching a {}-member ensemble ({} months x {} steps)...",
        cfg.members, cfg.months, cfg.steps_per_month
    );
    let lab = VerificationLab::new(grid, base, cfg, &world);
    let ensemble = lab.build_ensemble(&world);

    println!("\nmember RMSZ envelope per month (the 'natural variability band'):");
    for (t, (lo, hi)) in ensemble.member_rmsz_range.iter().enumerate() {
        println!("  month {}: [{:.2}, {:.2}]", t + 1, lo, hi);
    }

    for (label, solver, tol) in [
        (
            "sloppy solver (tol 1e-10)",
            SolverChoice::ChronGearDiag,
            1e-10,
        ),
        ("new P-CSI+EVP (tol 1e-13)", SolverChoice::PcsiEvp, 1e-13),
    ] {
        let months = lab.run_trajectory(&world, None, solver, tol);
        let report = evaluate(&ensemble, &months, DEFAULT_MARGIN, DEFAULT_ALLOWED_FAILURES);
        println!("\ncandidate: {label}");
        print!("  RMSZ by month:");
        for z in &report.rmsz {
            print!(" {z:.2}");
        }
        println!("\n  verdict: {:?}", report.verdict);
    }
    println!(
        "\nthe sloppy tolerance is flagged ORDERS OF MAGNITUDE outside the band, and the\n\
         new solver scores far closer to the ensemble than any loose tolerance - the\n\
         discrimination that let the paper clear P-CSI+EVP for the CESM release.\n\
         (at this short demo horizon the ensemble spread has not saturated, so even\n\
         benign candidates sit above the band; see EXPERIMENTS.md, Fig 13.)"
    );
}

//! Run the mini-POP ocean model — a wind-driven double gyre with the real
//! barotropic solver in the loop — and print circulation diagnostics as it
//! spins up into the chaotic eddying regime.
//!
//! Run with: `cargo run --release --example gyre_simulation`

use pop_baro::prelude::*;

fn main() {
    let grid = Grid::idealized_basin(64, 48, 500.0, 2.0e4);
    let world = CommWorld::serial();
    let mut cfg = MiniPopConfig::eddying_for(&grid);
    cfg.solver = SolverChoice::PcsiEvp; // the paper's solver drives the ocean
    cfg.nlev = 3;
    println!(
        "1.5-layer reduced-gravity double gyre: {}x{} at {:.0} km, dt = {:.0}s, solver = {}",
        grid.nx,
        grid.ny,
        grid.metrics.dx(0, 0) / 1e3,
        cfg.tau,
        cfg.solver.label()
    );

    let mut model = MiniPop::new(grid, cfg, &world);
    println!(
        "\n{:>6} {:>12} {:>10} {:>10} {:>12} {:>8}",
        "step", "KE (m2/s2)", "max|eta|", "mean eta", "T range", "K/solve"
    );
    for chunk in 1..=10 {
        model.run(&world, 400);
        let tv = model.temperature_vector();
        let tmin = tv.iter().copied().fold(f64::INFINITY, f64::min);
        let tmax = tv.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{:>6} {:>12.3e} {:>9.2}m {:>9.2e} {:>5.1}..{:<5.1} {:>8.1}",
            chunk * 400,
            model.kinetic_energy(),
            model.max_eta(),
            model.mean_eta(),
            tmin,
            tmax,
            model.barotropic.mean_iterations()
        );
        assert!(model.is_healthy(), "model went unstable");
    }
    println!(
        "\nvolume conservation: mean surface height {:.2e} m after {} steps \
         (exact up to round-off by the adjoint-pair discretization)",
        model.mean_eta(),
        model.steps
    );
    println!(
        "barotropic solver: {} solves, {:.1} iterations on average",
        model.barotropic.solves,
        model.barotropic.mean_iterations()
    );
}
